"""Adversarial fuzzing of the run-journal reader and the journal-aware
status fold (:mod:`repro.obs.journal`, :func:`repro.fleet.watch.journal_status`):
multi-writer concurrent appends, injected torn/partial lines anywhere in
the file, and randomly interleaved lifecycle records, all driven by a
seeded generator so every failure reproduces."""

import json
import random
import threading

from repro.fleet import ResultStore, SweepSpec, journal_status
from repro.obs.journal import RunJournal, journal_path_for

SEED = 0xA3BE7

EVENT_KINDS = ("job_started", "heartbeat", "epoch_sampled",
               "job_completed", "job_failed")


def _spec(n_jobs: int) -> SweepSpec:
    """A sweep spec with ``n_jobs`` distinct planned configurations."""
    return SweepSpec(name="fuzz", scenario="fio",
                     base={"preset": "intel750", "total_ios": 10},
                     axes={"iodepth": tuple(range(1, n_jobs + 1))})


# -- concurrent appends --------------------------------------------------------


class TestConcurrentWriters:
    def test_threaded_appends_interleave_whole_lines(self, tmp_path):
        """N writers hammering one journal: every event survives intact
        and each writer's own sequence keeps its order."""
        journal = RunJournal(tmp_path / "j.ndjson")
        writers, per_writer = 8, 50

        def hammer(writer_id):
            for index in range(per_writer):
                journal.append("heartbeat", job=f"w{writer_id}",
                               sim_ns=index, events=index * 2)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        events = journal.events()
        assert len(events) == writers * per_writer
        for writer_id in range(writers):
            mine = [e["sim_ns"] for e in events
                    if e["job"] == f"w{writer_id}"]
            assert mine == list(range(per_writer))

    def test_every_line_is_one_json_document(self, tmp_path):
        journal = RunJournal(tmp_path / "j.ndjson")

        def hammer():
            for index in range(40):
                journal.append("epoch_sampled", job="x", sim_ns=index)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for line in journal.path.read_text().splitlines():
            assert json.loads(line)["event"] == "epoch_sampled"


# -- torn and corrupt lines ----------------------------------------------------


def _tear(line: str, rng: random.Random) -> str:
    """Truncate a JSON line at a random byte (a killed writer's tail)."""
    return line[:rng.randrange(1, max(2, len(line) - 1))]


class TestTornLines:
    def test_reader_survives_seeded_corruption(self, tmp_path):
        """Valid events interleaved with torn fragments, blank lines and
        non-JSON garbage: the reader returns exactly the valid events,
        in order, and never raises."""
        rng = random.Random(SEED)
        path = tmp_path / "j.ndjson"
        journal = RunJournal(path)
        expected = []
        with open(path, "w", encoding="utf-8") as handle:
            for index in range(200):
                doc = {"event": rng.choice(EVENT_KINDS),
                       "job": f"{rng.randrange(4):02x}" * 8,
                       "wall_ts": round(rng.random() * 100, 6),
                       "sim_ns": rng.randrange(10**9)}
                line = json.dumps(doc, sort_keys=True,
                                  separators=(",", ":"))
                roll = rng.random()
                if roll < 0.15:
                    handle.write(_tear(line, rng) + "\n")   # torn mid-file
                elif roll < 0.20:
                    handle.write("\n")                       # blank line
                elif roll < 0.25:
                    handle.write("not json at all\n")        # garbage
                elif roll < 0.30:
                    handle.write('["array", "not", "dict"]\n')
                elif roll < 0.33:
                    handle.write('{"no_event_key": 1}\n')
                else:
                    handle.write(line + "\n")
                    expected.append(doc)
            handle.write('{"event": "job_comp')             # torn tail
        assert journal.events() == expected

    def test_partial_final_line_never_hides_earlier_events(self, tmp_path):
        rng = random.Random(SEED + 1)
        journal = RunJournal(tmp_path / "j.ndjson")
        for index in range(20):
            journal.append("heartbeat", job="abc", sim_ns=index)
        complete = journal.events()
        line = json.dumps({"event": "job_completed", "job": "abc"})
        for _ in range(10):
            torn = _tear(line, rng)
            with open(journal.path, "a", encoding="utf-8") as handle:
                handle.write(torn)
            assert journal.events() == complete
            # writer died; next writer starts a fresh line
            with open(journal.path, "a", encoding="utf-8") as handle:
                handle.write("\n")


# -- fuzzed lifecycle interleavings against journal_status ---------------------


class TestStatusFold:
    def _fuzz_once(self, tmp_path, rng, tag):
        """One randomized sweep history; returns what the fold must say."""
        n_jobs = rng.randrange(2, 7)
        spec = _spec(n_jobs)
        hashes = sorted(job.config_hash for job in spec.expand())
        store = ResultStore(tmp_path / f"store-{tag}")
        journal = RunJournal(journal_path_for(store.root))

        fates = {}
        events = []
        for job_hash in hashes:
            fate = rng.choice(("done", "failed", "running", "pending",
                               "failed_then_done"))
            fates[job_hash] = fate
            if fate == "pending":
                continue
            events.append(("job_started", job_hash,
                           {"pid": rng.randrange(1, 10**5), "sim_ns": 0}))
            for _ in range(rng.randrange(0, 4)):
                events.append((rng.choice(("heartbeat", "epoch_sampled")),
                               job_hash,
                               {"sim_ns": rng.randrange(10**6),
                                "events": rng.randrange(10**4)}))
            if fate in ("failed", "failed_then_done"):
                events.append(("job_failed", job_hash,
                               {"error": "RuntimeError",
                                "message": "fuzz", "flightrec": []}))
        # shuffle everything but each job's own order (concurrent workers)
        by_job = {}
        for kind, job_hash, fields in events:
            by_job.setdefault(job_hash, []).append((kind, fields))
        order = []
        cursors = {job_hash: 0 for job_hash in by_job}
        flat = [job_hash for job_hash, mine in by_job.items()
                for _ in mine]
        rng.shuffle(flat)
        for job_hash in flat:
            kind, fields = by_job[job_hash][cursors[job_hash]]
            cursors[job_hash] += 1
            order.append((kind, job_hash, fields))
        for kind, job_hash, fields in order:
            journal.append(kind, job=job_hash, **fields)
        for job_hash, fate in fates.items():
            if fate in ("done", "failed_then_done"):
                store.put(job_hash, {"fuzz": True}, {"ok": True})
        return spec, store, fates

    def test_fuzzed_interleavings_classify_exactly(self, tmp_path):
        rng = random.Random(SEED)
        for round_no in range(15):
            spec, store, fates = self._fuzz_once(tmp_path, rng, round_no)
            doc = journal_status(spec, store, now_s=1e9)
            assert doc["schema"] == "fleet.watch/1"
            # store always trumps the journal (failed_then_done == done)
            want_done = {h for h, fate in fates.items()
                         if fate in ("done", "failed_then_done")}
            want_failed = {h for h, fate in fates.items()
                           if fate == "failed"}
            want_running = {h for h, fate in fates.items()
                            if fate == "running"}
            want_pending = {h for h, fate in fates.items()
                            if fate == "pending"}
            assert doc["done"] == len(want_done), fates
            assert {f["job"] for f in doc["failed"]} == want_failed
            assert {r["job"] for r in doc["running"]} == want_running
            assert set(doc["pending"]) == want_pending
            assert set(doc["missing"]) == \
                want_failed | want_running | want_pending

    def test_fuzzed_running_entries_use_freshest_heartbeat(self, tmp_path):
        spec = _spec(2)
        hashes = sorted(job.config_hash for job in spec.expand())
        store = ResultStore(tmp_path / "store")
        journal = RunJournal(journal_path_for(store.root))
        journal.append("job_started", job=hashes[0], pid=7, sim_ns=0)
        journal.append("heartbeat", job=hashes[0], sim_ns=100, events=5)
        journal.append("job_failed", job=hashes[1], error="E", message="m")
        journal.append("heartbeat", job=hashes[0], sim_ns=900, events=55)
        doc = journal_status(spec, store)
        (running,) = doc["running"]
        assert running["job"] == hashes[0]
        assert running["sim_ns"] == 900 and running["events"] == 55

"""Flash firmware stack: HIL -> ICL -> FTL -> FIL (Figure 5a)."""

from repro.ssd.firmware.hil import HostInterfaceLayer
from repro.ssd.firmware.icl import InternalCacheLayer
from repro.ssd.firmware.fil import FlashInterfaceLayer
from repro.ssd.firmware.ftl.ftl import FlashTranslationLayer

__all__ = [
    "HostInterfaceLayer",
    "InternalCacheLayer",
    "FlashTranslationLayer",
    "FlashInterfaceLayer",
]

"""Full-system tests: FIO engine, syscall layer, buffered I/O, presets."""

import pytest

from repro.core import presets
from repro.core.fio import FioJob
from repro.core.system import FullSystem

from tests.conftest import tiny_ssd_config


class TestFioJobValidation:
    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            FioJob(bs=1000)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            FioJob(rw="readwrite")

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            FioJob(iodepth=0)

    def test_mix_mode_draws_both_kinds(self):
        import random
        job = FioJob(rw="randrw", rwmixread=50)
        rng = random.Random(1)
        kinds = {job.kind_for(rng) for _ in range(50)}
        assert len(kinds) == 2


class TestFioEngine:
    def test_runs_requested_io_count(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        result = system.run_fio(FioJob(rw="randread", bs=2048, iodepth=4,
                                       total_ios=120))
        assert result.total_ios == 120
        assert result.total_bytes == 120 * 2048
        assert result.bandwidth_mbps > 0
        assert result.latency.count > 0

    def test_numjobs_spreads_streams(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        result = system.run_fio(FioJob(rw="randread", bs=2048, iodepth=2,
                                       numjobs=3, total_ios=60))
        assert result.total_ios == 180

    def test_runtime_bound_stops_early(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        result = system.run_fio(FioJob(rw="randread", bs=2048, iodepth=2,
                                       total_ios=0, runtime_ns=3_000_000))
        assert 0 < result.total_ios
        assert result.elapsed_ns >= 3_000_000

    def test_deeper_queue_increases_bandwidth(self, tiny_config):
        bws = {}
        for depth in (1, 8):
            system = FullSystem(device=tiny_config, interface="nvme")
            system.precondition()
            bws[depth] = system.run_fio(
                FioJob(rw="randread", bs=2048, iodepth=depth,
                       total_ios=200)).bandwidth_mbps
        assert bws[8] > bws[1]

    def test_region_bounds_respected(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        # region of one block only: every I/O hits the same LBA
        result = system.run_fio(FioJob(rw="randread", bs=2048, iodepth=2,
                                       total_ios=50, size=2048))
        assert result.total_ios == 50

    def test_io_region_too_small_rejected(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        with pytest.raises(ValueError, match="region"):
            system.run_fio(FioJob(bs=65536, size=4096))

    def test_memory_ledger_freed_after_run(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        system.run_fio(FioJob(rw="randread", bs=2048, iodepth=2,
                              total_ios=50))
        assert system.memory.usage_of("fio") == 0


class TestBufferedIo:
    def test_buffered_read_hits_page_cache(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme",
                            data_emulation=True)

        def scenario():
            data = FullSystem.pattern_data(0, 8)
            yield from system.write(0, 8, data)
            first = yield from system.read(0, 8, direct=False)   # miss+install
            again = yield from system.read(0, 8, direct=False)   # hit
            assert first == data and again == data

        system.run_process(scenario())
        assert system.pagecache.hits >= 1

    def test_buffered_write_absorbed(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")

        def scenario():
            yield from system.write(0, 8, direct=False)

        system.run_process(scenario())
        assert system.pagecache.dirty_pages() == [0]

    def test_direct_io_bypasses_page_cache(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")

        def scenario():
            yield from system.write(0, 8, direct=True)
            yield from system.read(0, 8, direct=True)

        system.run_process(scenario())
        assert system.pagecache.hits == 0
        assert len(system.pagecache.dirty_pages()) == 0


class TestPresets:
    def test_all_presets_valid(self):
        for name in presets.PRESETS:
            config = presets.by_name(name)
            config.validate()
            assert config.logical_capacity > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            presets.by_name("optane")

    def test_intel750_matches_table1_shape(self):
        config = presets.intel750()
        assert config.geometry.channels == 12
        assert config.geometry.packages_per_channel == 5
        assert config.geometry.planes_per_die == 2
        assert config.dram.size == 1 << 30

    def test_zssd_is_fastest_flash(self):
        z = presets.zssd()
        for other in ("intel750", "850pro", "983dct"):
            assert z.timing.t_read_avg < \
                presets.by_name(other).timing.t_read_avg

    def test_table1_configuration_verbatim(self):
        table = presets.table1_configuration()
        assert table["Storage back-end"]["Block"] == 512
        assert table["NAND Flash timing (us)"]["tERASE"] == "3000"


class TestSystemWiring:
    def test_unknown_interface_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="interface"):
            FullSystem(device=tiny_config, interface="scsi")

    def test_unknown_kernel_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            FullSystem(device=tiny_config, kernel="3.10")

    def test_htype_forces_fifo_arbitration(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="sata")
        assert system.ssd.config.hil.arbitration == "fifo"

    def test_precondition_fills_mapping(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        placed = system.precondition()
        assert placed > 0
        assert system.ssd.ftl.mapping.mapped_count == placed

    def test_pattern_data_deterministic(self):
        a = FullSystem.pattern_data(10, 4, seed=3)
        b = FullSystem.pattern_data(10, 4, seed=3)
        c = FullSystem.pattern_data(10, 4, seed=4)
        assert a == b and a != c and len(a) == 4 * 512


class TestStageBreakdown:
    def test_stages_sum_to_total_latency(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        system.precondition()
        result = system.run_fio(FioJob(rw="randread", bs=2048, iodepth=4,
                                       total_ios=200))
        breakdown = result.stage_breakdown
        assert set(breakdown) == {"kernel_submit", "interface", "device",
                                  "completion"}
        total = sum(breakdown.values())
        assert total == pytest.approx(result.latency.mean(), rel=0.15)
        # the device dominates small random reads
        assert breakdown["device"] > breakdown["kernel_submit"]

"""simflow: whole-project dataflow analysis for the simulator.

Where :mod:`repro.analysis.rules` checks one function at a time, this
package sees the *project*: a module resolver and symbol table
(:mod:`~repro.analysis.flow.project`), a call graph with best-effort
method resolution, and small abstract interpreters over typed lattices.
Three rule families build on it (docs/ANALYSIS.md, "The dataflow pass"):

* **SIM201-SIM203** — unit-of-measure checking over
  ``ns | us | ms | s | bytes | sectors | pages | hz`` facts inferred
  from name suffixes, ``repro.common.units`` constants and call
  summaries (:mod:`~repro.analysis.flow.unitcheck`);
* **SIM210** — interprocedural determinism taint: wall-clock / RNG /
  set-iteration-order values tracked across call edges into sim-visible
  state (:mod:`~repro.analysis.flow.taint`);
* **SIM220** — static lock-order deadlock detection over
  ``Resource.acquire`` sites (:mod:`~repro.analysis.flow.locks`).

Importing this package registers the project rules with the simlint
registry, exactly as importing :mod:`repro.analysis.rules` registers
the per-file ones.
"""

from repro.analysis.flow.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    module_name_for,
)

# Rule registration side effects (mirrors repro.analysis.rules).
from repro.analysis.flow import unitcheck  # noqa: F401,E402
from repro.analysis.flow import taint  # noqa: F401,E402
from repro.analysis.flow import locks  # noqa: F401,E402

__all__ = ["Project", "ModuleInfo", "FunctionInfo", "module_name_for"]

"""Unit tests for FTL components: allocator, mappings, GC policies."""

import pytest

from repro.sim import Simulator
from repro.ssd.config import FTLConfig
from repro.ssd.device import SSD
from repro.ssd.firmware.ftl.allocator import OutOfBlocksError, PageAllocator
from repro.ssd.firmware.ftl.gc import select_victim
from repro.ssd.firmware.ftl.mapping import (
    UNMAPPED,
    BlockMapping,
    HybridMapping,
    PageMapping,
    make_mapping,
)
from repro.ssd.storage.array import FlashArray

from tests.conftest import tiny_ssd_config


@pytest.fixture
def config():
    return tiny_ssd_config()


@pytest.fixture
def array(config):
    return FlashArray(config.geometry)


class TestPageAllocator:
    def test_allocates_in_page_order(self, config, array):
        allocator = PageAllocator(config, array)
        first = allocator.allocate(0, now=0)
        second = allocator.allocate(0, now=0)
        assert second == first + 1

    def test_line_units_cover_span(self, config, array):
        allocator = PageAllocator(config, array)
        units = allocator.line_units(0)
        assert len(units) == config.superpage_pages
        assert len(set(units)) == len(units)    # all distinct

    def test_consecutive_lines_rotate_ways(self, config, array):
        allocator = PageAllocator(config, array)
        # tiny config has 1 way; rotation degenerates but stays valid
        for line in range(4):
            units = allocator.line_units(line)
            assert all(0 <= u < config.geometry.parallel_units
                       for u in units)

    def test_exhaustion_raises(self, config, array):
        allocator = PageAllocator(config, array)
        per_unit = config.geometry.pages_per_plane
        for _ in range(per_unit):
            allocator.allocate(0, now=0)
        with pytest.raises(OutOfBlocksError):
            allocator.allocate(0, now=0)

    def test_reclaim_returns_block_to_pool(self, config, array):
        allocator = PageAllocator(config, array)
        ppb = config.geometry.pages_per_block
        ppns = [allocator.allocate(0, now=0) for _ in range(ppb)]
        for ppn in ppns:
            array.invalidate_ppn(ppn)
        before = allocator.free_blocks(0)
        array.erase_block(0, 0)
        allocator.reclaim(0, 0)
        assert allocator.free_blocks(0) == before + 1

    def test_gc_candidates_excludes_full_valid(self, config, array):
        allocator = PageAllocator(config, array)
        ppb = config.geometry.pages_per_block
        ppns = [allocator.allocate(0, now=0) for _ in range(ppb)]
        assert allocator.gc_candidates(0) == []     # block fully valid
        array.invalidate_ppn(ppns[0])
        assert allocator.gc_candidates(0) == [0]

    def test_bad_span_rejected(self, config, array):
        bad = config.with_overrides(superpage_channels=0, superpage_ways=3)
        with pytest.raises(ValueError):
            PageAllocator(bad, FlashArray(bad.geometry))


class TestMappings:
    def test_factory_dispatch(self, config):
        assert isinstance(make_mapping(config), PageMapping)
        assert isinstance(
            make_mapping(config.with_overrides(ftl=FTLConfig(mapping="block"))),
            BlockMapping)
        assert isinstance(
            make_mapping(config.with_overrides(ftl=FTLConfig(mapping="hybrid"))),
            HybridMapping)

    def test_page_mapping_bind_and_displace(self, config):
        mapping = PageMapping(config)
        assert mapping.bind(5, 100) is None
        assert mapping.lookup(5) == 100
        assert mapping.reverse(100) == 5
        assert mapping.bind(5, 200) == 100       # displaced old ppn
        assert mapping.reverse(100) == UNMAPPED

    def test_page_mapping_unbind(self, config):
        mapping = PageMapping(config)
        mapping.bind(3, 50)
        assert mapping.unbind(3) == 50
        assert mapping.lookup(3) == UNMAPPED
        assert mapping.unbind(3) is None

    def test_partial_hashmap_tracking(self, config):
        mapping = PageMapping(config)
        mapping.bind(7, 70)
        mapping.mark_partial(7, 70)
        assert mapping.is_partial(7)
        mapping.unbind(7)
        assert not mapping.is_partial(7)

    def test_block_mapping_fixed_offsets(self, config):
        mapping = BlockMapping(config)
        ppb = mapping.pages_per_block
        mapping.bind_block(0, first_ppn=3 * ppb)
        for off in range(ppb):
            assert mapping.lookup(off) == 3 * ppb + off
        assert mapping.lookup(ppb) == UNMAPPED   # other block unmapped

    def test_hybrid_log_overrides_block(self, config):
        mapping = HybridMapping(config)
        ppb = mapping.block_map.pages_per_block
        mapping.block_map.bind_block(0, first_ppn=0)
        mapping.bind_log(2, 500)
        assert mapping.lookup(2) == 500          # log wins
        assert mapping.lookup(1) == 1            # block mapping
        assert mapping.reverse(500) == 2

    def test_hybrid_log_capacity(self, config):
        small = config.with_overrides(
            ftl=FTLConfig(mapping="hybrid", hybrid_log_blocks=1))
        mapping = HybridMapping(small)
        assert not mapping.log_full()
        for lpn in range(mapping.log_capacity):
            mapping.bind_log(lpn, 1000 + lpn)
        assert mapping.log_full()
        drained = mapping.drain_log()
        assert len(drained) == mapping.log_capacity
        assert not mapping.log_full()


class TestVictimSelection:
    def _prepare(self, config, array, valid_counts):
        """Fill blocks of unit 0 with the given valid page counts."""
        ppb = config.geometry.pages_per_block
        for block_idx, valid in enumerate(valid_counts):
            block = array.block(0, block_idx)
            for page in range(ppb):
                block.program(page, now=block_idx)
            for page in range(ppb - valid):
                block.invalidate(page)

    def test_greedy_picks_fewest_valid(self, config, array):
        self._prepare(config, array, [10, 2, 7])
        victim = select_victim(config, array, 0, [0, 1, 2], now=100)
        assert victim == 1

    def test_costbenefit_prefers_old_blocks(self, array):
        config = tiny_ssd_config(ftl=FTLConfig(gc_policy="costbenefit",
                                               wear_leveling=False))
        ppb = config.geometry.pages_per_block
        # same utilization, different ages (last_write_time = block index)
        self._prepare(config, array, [8, 8])
        victim = select_victim(config, array, 0, [0, 1], now=1000)
        assert victim == 0      # older block wins

    def test_no_candidates_returns_none(self, config, array):
        assert select_victim(config, array, 0, [], now=0) is None

    def test_wear_aware_tiebreak(self, config, array):
        self._prepare(config, array, [5, 5])
        array.block(0, 0).erase_count = 10
        array.block(0, 1).erase_count = 1
        victim = select_victim(config, array, 0, [0, 1], now=0)
        assert victim == 1       # equal score: least-worn wins

    def test_unknown_policy_rejected(self, array):
        config = tiny_ssd_config()
        object.__setattr__(config.ftl, "gc_policy", "lru")
        with pytest.raises(ValueError):
            select_victim(config, array, 0, [0], now=0)


class TestAlternativeMappingModes:
    def _device(self, mapping):
        sim = Simulator()
        config = tiny_ssd_config(ftl=FTLConfig(
            mapping=mapping, overprovision=0.25, gc_threshold_free_blocks=1))
        return sim, SSD(sim, config, data_emulation=True)

    @pytest.mark.parametrize("mapping", ["block", "hybrid"])
    def test_write_read_roundtrip(self, mapping):
        sim, ssd = self._device(mapping)
        data = bytes(range(256)) * 8   # 4 sectors

        def scenario():
            yield from ssd.write(0, 4, data)
            yield from ssd.flush()
            got = yield from ssd.read(0, 4)
            return got

        assert sim.run_process(scenario()) == data

    def test_block_mapping_overwrite_migrates(self):
        sim, ssd = self._device("block")

        def scenario():
            yield from ssd.write(0, 4)
            yield from ssd.flush()
            yield from ssd.write(0, 4)
            yield from ssd.flush()

        sim.run_process(scenario())
        # second write forced a whole-block rewrite
        assert ssd.ftl.gc_pages_migrated >= 0
        assert ssd.backend.programs_issued >= \
            2 * ssd.config.geometry.pages_per_block

    def test_hybrid_merge_on_log_pressure(self):
        sim = Simulator()
        config = tiny_ssd_config(ftl=FTLConfig(
            mapping="hybrid", hybrid_log_blocks=1, overprovision=0.25,
            gc_threshold_free_blocks=1))
        ssd = SSD(sim, config)
        spp = config.geometry.page_size // 512

        def scenario():
            # distinct pages: the log fills with live entries and merges
            for i in range(3 * config.geometry.pages_per_block):
                yield from ssd.write(i * spp, spp)
                yield from ssd.flush()

        sim.run_process(scenario())
        assert ssd.ftl.gc_pages_migrated > 0   # merge traffic happened

"""SIM101 fixture: timestamps derived from the simulated clock."""


def service_time(sim, started_ns):
    return sim.now - started_ns


def stamp_request(sim):
    return sim.now

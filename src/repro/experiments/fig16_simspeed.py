"""Figure 16: simulation speed comparison.

Replays the same workload (4 KB random reads, depth 16) through each
standalone baseline simulator, Amber's standalone SSD model, and the
Amber full system, measuring wall-clock seconds and simulation events.
The paper's point: Amber's full-system detail costs more than standalone
replay (gem5+Amber ~ 20K s in the original) but is comparable to MQSim
among the detailed simulators.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.analysis.tables import format_table
from repro.baselines.models import (
    FlashSimModel,
    MQSimModel,
    SSDExtensionModel,
    SSDSimModel,
)
from repro.baselines.replay import ClosedLoopReplayer
from repro.common.iorequest import IOKind
from repro.core import presets
from repro.core.fio import FioJob
from repro.core.system import FullSystem
from repro.sim import Simulator
from repro.ssd.device import SSD
from repro.ssd.firmware.requests import DeviceCommand


def _amber_standalone(n_ios: int) -> Dict:
    sim = Simulator()
    ssd = SSD(sim, presets.intel750())
    ssd.precondition_sequential()
    import random
    rng = random.Random(3)
    region = ssd.config.logical_sectors - 8
    state = {"done": 0}

    def slot():
        while state["done"] < n_ios:
            slba = rng.randrange(region // 8) * 8
            yield ssd.submit(DeviceCommand(IOKind.READ, slba, 8))
            state["done"] += 1

    wall0 = time.perf_counter()  # simlint: disable=SIM101, SIM110 -- Fig 16 measures simulation speed itself; wall_seconds is a golden VOLATILE_KEY
    procs = [sim.process(slot()) for _ in range(16)]

    def waiter():
        for proc in procs:
            yield proc

    sim.run_process(waiter())
    return {"wall_seconds": time.perf_counter() - wall0,  # simlint: disable=SIM101, SIM110 -- Fig 16 measures simulation speed itself; wall_seconds is a golden VOLATILE_KEY
            "events": sim.events_processed}


def _amber_fullsystem(n_ios: int) -> Dict:
    system = FullSystem(device=presets.intel750(), interface="nvme")
    system.precondition()
    wall0 = time.perf_counter()  # simlint: disable=SIM101, SIM110 -- Fig 16 measures simulation speed itself; wall_seconds is a golden VOLATILE_KEY
    system.run_fio(FioJob(rw="randread", bs=4096, iodepth=16,
                          total_ios=n_ios))
    return {"wall_seconds": time.perf_counter() - wall0,  # simlint: disable=SIM101, SIM110 -- Fig 16 measures simulation speed itself; wall_seconds is a golden VOLATILE_KEY
            "events": system.sim.events_processed}


def run(quick: bool = True, n_ios=None) -> Dict:
    """``n_ios`` shrinks the workload for the golden small configs."""
    n_ios = n_ios or (500 if quick else 3000)
    config = presets.intel750()
    results: Dict = {"n_ios": n_ios, "simulators": {}}
    for name, model_cls in (("flashsim", FlashSimModel),
                            ("ssdsim", SSDSimModel),
                            ("ssd-extension", SSDExtensionModel),
                            ("mqsim", MQSimModel)):
        replayer = ClosedLoopReplayer(model_cls(config))
        res = replayer.run("randread", bs=4096, iodepth=16, n_ios=n_ios)
        results["simulators"][name] = {
            "wall_seconds": res.wall_seconds,
            "events": res.events_processed,
            "mode": "standalone trace replay",
        }
    standalone = _amber_standalone(n_ios)
    standalone["mode"] = "standalone (all SSD resources)"
    results["simulators"]["amber-standalone"] = standalone  # simlint: disable=SIM210 -- Fig 16's deliverable IS wall time; wall_seconds is a golden VOLATILE_KEY
    full = _amber_fullsystem(n_ios)
    full["mode"] = "full system (host + OS + interface + SSD)"
    results["simulators"]["amber-fullsystem"] = full  # simlint: disable=SIM210 -- Fig 16's deliverable IS wall time; wall_seconds is a golden VOLATILE_KEY
    return results


def render(results: Dict) -> str:
    rows = [[name, v["mode"], f"{v['wall_seconds']:.3f}", v["events"]]
            for name, v in results["simulators"].items()]
    return format_table(["simulator", "mode", "wall s", "events"], rows,
                        f"Fig 16: simulation speed ({results['n_ios']} I/Os)")

"""Merged fleet reports: one artifact summarizing a whole sweep.

``merge_results`` folds every stored job of a sweep into a single
document: a fleet-wide latency histogram (each job's streaming
``LogHistogram`` merges losslessly — no raw samples were ever kept),
p50/p99 tables per axis value, and a per-job row table.  Jobs are read
in sorted-config-hash order and axis groups in spec order, so the
merged document — and both rendered forms — are byte-identical no
matter how many workers produced the store or in which order they
finished (the golden test in ``tests/test_fleet.py`` pins this).

Sparkline trends across big sweeps go through
:class:`repro.obs.timeseries.TimeSeries`, whose deterministic
decimation bounds the points kept per curve, so a 10 000-job sweep
renders the same size report as a 10-job one.
"""

from __future__ import annotations

import html as _html
import json
from typing import Dict, List, Optional

from repro.experiments.golden import canonicalize
from repro.fleet.spec import SweepSpec
from repro.fleet.store import ResultStore
from repro.obs.causal import COMPONENTS
from repro.obs.diff import merged_ops
from repro.obs.histogram import LogHistogram
from repro.obs.timeseries import TimeSeries, sparkline

#: scalar metrics surfaced in the per-job and per-group tables
_METRIC_KEYS = ("bandwidth_mbps", "iops", "p50_latency_us", "p99_latency_us")


def _merged_histogram(results: List[Dict]) -> Optional[LogHistogram]:
    """Merge every job's stored latency histogram; None when absent."""
    merged: Optional[LogHistogram] = None
    for result in results:
        encoded = result.get("latency_hist")
        if not encoded:
            continue
        hist = LogHistogram.from_dict(encoded)
        if merged is None:
            merged = hist
        else:
            merged.merge(hist)
    return merged


def _merged_causal(results: List[Dict]) -> Optional[Dict]:
    """Fold embedded causal summaries into per-op component sums.

    Returns ``{op: {count, total_ns, components_ns}}`` across every job
    that ran with ``--causal`` (None when none did).  Because each
    request's components sum exactly to its latency, the folded sums
    remain an exact decomposition of the fleet-wide total.
    """
    combined: Dict[str, Dict] = {}
    seen = False
    for result in results:
        payload = result.get("causal")
        if not payload:
            continue
        seen = True
        for op, agg in merged_ops(payload).items():
            entry = combined.setdefault(
                op, {"count": 0, "total_ns": 0, "components_ns": {}})
            entry["count"] += agg["count"]
            entry["total_ns"] += agg["total_ns"]
            for comp, ns in agg["components_ns"].items():
                entry["components_ns"][comp] = \
                    entry["components_ns"].get(comp, 0) + ns
    return combined if seen else None


def _trend(values: List[float], name: str) -> str:
    """Bounded sparkline over per-job values (TimeSeries decimation)."""
    series = TimeSeries(name, max_points=64)
    for index, value in enumerate(values):
        series.append(index, value)
    return sparkline(series.values())


def merge_results(spec: SweepSpec, store: ResultStore) -> Dict:
    """Fold a sweep's stored results into one report document."""
    planned = sorted(spec.expand(), key=lambda job: job.config_hash)
    rows: List[Dict] = []
    missing: List[str] = []
    for job in planned:
        doc = store.get(job.config_hash)
        if doc is None:
            missing.append(job.config_hash)
            continue
        result = doc["result"]
        row = {"config_hash": job.config_hash,
               "axes": {axis: job.params[axis] for axis in sorted(spec.axes)
                        if axis in job.params},
               "metrics": {key: result[key] for key in _METRIC_KEYS
                           if key in result},
               "result": result}
        rows.append(row)

    fleet_hist = _merged_histogram([row["result"] for row in rows])
    groups: List[Dict] = []
    for axis in sorted(spec.axes):
        for value in spec.axes[axis]:
            members = [row for row in rows if row["axes"].get(axis) == value]
            if not members:
                continue
            group_hist = _merged_histogram(
                [row["result"] for row in members])
            entry: Dict = {"axis": axis, "value": value,
                           "jobs": len(members)}
            bandwidths = [row["metrics"]["bandwidth_mbps"]
                          for row in members
                          if "bandwidth_mbps" in row["metrics"]]
            if bandwidths:
                entry["mean_bandwidth_mbps"] = \
                    sum(bandwidths) / len(bandwidths)
            if group_hist is not None:
                entry["latency"] = group_hist.summary(scale=1e-3)
            groups.append(entry)

    doc = {
        "spec": spec.to_dict(),
        "planned": len(planned),
        "merged": len(rows),
        "missing": missing,
        "jobs": [{key: row[key] for key in ("config_hash", "axes", "metrics")}
                 for row in rows],
        "groups": groups,
    }
    if fleet_hist is not None:
        doc["fleet_latency"] = fleet_hist.summary(scale=1e-3)
        doc["fleet_hist"] = fleet_hist.to_dict()
    causal = _merged_causal([row["result"] for row in rows])
    if causal is not None:
        doc["causal_components"] = causal
    return canonicalize(doc)


def merged_json(doc: Dict) -> str:
    """The merged document as canonical JSON text (byte-stable)."""
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


# -- markdown -----------------------------------------------------------------


def _axis_label(axes: Dict) -> str:
    """Render a job's axis assignment as a stable ``k=v, k=v`` label."""
    return ", ".join(f"{axis}={axes[axis]}" for axis in sorted(axes)) \
        or "(base)"


def _fmt(value) -> str:
    """Format one table cell: floats to 4 significant digits."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_markdown(doc: Dict) -> str:
    """Render the merged document as GitHub-flavoured Markdown."""
    spec = doc["spec"]
    out: List[str] = [
        f"# Fleet report — sweep `{spec['name']}`", "",
        f"Scenario `{spec['scenario']}`, {doc['merged']}/{doc['planned']} "
        "configurations merged"
        + (f" ({len(doc['missing'])} missing)" if doc["missing"] else "")
        + ".  Generated by `repro.fleet` (`docs/FLEET.md`).", ""]

    if "fleet_latency" in doc:
        lat = doc["fleet_latency"]
        out += ["## Fleet-wide latency (all jobs merged)", "",
                "| samples | mean µs | p50 µs | p95 µs | p99 µs | max µs |",
                "|---:|---:|---:|---:|---:|---:|",
                f"| {lat['count']:.0f} | {lat['mean']:.1f} "
                f"| {lat['p50']:.1f} | {lat['p95']:.1f} "
                f"| {lat['p99']:.1f} | {lat['max']:.1f} |", ""]

    if "causal_components" in doc:
        out += ["## Causal components (all jobs merged)", "",
                "| op | component | total µs | mean µs | share |",
                "|---|---|---:|---:|---:|"]
        for op in sorted(doc["causal_components"]):
            entry = doc["causal_components"][op]
            comps = entry["components_ns"]
            ordered = [c for c in COMPONENTS if c in comps] \
                + sorted(set(comps) - set(COMPONENTS))
            for comp in ordered:
                ns = comps[comp]
                share = ns / entry["total_ns"] if entry["total_ns"] else 0.0
                out.append(
                    f"| `{op}` | `{comp}` | {ns / 1000.0:.1f} "
                    f"| {ns / 1000.0 / entry['count']:.2f} "
                    f"| {share * 100:.1f}% |")
        out.append("")

    if doc["groups"]:
        out += ["## Per-axis aggregates", "",
                "| axis | value | jobs | mean MB/s | p50 µs | p99 µs |",
                "|---|---:|---:|---:|---:|---:|"]
        for group in doc["groups"]:
            lat = group.get("latency", {})
            out.append(
                f"| `{group['axis']}` | {_fmt(group['value'])} "
                f"| {group['jobs']} "
                f"| {_fmt(group.get('mean_bandwidth_mbps', ''))} "
                f"| {lat.get('p50', 0.0):.1f} | {lat.get('p99', 0.0):.1f} |")
        out.append("")
        for axis in sorted({g["axis"] for g in doc["groups"]}):
            curve = [g.get("mean_bandwidth_mbps", 0.0)
                     for g in doc["groups"] if g["axis"] == axis]
            if any(curve):
                out.append(f"* `{axis}` bandwidth trend: "
                           f"`{_trend(curve, axis)}`")
        out.append("")

    out += ["## Per-job results", "",
            "| config | axes | MB/s | IOPS | p50 µs | p99 µs |",
            "|---|---|---:|---:|---:|---:|"]
    for row in doc["jobs"]:
        metrics = row["metrics"]
        out.append(
            f"| `{row['config_hash'][:12]}` | {_axis_label(row['axes'])} "
            f"| {_fmt(metrics.get('bandwidth_mbps', ''))} "
            f"| {_fmt(metrics.get('iops', ''))} "
            f"| {_fmt(metrics.get('p50_latency_us', ''))} "
            f"| {_fmt(metrics.get('p99_latency_us', ''))} |")
    if doc["missing"]:
        out += ["", "## Missing configurations", ""]
        out += [f"* `{job_hash}`" for job_hash in doc["missing"]]
    out.append("")
    return "\n".join(out)


# -- html ---------------------------------------------------------------------

_CSS = """
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;
color:#1a1a1a}
table{border-collapse:collapse;margin:0.5rem 0 1.5rem}
th,td{border:1px solid #d0d0d0;padding:0.25rem 0.6rem;text-align:right}
th:first-child,td:first-child{text-align:left}
code{background:#f4f4f4;padding:0 0.2rem}
.spark{font-family:monospace;color:#3564b0}
"""


def render_html(doc: Dict) -> str:
    """Render the merged document as one self-contained HTML page."""
    markdown = render_markdown(doc)
    body: List[str] = []
    in_table = False
    for line in markdown.splitlines():
        if line.startswith("|"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if all(set(cell) <= {"-", ":", " "} and cell
                   for cell in cells):
                continue            # the markdown separator row
            tag = "td" if in_table else "th"
            if not in_table:
                body.append("<table>")
                in_table = True
            rendered = "".join(
                f"<{tag}>{_inline_html(cell)}</{tag}>" for cell in cells)
            body.append(f"<tr>{rendered}</tr>")
            continue
        if in_table:
            body.append("</table>")
            in_table = False
        if line.startswith("# "):
            body.append(f"<h1>{_inline_html(line[2:])}</h1>")
        elif line.startswith("## "):
            body.append(f"<h2>{_inline_html(line[3:])}</h2>")
        elif line.startswith("* "):
            body.append(f"<p class='spark'>{_inline_html(line[2:])}</p>")
        elif line:
            body.append(f"<p>{_inline_html(line)}</p>")
    if in_table:
        body.append("</table>")
    title = _html.escape(doc["spec"]["name"])
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>Fleet report — {title}</title>"
            f"<style>{_CSS}</style></head><body>"
            + "\n".join(body) + "</body></html>\n")


def _inline_html(text: str) -> str:
    """Escape a markdown fragment, keeping `code` spans as <code>."""
    parts = text.split("`")
    out: List[str] = []
    for index, part in enumerate(parts):
        escaped = _html.escape(part)
        out.append(f"<code>{escaped}</code>" if index % 2 else escaped)
    return "".join(out)


def write_fleet_report(path, doc: Dict) -> str:
    """Write the report; format follows the suffix (.html/.htm = HTML)."""
    text = render_html(doc) if str(path).lower().endswith((".html", ".htm")) \
        else render_markdown(doc)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text

#!/usr/bin/env python3
"""Interface shootout: the same flash behind SATA, NVMe and OCSSD.

H-type storage (SATA) serializes everything through the host controller
and its 32 NCQ slots; s-type NVMe scales with rich queues; OCSSD moves
the whole FTL to the host (pblk), trading host CPU for control.  This
example quantifies exactly those trade-offs — Section II-A's taxonomy,
measured.
"""

from repro.core import FioJob, FullSystem, presets


def run_interface(interface: str, depth: int = 32):
    device = (presets.samsung850pro() if interface == "sata"
              else presets.intel750())
    system = FullSystem(device=device, interface=interface)
    if interface != "ocssd":
        system.precondition()
    # OCSSD reads need data placed through pblk first
    region = 2000 * 4096
    system.run_fio(FioJob(rw="write", bs=4096, iodepth=16, total_ios=2000,
                          size=region, warmup_fraction=0.0))
    result = system.run_fio(FioJob(rw="randread", bs=4096, iodepth=depth,
                                   total_ios=2000, size=region))
    return result


def main() -> None:
    print(f"{'interface':<8} {'MB/s':>8} {'mean us':>9} {'p99 us':>8} "
          f"{'kernel CPU':>11}")
    print("-" * 48)
    for interface in ("sata", "nvme", "ocssd"):
        res = run_interface(interface)
        print(f"{interface:<8} {res.bandwidth_mbps:>8.0f} "
              f"{res.latency.mean_us():>9.1f} "
              f"{res.latency.percentile(99) / 1000:>8.1f} "
              f"{res.host_kernel_utilization * 100:>10.1f}%")
    print("\nNote the h-type/s-type split: SATA tops out at its PHY and")
    print("single command path; NVMe scales; OCSSD answers from host-side")
    print("structures but burns host CPU on every request (passive storage).")


if __name__ == "__main__":
    main()

"""Enterprise workload generators matching Table III.

The paper reconstructs five enterprise traces (via TraceTracker [60]) and
executes them at user level.  We generate statistically equivalent
request streams: per-request direction, length and randomness follow the
published per-workload characteristics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.common.iorequest import IOKind, IORequest

_SECTOR = 512


@dataclass(frozen=True)
class WorkloadSpec:
    """Characteristics of one Table III workload."""

    name: str
    label: str                 # the paper's short code (W1..W5 context)
    avg_read_kb: float
    avg_write_kb: float
    read_ratio: float          # fraction of requests that are reads
    random_read: float         # fraction of reads with random addresses
    random_write: float

    def table_row(self) -> dict:
        return {
            "Workload": self.label,
            "Avg. read length (KB)": self.avg_read_kb,
            "Avg. write length (KB)": self.avg_write_kb,
            "Read ratio (%)": round(self.read_ratio * 100),
            "Random read (%)": round(self.random_read * 100),
            "Random write (%)": round(self.random_write * 100),
        }


# Table III, verbatim characteristics.
ENTERPRISE_WORKLOADS = {
    "24HR": WorkloadSpec("24HR", "Authentication Server (24HR)",
                         10.3, 8.1, 0.10, 0.97, 0.47),
    "24HRS": WorkloadSpec("24HRS", "Back End SQL Server (24HRS)",
                          106.2, 11.7, 0.18, 0.92, 0.43),
    "CFS": WorkloadSpec("CFS", "MSN Storage metadata (CFS)",
                        8.7, 12.6, 0.74, 0.94, 0.94),
    "MSNFS": WorkloadSpec("MSNFS", "MSN Storage FS (MSNFS)",
                          10.7, 11.2, 0.67, 0.98, 0.98),
    "DAP": WorkloadSpec("DAP", "Display Ads Payload (DAP)",
                        62.1, 97.2, 0.56, 0.03, 0.84),
}


class EnterpriseGenerator:
    """Deterministic request stream with Table III statistics."""

    def __init__(self, spec: WorkloadSpec, region_sectors: int,
                 seed: int = 5) -> None:
        if region_sectors < 4096:
            raise ValueError("region too small for enterprise workloads")
        self.spec = spec
        self.region_sectors = region_sectors
        self.rng = random.Random(seed)
        self._seq_read_cursor = 0
        self._seq_write_cursor = region_sectors // 2

    def _length_sectors(self, avg_kb: float) -> int:
        """Sample a request length around the published average.

        Lengths follow a clipped lognormal-flavoured draw: mostly near
        the mean with an occasional large transfer, matching how the
        paper characterizes the traces (small requests dominate, a few
        big ones move the average).
        """
        mean_sectors = max(1, round(avg_kb * 1024 / _SECTOR))
        draw = self.rng.lognormvariate(0.0, 0.6)
        sectors = max(1, round(mean_sectors * draw / 1.2))
        return min(sectors, 4096)

    def __iter__(self) -> Iterator[IORequest]:
        while True:
            yield self.next_request()

    def next_labeled(self):
        """Generate one request plus its ground-truth randomness label."""
        is_read = self.rng.random() < self.spec.read_ratio
        if is_read:
            nsectors = self._length_sectors(self.spec.avg_read_kb)
            is_random = self.rng.random() < self.spec.random_read
        else:
            nsectors = self._length_sectors(self.spec.avg_write_kb)
            is_random = self.rng.random() < self.spec.random_write
        nsectors = min(nsectors, self.region_sectors // 2)
        if is_random:
            slba = self.rng.randrange(self.region_sectors - nsectors)
            slba -= slba % 8   # 4 KB alignment
        elif is_read:
            slba = self._seq_read_cursor % (self.region_sectors - nsectors)
            self._seq_read_cursor = slba + nsectors
        else:
            slba = self._seq_write_cursor % (self.region_sectors - nsectors)
            self._seq_write_cursor = slba + nsectors
        req = IORequest(IOKind.READ if is_read else IOKind.WRITE,
                        slba, nsectors)
        return req, is_random

    def next_request(self) -> IORequest:
        req, _is_random = self.next_labeled()
        return req

    def sample_statistics(self, n: int = 2000) -> dict:
        """Empirical statistics of the generated stream (validates Table III)."""
        gen = EnterpriseGenerator(self.spec, self.region_sectors,
                                  seed=self.rng.randrange(1 << 30))
        reads, writes, rand_reads, rand_writes = [], [], 0, 0
        for _ in range(n):
            req, is_random = gen.next_labeled()
            (reads if req.kind.is_read else writes).append(req.nsectors)
            if is_random:
                if req.kind.is_read:
                    rand_reads += 1
                else:
                    rand_writes += 1
        return {
            "read_ratio": len(reads) / n,
            "avg_read_kb": (sum(reads) / len(reads) * _SECTOR / 1024)
            if reads else 0.0,
            "avg_write_kb": (sum(writes) / len(writes) * _SECTOR / 1024)
            if writes else 0.0,
            "random_read": rand_reads / max(1, len(reads)),
            "random_write": rand_writes / max(1, len(writes)),
        }

"""Internal Cache Layer: the DRAM data cache in front of the FTL.

Write-back caching with configurable associativity and replacement,
deferred read-modify-write for sub-page writes, watermark-driven flushing,
and the paper's parallelism-aware readahead (Section IV-C): when accesses
run sequentially across superpage lines, upcoming lines — which stripe
across *all* dies — are prefetched ahead of demand.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.instructions import InstructionMix
from repro.obs.tracer import NULL_SPAN_CONTEXT
from repro.sim import AllOf, Resource
from repro.ssd.computation.cores import CpuComplex
from repro.ssd.computation.dram import InternalDram
from repro.ssd.config import SSDConfig
from repro.ssd.firmware.ftl.ftl import FlashTranslationLayer
from repro.ssd.firmware.requests import LineRequest

_SECTOR = 512


class _SlotState:
    """Cache state of one flash page within a line."""

    __slots__ = ("sector_mask", "dirty", "full", "buf", "version")

    def __init__(self) -> None:
        self.sector_mask = 0      # sectors with valid data in cache
        self.dirty = False
        self.full = False         # whole page present
        self.buf: Optional[bytearray] = None
        self.version = 0          # bumped per write; guards flush races


class _CacheLine:
    __slots__ = ("line_id", "slots", "flushing")

    def __init__(self, line_id: int) -> None:
        self.line_id = line_id
        self.slots: Dict[int, _SlotState] = {}
        self.flushing = False

    def dirty_slots(self) -> List[int]:
        return [s for s, state in self.slots.items() if state.dirty]

    @property
    def is_dirty(self) -> bool:
        return any(state.dirty for state in self.slots.values())


class _LineLockTable:
    """Per-line mutual exclusion with refcounted cleanup."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._locks: Dict[int, Tuple[Resource, int]] = {}

    def acquire(self, line_id: int):
        if line_id in self._locks:
            lock, refs = self._locks[line_id]
            self._locks[line_id] = (lock, refs + 1)
        else:
            lock = Resource(self.sim, 1, name=f"line{line_id}")
            self._locks[line_id] = (lock, 1)
        return lock.acquire()  # simlint: disable=SIM106 -- lock-table API: the paired release() method undoes this; callers hold it in try/finally

    def release(self, line_id: int) -> None:
        lock, refs = self._locks[line_id]
        lock.release()
        if refs == 1:
            del self._locks[line_id]
        else:
            self._locks[line_id] = (lock, refs - 1)


class InternalCacheLayer:
    def __init__(self, sim, config: SSDConfig, cores: CpuComplex,
                 dram: InternalDram, ftl: FlashTranslationLayer,
                 data_emulation: bool = False, rng_seed: int = 7) -> None:
        self.sim = sim
        self.config = config
        self.cores = cores
        self.dram = dram
        self.ftl = ftl
        self.data_emulation = data_emulation
        self._rng = random.Random(rng_seed)
        cache = config.cache
        self.enabled = cache.enabled
        cache_bytes = int(config.dram.size * cache.fraction_of_dram)
        self.capacity_lines = max(4, cache_bytes // config.superpage_size)
        self.page_size = config.geometry.page_size
        self.sectors_per_page = self.page_size // _SECTOR
        self.slots_per_line = config.superpage_pages
        self._full_mask = (1 << self.sectors_per_page) - 1
        self._lines: "OrderedDict[int, _CacheLine]" = OrderedDict()
        self._locks = _LineLockTable(sim)
        self._lookup_mix = InstructionMix.typical(config.costs.icl_lookup)
        self._fill_mix = InstructionMix.typical(config.costs.icl_fill)
        # readahead detector
        self._seq_next_line = -1
        self._seq_run = 0
        # flusher coordination
        self._line_freed = None   # event set while writers wait for space
        self._flush_workers_busy = 0
        self._data_base = 64 * 1024 * 1024  # cache region offset in DRAM
        # statistics
        self.read_hits = 0
        self.read_misses = 0
        self.writes_absorbed = 0
        self.readaheads = 0
        self.lines_flushed = 0
        self.rmw_fetches = 0

    # -- helpers -------------------------------------------------------------

    def _line_address(self, line_id: int, slot: int) -> int:
        index = (line_id % max(1, self.capacity_lines)) * self.slots_per_line + slot
        return self._data_base + index * self.page_size

    def _sector_mask(self, offset: int, count: int) -> int:
        return ((1 << count) - 1) << offset

    def dirty_line_count(self) -> int:
        return sum(1 for line in self._lines.values() if line.is_dirty)

    def cached_line_count(self) -> int:
        return len(self._lines)

    def hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    # -- placement policy -----------------------------------------------------

    def _conflicting_lines(self, line_id: int) -> List[_CacheLine]:
        """Lines competing for the same cache frame(s) as ``line_id``."""
        assoc = self.config.cache.associativity
        if assoc == "full":
            return list(self._lines.values())
        n_sets = self.config.cache.n_sets
        target_set = line_id % n_sets
        same_set = [line for line in self._lines.values()
                    if line.line_id % n_sets == target_set]
        return same_set

    def _set_capacity(self) -> int:
        cache = self.config.cache
        if cache.associativity == "full":
            return self.capacity_lines
        if cache.associativity == "direct":
            return 1
        return cache.ways

    def _pick_victim(self, candidates) -> Optional[_CacheLine]:
        policy = self.config.cache.replacement
        if policy == "random":
            evictable = [line for line in candidates if not line.flushing]
            if not evictable:
                return None
            clean = [line for line in evictable if not line.is_dirty]
            return self._rng.choice(clean or evictable)
        # lru/fifo: candidates follow the OrderedDict's recency/insertion
        # order, so the victim is simply the first clean non-flushing
        # line, falling back to the first non-flushing (dirty) one.
        first_evictable = None
        for line in candidates:
            if line.flushing:
                continue
            if not line.is_dirty:
                return line
            if first_evictable is None:
                first_evictable = line
        return first_evictable

    def _touch(self, line: _CacheLine) -> None:
        # the line may have been evicted by a concurrent request while we
        # were filling it; touching recency only applies if still resident
        if self.config.cache.replacement == "lru" \
                and line.line_id in self._lines:
            self._lines.move_to_end(line.line_id)

    # -- the public request paths ---------------------------------------------

    def write(self, req: LineRequest):
        """Process: absorb a line write into the cache (write-back)."""
        tracer = self.sim.tracer
        with (tracer.span("icl.write", req.track, line=req.line_id)
              if tracer.enabled else NULL_SPAN_CONTEXT):
            if not self.enabled:
                yield from self._write_through(req)
                return
            yield self._locks.acquire(req.line_id)
            try:
                yield from self.cores.execute("icl", self._lookup_mix)
                line = yield from self._ensure_line(req.line_id)
                for slot, (sec_off, sec_n) in req.page_sectors.items():
                    state = line.slots.setdefault(slot, _SlotState())
                    mask = self._sector_mask(sec_off, sec_n)
                    state.sector_mask |= mask
                    state.dirty = True
                    state.version += 1
                    if state.sector_mask == self._full_mask:
                        state.full = True
                    if self.data_emulation:
                        if state.buf is None:
                            state.buf = bytearray(self.page_size)
                        payload = req.data_slices.get(slot, b"")
                        start = sec_off * _SECTOR
                        state.buf[start:start + len(payload)] = payload
                    yield from self.dram.access(
                        self._line_address(req.line_id, slot),
                        sec_n * _SECTOR, write=True)
                self._touch(line)
                self.writes_absorbed += 1
            finally:
                self._locks.release(req.line_id)
        yield from self._maybe_flush()

    def read(self, req: LineRequest):
        """Process: serve a line read; returns {slot: bytes|None}."""
        tracer = self.sim.tracer
        with (tracer.span("icl.read", req.track, line=req.line_id)
              if tracer.enabled else NULL_SPAN_CONTEXT):
            if not self.enabled:
                result = yield from self._read_through(req)
                return result
            yield self._locks.acquire(req.line_id)
            try:
                yield from self.cores.execute("icl", self._lookup_mix)
                line = self._lines.get(req.line_id)
                missing = self._missing_slots(line, req)
                if not missing:
                    self.read_hits += 1
                else:
                    self.read_misses += 1
                    line = yield from self._ensure_line(req.line_id)
                    fetched = yield from self.ftl.service_line_reads(
                        req.line_id, missing, track=req.track)
                    yield from self.cores.execute("icl", self._fill_mix)
                    for slot in missing:
                        state = line.slots.setdefault(slot, _SlotState())
                        self._merge_fetch(state, fetched.get(slot))
                        yield from self.dram.access(
                            self._line_address(req.line_id, slot),
                            self.page_size, write=True)
                result = {}
                for slot, (sec_off, sec_n) in req.page_sectors.items():
                    yield from self.dram.access(
                        self._line_address(req.line_id, slot), sec_n * _SECTOR)
                    result[slot] = self._extract(line, slot, sec_off, sec_n)
                self._touch(line)
            finally:
                self._locks.release(req.line_id)
        self._update_readahead(req.line_id)
        return result

    def flush_all(self):
        """Process: flush every dirty line (host FLUSH command)."""
        dirty = [line_id for line_id, line in self._lines.items()
                 if line.is_dirty]
        for line_id in dirty:
            yield from self._locked_flush(line_id)

    def trim(self, req: LineRequest):
        """Process: deallocate a line's slots (TRIM / NVMe DSM).

        Drops any cached copies (including dirty data — TRIM says the
        host no longer cares) and unbinds the mapping in the FTL.
        """
        yield self._locks.acquire(req.line_id)
        try:
            yield from self.cores.execute("icl", self._lookup_mix)
            line = self._lines.get(req.line_id)
            if line is not None:
                for slot in req.page_sectors:
                    line.slots.pop(slot, None)
                if not line.slots:
                    self._lines.pop(req.line_id, None)
            yield from self.ftl.trim(req.line_id, list(req.page_sectors),
                                     track=req.track)
        finally:
            self._locks.release(req.line_id)

    # -- cache-miss plumbing ------------------------------------------------------

    def _missing_slots(self, line: Optional[_CacheLine],
                       req: LineRequest) -> List[int]:
        missing = []
        for slot, (sec_off, sec_n) in req.page_sectors.items():
            mask = self._sector_mask(sec_off, sec_n)
            state = line.slots.get(slot) if line else None
            if state is None or (not state.full
                                 and (state.sector_mask & mask) != mask):
                missing.append(slot)
        return missing

    def _merge_fetch(self, state: _SlotState, page_data: Optional[bytes]) -> None:
        """Install fetched flash data under any dirty cached sectors."""
        if self.data_emulation:
            fresh = bytearray(page_data or bytes(self.page_size))
            if state.buf is not None and state.sector_mask:
                for sector in range(self.sectors_per_page):
                    if state.sector_mask >> sector & 1:
                        start = sector * _SECTOR
                        fresh[start:start + _SECTOR] = \
                            state.buf[start:start + _SECTOR]
            state.buf = fresh
        state.sector_mask = self._full_mask
        state.full = True

    def _extract(self, line: _CacheLine, slot: int, sec_off: int,
                 sec_n: int) -> Optional[bytes]:
        if not self.data_emulation:
            return None
        state = line.slots[slot]
        start = sec_off * _SECTOR
        return bytes(state.buf[start:start + sec_n * _SECTOR])

    # -- allocation / eviction -----------------------------------------------------

    def _ensure_line(self, line_id: int):
        """Process: return the cache line, evicting if space demands it.

        When every candidate victim is dirty, the requester does not
        flush synchronously: it wakes the background flusher (which
        drains at full die parallelism) and waits for a clean line —
        otherwise each write serializes on its own victim's program and
        steady-state ingest collapses far below the flash drain rate.
        """
        line = self._lines.get(line_id)
        if line is not None:
            return line
        full_assoc = self.config.cache.associativity == "full"
        while True:
            if full_assoc:
                # fully associative: any frame conflicts, so no candidate
                # list is needed until eviction time (values() is a view)
                if len(self._lines) < self.capacity_lines:
                    break
                conflicts = self._lines.values()
            else:
                conflicts = self._conflicting_lines(line_id)
                if (len(self._lines) < self.capacity_lines
                        and len(conflicts) < self._set_capacity()):
                    break
            victim = self._pick_victim(conflicts)
            if victim is not None and not victim.is_dirty:
                self._lines.pop(victim.line_id, None)
                break
            if (victim is not None and victim.is_dirty
                    and self.config.cache.associativity != "full"):
                # a narrow set: flush the conflicting victim directly
                yield from self._flush_line(victim.line_id)
                self._lines.pop(victim.line_id, None)
                break
            # all candidates dirty or mid-flush: lean on the daemon
            self._start_flush_daemon()
            if self._line_freed is None:
                self._line_freed = self.sim.event()
            yield self._line_freed
        line = _CacheLine(line_id)
        self._lines[line_id] = line
        return line

    def _flush_line(self, line_id: int):
        """Process: write a line's dirty slots down to the FTL."""
        line = self._lines.get(line_id)
        if line is None or not line.is_dirty or line.flushing:
            return
        line.flushing = True
        try:
            dirty = sorted(line.dirty_slots())
            hashmap_ok = (self.config.ftl.mapping == "page"
                          and self.config.ftl.partial_update_hashmap)
            partial = len(dirty) < self.slots_per_line
            if partial and not hashmap_ok:
                # must write the whole superpage: fetch what we don't have
                fetch = [s for s in range(self.slots_per_line)
                         if s not in line.slots or not line.slots[s].full]
                fetch = [s for s in fetch if s not in dirty
                         or not line.slots.get(s, _SlotState()).full]
                if fetch:
                    self.rmw_fetches += len(fetch)
                    fetched = yield from self.ftl.service_line_reads(
                        line_id, fetch)
                    for slot in fetch:
                        state = line.slots.setdefault(slot, _SlotState())
                        self._merge_fetch(state, fetched.get(slot))
                flush_slots = list(range(self.slots_per_line))
                partial = False
            else:
                flush_slots = dirty

            # sub-page dirty slots still need page-level read-modify-write
            rmw = [s for s in flush_slots
                   if s in line.slots and line.slots[s].dirty
                   and not line.slots[s].full]
            if rmw:
                self.rmw_fetches += len(rmw)
                fetched = yield from self.ftl.service_line_reads(line_id, rmw)
                for slot in rmw:
                    self._merge_fetch(line.slots[slot], fetched.get(slot))

            slot_data = {}
            versions = {}
            for slot in flush_slots:
                state = line.slots.setdefault(slot, _SlotState())
                if not state.full:
                    self._merge_fetch(state, None)  # never-written: zeros
                slot_data[slot] = bytes(state.buf) if state.buf is not None \
                    else None
                versions[slot] = state.version
                yield from self.dram.access(
                    self._line_address(line_id, slot), self.page_size)
            yield from self.ftl.service_line_write(line_id, slot_data,
                                                   partial=partial)
            for slot in flush_slots:
                # a write that raced the flush keeps its dirty bit
                if line.slots[slot].version == versions[slot]:
                    line.slots[slot].dirty = False
            self.lines_flushed += 1
        finally:
            line.flushing = False
            if self._line_freed is not None:
                event, self._line_freed = self._line_freed, None
                event.succeed()

    def _maybe_flush(self):
        """Process: kick background flushing past the high watermark."""
        cache = self.config.cache
        high = int(self.capacity_lines * cache.flush_high_watermark)
        if self.dirty_line_count() > high:
            self._start_flush_daemon()
        return
        yield  # pragma: no cover - makes this a generator

    def _start_flush_daemon(self) -> None:
        if not self._flush_workers_busy:
            self._flush_workers_busy = 1
            self.sim.process(self._flush_daemon())

    def _flush_daemon(self):
        """Continuously stream line flushes at full backend parallelism.

        Keeps up to ~2x the number of parallel units in flight so every
        die sees a steady supply of programs (no batch barriers).
        """
        cache = self.config.cache
        low = int(self.capacity_lines * cache.flush_low_watermark)
        max_inflight = max(8, 2 * self.config.geometry.parallel_units)
        inflight = {"count": 0}
        done_signal = [None]

        def tracked(line_id):
            try:
                yield from self._locked_flush(line_id)
            finally:
                inflight["count"] -= 1
                if done_signal[0] is not None:
                    event, done_signal[0] = done_signal[0], None
                    event.succeed()

        try:
            while (self.dirty_line_count() > low
                   or self._line_freed is not None):
                victims = [line_id for line_id, line in self._lines.items()
                           if line.is_dirty and not line.flushing]
                launched = 0
                for line_id in victims:
                    if inflight["count"] >= max_inflight:
                        break
                    inflight["count"] += 1
                    launched += 1
                    self.sim.process(tracked(line_id))
                if inflight["count"] == 0 and launched == 0:
                    return
                done_signal[0] = self.sim.event()
                yield done_signal[0]
            # drain stragglers so "daemon finished" means flushes landed
            while inflight["count"] > 0:
                done_signal[0] = self.sim.event()
                yield done_signal[0]
        finally:
            self._flush_workers_busy = 0

    def _locked_flush(self, line_id: int):
        yield self._locks.acquire(line_id)
        try:
            yield from self._flush_line(line_id)
        finally:
            self._locks.release(line_id)

    # -- readahead ---------------------------------------------------------------

    def _update_readahead(self, line_id: int) -> None:
        cache = self.config.cache
        if not cache.readahead:
            return
        # Deep queues complete sequential lines out of order, so exact
        # next-line matching breaks streams; accept anything within a
        # small window around the expected position.
        window = 8
        if abs(line_id - self._seq_next_line) <= window:
            self._seq_run += 1
            self._seq_next_line = max(self._seq_next_line, line_id + 1)
        else:
            self._seq_run = 1
            self._seq_next_line = line_id + 1
        if self._seq_run >= cache.readahead_threshold:
            # prefetch from the stream frontier, deep enough to stay
            # ahead of the whole outstanding window
            frontier = self._seq_next_line
            depth = max(cache.readahead_superpages, window)
            targets = [frontier + i for i in range(depth)
                       if (frontier + i) not in self._lines]
            max_line = self.config.logical_pages // self.slots_per_line
            targets = [t for t in targets if t < max_line]
            if targets:
                self.readaheads += len(targets)
                self.sim.process(self._prefetch(targets))

    def _prefetch(self, line_ids: List[int]):
        for line_id in line_ids:
            yield self._locks.acquire(line_id)
            try:
                if line_id in self._lines:
                    continue
                line = yield from self._ensure_line(line_id)
                slots = list(range(self.slots_per_line))
                fetched = yield from self.ftl.service_line_reads(line_id, slots)
                for slot in slots:
                    state = line.slots.setdefault(slot, _SlotState())
                    self._merge_fetch(state, fetched.get(slot))
            finally:
                self._locks.release(line_id)

    # -- pass-through mode (cache disabled) ----------------------------------------

    def _write_through(self, req: LineRequest):
        slot_data = {}
        rmw_slots = [slot for slot, (off, n) in req.page_sectors.items()
                     if n < self.sectors_per_page]
        old = {}
        if rmw_slots:
            self.rmw_fetches += len(rmw_slots)
            old = yield from self.ftl.service_line_reads(
                req.line_id, rmw_slots, track=req.track)
        for slot, (sec_off, sec_n) in req.page_sectors.items():
            if self.data_emulation:
                base = bytearray(old.get(slot) or bytes(self.page_size))
                payload = req.data_slices.get(slot, b"")
                start = sec_off * _SECTOR
                base[start:start + len(payload)] = payload
                slot_data[slot] = bytes(base)
            else:
                slot_data[slot] = None
        partial = (self.config.ftl.mapping == "page"
                   and self.config.ftl.partial_update_hashmap
                   and len(slot_data) < self.slots_per_line)
        yield from self.ftl.service_line_write(req.line_id, slot_data,
                                               partial=partial,
                                               track=req.track)

    def _read_through(self, req: LineRequest):
        slots = list(req.page_sectors)
        fetched = yield from self.ftl.service_line_reads(req.line_id, slots,
                                                         track=req.track)
        self.read_misses += 1
        result = {}
        for slot, (sec_off, sec_n) in req.page_sectors.items():
            if self.data_emulation:
                page = fetched.get(slot) or bytes(self.page_size)
                start = sec_off * _SECTOR
                result[slot] = page[start:start + sec_n * _SECTOR]
            else:
                result[slot] = None
        return result

"""Table IV: feature comparison across simulators.

For this reproduction the Amber column is *derived from the codebase*
(each flag names the module that implements it), while the baseline
columns restate the published matrix for the simulators we re-modeled.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# (feature key, human label, repro module that implements it for Amber)
FEATURES: List[Tuple[str, str, str]] = [
    ("standalone", "Standalone mode", "repro.ssd.device"),
    ("full_system", "Full-system mode", "repro.core.system"),
    ("cpu_atomic", "Host CPU: Atomic (functional)", "repro.host.cpu"),
    ("cpu_timing", "Host CPU: Timing", "repro.host.cpu"),
    ("cpu_minor", "Host CPU: Minor (in-order)", "repro.host.cpu"),
    ("cpu_hpi", "Host CPU: HPI", "repro.host.cpu"),
    ("cpu_o3", "Host CPU: Out-of-order", "repro.host.cpu"),
    ("if_sata", "Interface: SATA", "repro.interfaces.sata"),
    ("if_ufs", "Interface: UFS", "repro.interfaces.ufs"),
    ("if_nvme", "Interface: NVMe", "repro.interfaces.nvme"),
    ("if_ocssd", "Interface: OCSSD", "repro.interfaces.ocssd"),
    ("cplx_cpu", "Computation complex: CPU", "repro.ssd.computation.cores"),
    ("cplx_dram", "Computation complex: DRAM", "repro.ssd.computation.dram"),
    ("tranx", "Transaction scheduling", "repro.ssd.firmware.fil"),
    ("superpage", "Super page/block", "repro.ssd.firmware.ftl.allocator"),
    ("ispp", "ISPP latency variation", "repro.ssd.config:FlashTiming"),
    ("cache_config", "Configurable cache", "repro.ssd.firmware.icl"),
    ("readahead", "Readahead", "repro.ssd.firmware.icl"),
    ("cache_full", "Fully-associative cache", "repro.ssd.firmware.icl"),
    ("map_hybrid", "Hybrid mapping", "repro.ssd.firmware.ftl.mapping"),
    ("map_page", "Page-level mapping", "repro.ssd.firmware.ftl.mapping"),
    ("power_cpu", "Power: CPU", "repro.ssd.computation.cores"),
    ("power_dram", "Power: DRAM", "repro.ssd.computation.dram"),
    ("power_nand", "Power: NAND", "repro.ssd.storage.power"),
    ("power_energy", "Energy accounting", "repro.ssd.device"),
    ("dyn_exec", "Dynamic firmware execution", "repro.ssd.computation.cores"),
    ("dyn_queue", "Queue dynamics", "repro.interfaces.nvme.queues"),
    ("data_emulation", "Data transfer emulation", "repro.host.dma"),
]

_ALL = {key for key, _label, _mod in FEATURES}

# Published Table IV rows for the prior simulators.
SIMULATOR_FEATURES: Dict[str, set] = {
    "Amber": set(_ALL),
    "SimpleSSD 1.x": {
        "standalone", "full_system", "cpu_atomic", "if_nvme",
        "cplx_dram", "tranx", "superpage", "ispp", "cache_config",
        "cache_full", "map_page", "power_nand", "dyn_queue",
        "data_emulation",
    },
    "MQSim": {
        "standalone", "if_sata", "if_nvme", "cplx_dram", "tranx",
        "superpage", "cache_config", "map_page", "dyn_queue",
        "cache_full",
    },
    "SSDSim": {"standalone", "tranx", "superpage", "map_page"},
    "SSD-Extension": {"standalone", "map_page", "map_hybrid"},
    "FlashSim": {"standalone", "map_page", "map_hybrid", "cache_config"},
}


def feature_table() -> List[List[str]]:
    """Rows of the Table IV reproduction: feature x simulator check marks."""
    sims = list(SIMULATOR_FEATURES)
    rows = []
    for key, label, module in FEATURES:
        row = [label]
        for sim in sims:
            row.append("yes" if key in SIMULATOR_FEATURES[sim] else "")
        row.append(module)
        rows.append(row)
    return rows


def feature_headers() -> List[str]:
    return ["Feature"] + list(SIMULATOR_FEATURES) + ["Implemented by"]


def amber_feature_count() -> int:
    return len(SIMULATOR_FEATURES["Amber"])

"""Unit tests for the OS storage stack: schedulers, block layer, page cache."""

import pytest

from repro.common.iorequest import IOKind, IORequest
from repro.common.units import GB, MB
from repro.host.cpu import CpuModel, HostCpu
from repro.host.memory import HostMemory
from repro.hostos.iosched import (
    BfqScheduler,
    CfqScheduler,
    NoopScheduler,
    make_scheduler,
)
from repro.hostos.kernel import kernel_4_4, kernel_4_14, kernel_by_version
from repro.hostos.blocklayer import BlockLayer
from repro.hostos.pagecache import PageCache
from repro.sim import Simulator


def req(kind=IOKind.READ, slba=0, n=8):
    return IORequest(kind, slba, n)


class TestKernelProfiles:
    def test_versions_resolve(self):
        assert kernel_by_version("4.4").scheduler == "cfq"
        assert kernel_by_version("4.14").scheduler == "bfq"

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            kernel_by_version("5.0")

    def test_44_heavier_than_414(self):
        old, new = kernel_4_4(), kernel_4_14()
        assert old.submit_path_instr > new.submit_path_instr
        assert old.dispatch_quantum < new.dispatch_quantum
        assert not old.merge and new.merge


class TestSchedulers:
    def test_factory(self):
        assert isinstance(make_scheduler("noop"), NoopScheduler)
        assert isinstance(make_scheduler("cfq"), CfqScheduler)
        assert isinstance(make_scheduler("bfq"), BfqScheduler)
        with pytest.raises(ValueError):
            make_scheduler("deadline")

    def test_noop_is_fifo(self):
        sched = NoopScheduler()
        for slba in (30, 10, 20):
            sched.add(req(slba=slba))
        assert [sched.next().slba for _ in range(3)] == [30, 10, 20]

    def test_cfq_serves_slices_per_stream(self):
        sched = CfqScheduler(quantum=2, slice_idle_ns=0)
        for i in range(4):
            sched.add(req(slba=i * 8), stream_id=0)
            sched.add(req(slba=1000 + i * 8), stream_id=1)
        order = [sched.next(0).slba for _ in range(8)]
        # two from one stream, then two from the other, alternating
        assert order[0] < 1000 and order[1] < 1000
        assert order[2] >= 1000 and order[3] >= 1000

    def test_cfq_idles_after_stream_drains(self):
        sched = CfqScheduler(quantum=4, slice_idle_ns=1000)
        sched.add(req(slba=0), stream_id=0)
        sched.add(req(slba=100), stream_id=1)
        assert sched.next(now=0) is not None     # stream 0 drains
        assert sched.next(now=10) is None        # idling, stream 1 waits
        assert sched.idle_until == 1000
        assert sched.next(now=2000) is not None  # idle expired

    def test_cfq_idle_cancelled_by_new_request(self):
        sched = CfqScheduler(quantum=4, slice_idle_ns=10_000)
        sched.add(req(slba=0), stream_id=0)
        assert sched.next(now=0).slba == 0
        sched.add(req(slba=8), stream_id=0)       # the anticipated request
        got = sched.next(now=100)
        assert got is not None and got.slba == 8

    def test_cfq_sorts_within_stream(self):
        sched = CfqScheduler(quantum=10, slice_idle_ns=0)
        for slba in (80, 16, 48):
            sched.add(req(slba=slba), stream_id=0)
        order = [sched.next(0).slba for _ in range(3)]
        assert order == [16, 48, 80]

    def test_bfq_budget_rotates_streams(self):
        sched = BfqScheduler(budget_sectors=16)
        for i in range(3):
            sched.add(req(slba=i * 8, n=8), stream_id=0)
            sched.add(req(slba=1000 + i * 8, n=8), stream_id=1)
        order = [sched.next().slba for _ in range(6)]
        # 16-sector budget = two 8-sector requests before switching
        assert order[0] < 1000 and order[1] < 1000 and order[2] >= 1000

    def test_len_counts_all_streams(self):
        sched = BfqScheduler()
        sched.add(req(), stream_id=0)
        sched.add(req(slba=50), stream_id=1)
        assert len(sched) == 2


class _StubAdapter:
    """Device stand-in completing requests after a fixed delay."""

    max_outstanding = 32

    def __init__(self, sim, delay=10_000):
        self.sim = sim
        self.delay = delay
        self.submitted = []

    def submit(self, request):
        self.submitted.append(request)
        event = self.sim.event()
        self.sim.schedule(self.delay, event.succeed, None)
        return event


class TestBlockLayer:
    def _layer(self, sim, profile=None):
        cpu = HostCpu(sim, 4, 4_000_000_000, model=CpuModel.O3)
        adapter = _StubAdapter(sim)
        layer = BlockLayer(sim, cpu, profile or kernel_4_14(), adapter)
        return layer, adapter

    def test_submit_completes(self):
        sim = Simulator()
        layer, adapter = self._layer(sim)

        def scenario():
            event = yield from layer.submit(req())
            yield event

        sim.run_process(scenario())
        assert len(adapter.submitted) == 1
        assert layer.requests_dispatched == 1

    def test_merge_adjacent_sequential(self):
        sim = Simulator()
        cpu = HostCpu(sim, 4, 4_000_000_000, model=CpuModel.O3)
        adapter = _StubAdapter(sim, delay=5_000_000)
        adapter.max_outstanding = 1   # dispatch stalls behind one filler
        layer = BlockLayer(sim, cpu, kernel_4_14(), adapter)

        def scenario():
            filler = yield from layer.submit(req(slba=10_000))
            e1 = yield from layer.submit(req(slba=0, n=8))
            e2 = yield from layer.submit(req(slba=8, n=8))  # back-merges
            yield filler
            yield e1
            yield e2

        sim.run_process(scenario())
        assert layer.requests_merged == 1
        merged = [r for r in adapter.submitted if r.slba == 0]
        assert merged and merged[0].nsectors == 16

    def test_no_merge_for_nonadjacent(self):
        sim = Simulator()
        layer, adapter = self._layer(sim)

        def scenario():
            e1 = yield from layer.submit(req(slba=0, n=8))
            e2 = yield from layer.submit(req(slba=100, n=8))
            yield e1
            yield e2

        sim.run_process(scenario())
        assert layer.requests_merged == 0
        assert len(adapter.submitted) == 2

    def test_kernel_44_does_not_merge(self):
        sim = Simulator()
        layer, adapter = self._layer(sim, kernel_4_4())

        def scenario():
            e1 = yield from layer.submit(req(slba=0, n=8))
            e2 = yield from layer.submit(req(slba=8, n=8))
            yield e1
            yield e2

        sim.run_process(scenario())
        assert layer.requests_merged == 0

    def test_inflight_respects_limit(self):
        sim = Simulator()
        cpu = HostCpu(sim, 4, 4_000_000_000, model=CpuModel.O3)
        adapter = _StubAdapter(sim, delay=1_000_000)
        layer = BlockLayer(sim, cpu, kernel_4_14(), adapter)
        peak = {"value": 0}

        def scenario():
            events = []
            for i in range(64):
                event = yield from layer.submit(req(slba=i * 1000, n=8))
                events.append(event)
                peak["value"] = max(peak["value"], layer.inflight)
            for event in events:
                yield event

        sim.run_process(scenario())
        assert peak["value"] <= layer.inflight_limit


class TestPageCache:
    def _cache(self, sim, data=True):
        mem = HostMemory(sim, 1 * GB, bandwidth=10 * GB)
        return PageCache(sim, mem, 1 * MB, data_emulation=data), mem

    def test_miss_then_hit(self):
        sim = Simulator()
        cache, _mem = self._cache(sim)
        assert not cache.lookup_read(0, 8)
        cache.install_read(0, 8, b"x" * 4096)
        assert cache.lookup_read(0, 8)
        assert cache.read_data(0, 8) == b"x" * 4096

    def test_partial_page_read_not_installed(self):
        sim = Simulator()
        cache, _mem = self._cache(sim)
        cache.install_read(2, 4, b"y" * 2048)   # not page-aligned coverage
        assert not cache.lookup_read(2, 4)

    def test_write_absorbs_aligned_only(self):
        sim = Simulator()
        cache, _mem = self._cache(sim)
        assert cache.write(0, 8, b"z" * 4096)
        assert not cache.write(3, 4, b"w" * 2048)
        assert cache.dirty_pages() == [0]

    def test_ledger_reflects_cached_pages(self):
        sim = Simulator()
        cache, mem = self._cache(sim)
        cache.write(0, 16, None)
        assert mem.usage_of("pagecache") == 2 * 4096
        cache.drop(0)
        assert mem.usage_of("pagecache") == 4096

    def test_eviction_candidates_when_over_capacity(self):
        sim = Simulator()
        mem = HostMemory(sim, 1 * GB, bandwidth=10 * GB)
        cache = PageCache(sim, mem, 8 * 4096, data_emulation=False)
        for i in range(12):
            cache.write(i * 8, 8, None)
        assert len(cache.evict_candidates()) == 4

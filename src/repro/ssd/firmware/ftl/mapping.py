"""Address translation tables: page-level, block-level and hybrid mapping.

All mappings share one interface (``lookup``, ``bind``, ``unbind``) over
logical page numbers; the FTL composes them with allocation and GC.  The
reverse map supports GC migration and integrity checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro.ssd.config import SSDConfig

UNMAPPED = -1


class PageMapping:
    """Pure page-level map: any LPN can live on any physical page.

    Implements the paper's default (super-page-basis page mapping): full
    superpage writes stripe across units; the *partial-update hashmap*
    (Section IV-C) is modeled as an auxiliary map the FTL consults when a
    page was selectively remapped outside its home superpage stripe.
    """

    kind = "page"

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        self.l2p = np.full(config.logical_pages, UNMAPPED, dtype=np.int64)
        self.p2l = np.full(config.geometry.total_physical_pages, UNMAPPED,
                           dtype=np.int64)
        # LPNs remapped individually by the partial-update optimisation.
        self.partial_hashmap: Dict[int, int] = {}

    @property
    def mapped_count(self) -> int:
        return int(np.count_nonzero(self.l2p != UNMAPPED))

    def lookup(self, lpn: int) -> int:
        return int(self.l2p[lpn])

    def reverse(self, ppn: int) -> int:
        return int(self.p2l[ppn])

    def bind(self, lpn: int, ppn: int) -> Optional[int]:
        """Map ``lpn`` to ``ppn``; returns the displaced old PPN (or None)."""
        old = int(self.l2p[lpn])
        self.l2p[lpn] = ppn
        self.p2l[ppn] = lpn
        if old != UNMAPPED:
            self.p2l[old] = UNMAPPED
            return old
        return None

    def unbind(self, lpn: int) -> Optional[int]:
        old = int(self.l2p[lpn])
        if old == UNMAPPED:
            return None
        self.l2p[lpn] = UNMAPPED
        self.p2l[old] = UNMAPPED
        self.partial_hashmap.pop(lpn, None)
        return old

    def mark_partial(self, lpn: int, ppn: int) -> None:
        self.partial_hashmap[lpn] = ppn

    def is_partial(self, lpn: int) -> bool:
        return lpn in self.partial_hashmap

    def mapped_lpns(self) -> Iterator[int]:
        return iter(np.nonzero(self.l2p != UNMAPPED)[0])


class BlockMapping:
    """Block-level map: a logical block maps to one physical block.

    The page offset within the block is fixed, so an overwrite of any
    page forces migration of the whole logical block — the classic
    small-write penalty this scheme trades for a tiny mapping table.
    The FTL treats a migration requirement as the return value of
    :meth:`plan_write`.
    """

    kind = "block"

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        pages = config.geometry.pages_per_block
        self.pages_per_block = pages
        n_lblocks = -(-config.logical_pages // pages)
        self.l2p_block = np.full(n_lblocks, UNMAPPED, dtype=np.int64)
        # ppn-level reverse map kept for integrity checks
        self.p2l = np.full(config.geometry.total_physical_pages, UNMAPPED,
                           dtype=np.int64)

    def lookup(self, lpn: int) -> int:
        lbn, off = divmod(lpn, self.pages_per_block)
        base = int(self.l2p_block[lbn])
        if base == UNMAPPED:
            return UNMAPPED
        return base + off

    def block_base(self, lbn: int) -> int:
        return int(self.l2p_block[lbn])

    def bind_block(self, lbn: int, first_ppn: int) -> Optional[int]:
        old = int(self.l2p_block[lbn])
        self.l2p_block[lbn] = first_ppn
        for off in range(self.pages_per_block):
            self.p2l[first_ppn + off] = lbn * self.pages_per_block + off
        return old if old != UNMAPPED else None

    def reverse(self, ppn: int) -> int:
        return int(self.p2l[ppn])


class HybridMapping:
    """Block map plus page-mapped log blocks (BAST-style hybrid).

    Sequential data lives in block-mapped *data blocks*; overwrites land
    in a bounded set of page-mapped *log* entries.  When the log fills,
    the FTL must merge (modeled as migrations).  Captures the behaviour
    class without modeling a specific commercial variant.
    """

    kind = "hybrid"

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        self.block_map = BlockMapping(config)
        self.log_map: Dict[int, int] = {}     # lpn -> ppn (newest wins)
        self._log_p2l: Dict[int, int] = {}    # ppn -> lpn for GC migration
        self.log_capacity = (config.ftl.hybrid_log_blocks
                             * config.geometry.pages_per_block)

    def lookup(self, lpn: int) -> int:
        if lpn in self.log_map:
            return self.log_map[lpn]
        return self.block_map.lookup(lpn)

    def reverse(self, ppn: int) -> int:
        if ppn in self._log_p2l:
            return self._log_p2l[ppn]
        return self.block_map.reverse(ppn)

    def log_full(self) -> bool:
        return len(self.log_map) >= self.log_capacity

    def bind_log(self, lpn: int, ppn: int) -> Optional[int]:
        old = self.log_map.get(lpn)
        self.log_map[lpn] = ppn
        if old is not None:
            self._log_p2l.pop(old, None)
        self._log_p2l[ppn] = lpn
        return old

    # GC migration entry point (same signature as PageMapping.bind)
    def bind(self, lpn: int, ppn: int) -> Optional[int]:
        return self.bind_log(lpn, ppn)

    def drain_log(self) -> Dict[int, int]:
        """Take the whole log for merging; returns the drained entries."""
        drained, self.log_map = self.log_map, {}
        self._log_p2l.clear()
        return drained


def make_mapping(config: SSDConfig):
    """Factory keyed on ``config.ftl.mapping``."""
    table = {"page": PageMapping, "block": BlockMapping, "hybrid": HybridMapping}
    try:
        return table[config.ftl.mapping](config)
    except KeyError:
        raise ValueError(f"unknown mapping {config.ftl.mapping!r}") from None

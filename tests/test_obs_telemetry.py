"""Telemetry epochs: streaming histograms, bounded time series, epoch
sampling determinism, flight-recorder failure dumps, zero-overhead pins
and report generation (docs/OBSERVABILITY.md, "Telemetry & reports")."""

import json
import random
from pathlib import Path

import pytest

from repro.common.stats import percentile_exact, percentile_sorted
from repro.obs import (
    FlightRecorder,
    LogHistogram,
    TimeSeries,
    disable_telemetry,
    disable_tracing,
    enable_telemetry,
    enable_tracing,
    probe_for,
    probes,
    sparkline,
    telemetry_enabled,
    write_report,
)
from repro.sim import Simulator

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _reset_observability():
    """Every test leaves the process-wide switches off."""
    yield
    disable_telemetry()
    disable_tracing()


# -- shared percentile helper -------------------------------------------------

class TestSharedPercentile:
    def test_empty_is_zero(self):
        assert percentile_sorted([], 50) == 0.0

    def test_single_sample_for_every_p(self):
        for p in (0, 37.5, 100):
            assert percentile_sorted([42], p) == 42.0

    def test_p0_and_p100_are_extremes(self):
        ordered = [1, 5, 9, 200]
        assert percentile_sorted(ordered, 0) == 1.0
        assert percentile_sorted(ordered, 100) == 200.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile_sorted([1, 2], -1)
        with pytest.raises(ValueError):
            percentile_sorted([1, 2], 100.5)

    def test_linear_interpolation(self):
        # rank = 0.25 * 3 = 0.75 between 10 and 20
        assert percentile_sorted([10, 20, 30, 40], 25) == pytest.approx(17.5)

    def test_exact_wrapper_sorts(self):
        assert percentile_exact([30, 10, 20], 50) == 20.0


# -- streaming log-bucketed histogram -----------------------------------------

class TestLogHistogram:
    def test_small_values_are_exact(self):
        hist = LogHistogram()
        for v in range(16):
            hist.record(v)
        assert [(lo, hi, n) for lo, hi, n in hist.buckets()] == [
            (v, v + 1, 1) for v in range(16)]

    def test_bucket_width_bounds_relative_error(self):
        hist = LogHistogram(subbuckets=16)
        for value in (16, 1000, 123_456, 10**9):
            lo, hi = hist._bounds_of(hist._index_of(value))
            assert lo <= value < hi
            assert (hi - lo) <= max(1, value / 16)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram().record(-5)

    def test_subbuckets_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            LogHistogram(subbuckets=12)

    def test_accuracy_against_exact_on_10k_samples(self):
        """p50/p95/p99 agree with exact within the documented error."""
        rng = random.Random(42)
        samples = [int(rng.lognormvariate(10, 1.2)) for _ in range(10_000)]
        hist = LogHistogram()
        for s in samples:
            hist.record(s)
        ordered = sorted(samples)
        for p in (50, 90, 95, 99):
            exact = percentile_sorted(ordered, p)
            estimate = hist.percentile(p)
            assert abs(estimate - exact) <= hist.relative_error * exact + 1, (
                f"p{p}: estimate {estimate} vs exact {exact}")

    def test_exact_aggregates(self):
        rng = random.Random(7)
        samples = [rng.randrange(0, 1 << 30) for _ in range(2000)]
        hist = LogHistogram()
        for s in samples:
            hist.record(s)
        assert hist.count == 2000
        assert hist.total == sum(samples)
        assert hist.min == min(samples)
        assert hist.max == max(samples)
        assert hist.mean() == pytest.approx(sum(samples) / 2000)

    def test_merge_equals_single_stream(self):
        rng = random.Random(9)
        samples = [int(rng.expovariate(1e-5)) for _ in range(5000)]
        whole = LogHistogram()
        left, right = LogHistogram(), LogHistogram()
        for i, s in enumerate(samples):
            whole.record(s)
            (left if i % 2 else right).record(s)
        left.merge(right)
        assert left.count == whole.count
        assert left.total == whole.total
        assert left.min == whole.min and left.max == whole.max
        assert left.percentiles([50, 95, 99]) == whole.percentiles([50, 95, 99])

    def test_merge_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(16).merge(LogHistogram(32))

    def test_percentiles_monotone_and_clamped(self):
        rng = random.Random(3)
        hist = LogHistogram()
        for _ in range(300):
            hist.record(rng.randrange(1, 10**7))
        values = hist.percentiles([0, 10, 50, 90, 99, 100])
        assert values == sorted(values)
        assert values[0] >= hist.min
        assert values[-1] <= hist.max


# -- bounded time series ------------------------------------------------------

class TestTimeSeries:
    def test_memory_stays_bounded(self):
        ts = TimeSeries("x", max_points=16)
        for i in range(10_000):
            ts.append(i * 10, float(i))
        assert len(ts) <= 16
        assert ts.total_appends == 10_000
        assert ts.last_value == 9999.0

    def test_decimation_spans_whole_run(self):
        ts = TimeSeries("x", max_points=8)
        for i in range(1000):
            ts.append(i, float(i))
        times = [t for t, _v in ts.points()]
        assert times[0] == 0                 # oldest point survives
        assert times == sorted(times)
        assert times[-1] >= 500              # coverage reaches the tail

    def test_deterministic_retention(self):
        def build():
            ts = TimeSeries("x", max_points=32)
            for i in range(777):
                ts.append(i * 3, float(i * i % 97))
            return ts.points()
        assert build() == build()

    def test_sparkline_width_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        line = sparkline([float(i) for i in range(500)], width=32)
        assert len(line) == 32


# -- epoch sampler ------------------------------------------------------------

def _busy_process(sim, rounds=200):
    for i in range(rounds):
        yield sim.timeout(7 + (i % 5))


class TestEpochSampler:
    def test_probe_absent_when_disabled(self):
        assert not telemetry_enabled()
        assert Simulator().telemetry is None
        assert probe_for(Simulator()) is None

    def test_samples_builtin_series(self):
        enable_telemetry(epoch_ns=50)
        sim = Simulator()
        assert sim.telemetry is not None
        sim.run_process(_busy_process(sim))
        probe = sim.telemetry
        assert probe.epochs_sampled > 5
        assert "sim.events_processed" in probe.series
        counts = probe.series["sim.events_processed"].values()
        assert counts == sorted(counts)      # monotone counter

    def test_sample_times_lie_on_epoch_boundaries(self):
        enable_telemetry(epoch_ns=64)
        sim = Simulator()
        sim.run_process(_busy_process(sim))
        for t, _v in sim.telemetry.series["sim.events_processed"].points():
            assert t % 64 == 0

    def test_identical_runs_produce_identical_series(self):
        def run_once():
            enable_telemetry(epoch_ns=32)
            sim = Simulator()
            sim.run_process(_busy_process(sim))
            series = {name: ts.points()
                      for name, ts in sim.telemetry.series.items()}
            disable_telemetry()
            return series
        assert run_once() == run_once()

    def test_probes_collected_and_labelled(self):
        enable_telemetry(epoch_ns=100)
        s1, s2 = Simulator(), Simulator()
        collected = probes()
        assert [p.sim for p in collected] == [s1, s2]
        assert len({p.label for p in collected}) == 2


# -- zero overhead / enabled invariance ---------------------------------------

def _recorded_perf():
    doc = json.loads((GOLDEN_DIR / "perf_scenarios.json").read_text())
    return doc["payload"]


class TestDeterminismPins:
    def test_disabled_matches_committed_golden(self):
        """Telemetry off (the default): bit-identical to the seed facts."""
        from repro.bench.scenarios import kernel_churn
        recorded = _recorded_perf()["kernel_churn"]
        result = kernel_churn("smoke")
        assert result.events == recorded["events"]
        assert result.sim_ns == recorded["sim_ns"]

    def test_enabled_telemetry_changes_nothing(self):
        """Telemetry + tracing on: same events and simulated time.

        The probe only observes — it schedules no events — so even an
        aggressive epoch period leaves every simulated fact identical.
        """
        from repro.bench.scenarios import kernel_churn, randread_nvme
        recorded = _recorded_perf()
        enable_tracing()
        enable_telemetry(epoch_ns=100)
        churn = kernel_churn("smoke")
        read = randread_nvme("smoke")
        assert churn.events == recorded["kernel_churn"]["events"]
        assert churn.sim_ns == recorded["kernel_churn"]["sim_ns"]
        assert read.events == recorded["randread_nvme"]["events"]
        assert read.sim_ns == recorded["randread_nvme"]["sim_ns"]
        # and the probes did observe the runs
        assert any(p.epochs_sampled > 0 for p in probes())


# -- flight recorder ----------------------------------------------------------

class TestFlightRecorder:
    def test_ring_is_bounded_and_keeps_newest(self):
        rec = FlightRecorder(capacity=16)
        for i in range(1000):
            rec.note_event(i, f"E{i}")
        events = rec.recent_events()
        assert len(events) == 16
        assert events[0] == (984, "E984")
        assert events[-1] == (999, "E999")

    def test_dump_on_run_process_failure(self, tmp_path):
        enable_telemetry(epoch_ns=50, dump_dir=str(tmp_path))
        sim = Simulator()

        def doomed():
            yield sim.timeout(120)
            raise RuntimeError("flash array on fire")

        with pytest.raises(RuntimeError, match="on fire"):
            sim.run_process(doomed())
        dumps = list(tmp_path.glob("flightrec-*.json"))
        assert len(dumps) == 1
        doc = json.loads(dumps[0].read_text())
        assert doc["error"]["type"] == "RuntimeError"
        assert "on fire" in doc["error"]["message"]
        assert doc["sim"]["now_ns"] == 120
        assert doc["recent_events"]          # the ring made it out
        assert sim.telemetry.flight.dumped_to == str(dumps[0])

    def test_dump_on_deadline_miss(self, tmp_path):
        enable_telemetry(dump_dir=str(tmp_path))
        sim = Simulator()

        def slow():
            yield sim.timeout(10_000)

        with pytest.raises(RuntimeError, match="deadline"):
            sim.run_process(slow(), until=100)
        assert list(tmp_path.glob("flightrec-*.json"))

    def test_colliding_dumps_get_suffixes(self, tmp_path):
        enable_telemetry(dump_dir=str(tmp_path))
        for _ in range(2):
            sim = Simulator()
            sim.telemetry.label = "same"
            sim.telemetry.flight.label = "same"

            def boom():
                raise ValueError("x")
                yield

            with pytest.raises(ValueError):
                sim.run_process(boom())
        assert len(list(tmp_path.glob("flightrec-same*.json"))) == 2

    def test_no_dump_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        sim = Simulator()

        def boom():
            raise ValueError("x")
            yield

        with pytest.raises(ValueError):
            sim.run_process(boom())
        assert not list(tmp_path.glob("flightrec-*.json"))


# -- report generation --------------------------------------------------------

def _tiny_full_system_run():
    from repro.bench.scenarios import _storm_config
    from repro.core.fio import FioJob
    from repro.core.system import FullSystem

    system = FullSystem(device=_storm_config(), interface="nvme")
    system.precondition()
    system.run_fio(FioJob(rw="randread", bs=4096, iodepth=8, total_ios=60))
    return system


class TestReports:
    def test_html_report_contents(self, tmp_path):
        enable_tracing()
        enable_telemetry(epoch_ns=10_000)
        _tiny_full_system_run()
        out = tmp_path / "run.html"
        write_report(str(out), title="telemetry test run")
        text = out.read_text()
        assert text.startswith("<!doctype html>")
        # at least three distinct epoch time-series by name
        for series in ("nvme.sq.depth", "ssd.channel0.util",
                       "ssd.ftl.gc_pages_migrated", "os.block.inflight",
                       "sim.events_processed"):
            assert series in text, series
        # per-layer latency histograms from the span stream
        assert "Per-layer latency histograms" in text
        for kind in ("io.submit", "flash.read", "hil.serve"):
            assert kind in text, kind
        assert "bucket error" in text
        # self-contained: inline style and svg sparklines, no external refs
        assert "<style>" in text and "<svg" in text
        for external in ("href=", "src=", "http://", "https://"):
            assert external not in text, external

    def test_markdown_report_contents(self, tmp_path):
        enable_tracing()
        enable_telemetry(epoch_ns=10_000)
        _tiny_full_system_run()
        out = tmp_path / "run.md"
        write_report(str(out), title="telemetry test run")
        text = out.read_text()
        assert text.startswith("# telemetry test run")
        assert "nvme.sq.depth" in text
        assert "## Per-layer latency histograms" in text
        assert "## Span latency breakdown" in text
        assert any(block in text for block in "▁▂▃▄▅▆▇█")

    def test_report_without_telemetry_degrades_gracefully(self, tmp_path):
        out = tmp_path / "empty.md"
        write_report(str(out), title="nothing armed")
        text = out.read_text()
        assert "Telemetry was not enabled" in text
        assert "Tracing was not enabled" in text


# -- CLI name resolution ------------------------------------------------------

class TestExperimentNameResolution:
    def test_short_and_module_names_resolve(self):
        from repro.experiments.__main__ import resolve_experiment
        assert resolve_experiment("fig12") == "fig12"
        assert resolve_experiment("fig12_os_impact") == "fig12"
        assert resolve_experiment("fig16_simspeed") == "fig16"
        assert resolve_experiment("nope") is None


# -- bench latency block ------------------------------------------------------

class TestBenchLatencyBlock:
    def test_scenario_to_dict_shape_unchanged(self):
        """``to_dict`` is pinned by the perf golden; latency rides outside."""
        from repro.bench.scenarios import ScenarioResult
        result = ScenarioResult("x", "smoke", 0.5, 10, 100, {})
        assert set(result.to_dict()) == {
            "name", "profile", "wall_seconds", "events", "sim_ns",
            "extra", "events_per_sec"}
        assert result.latency is None

    def test_run_all_merges_latency(self):
        from repro.bench.record import run_all
        results = run_all(profile="smoke", repeats=1,
                          names=["randread_nvme"])
        block = results["randread_nvme"]["latency"]
        assert block["samples"] > 0
        assert 0 < block["p50_us"] <= block["p99_us"]
        assert block["mean_us"] > 0

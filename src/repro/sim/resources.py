"""Shared-resource primitives: semaphores, FIFO stores, priority stores."""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush
from itertools import count
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.events import Event


class Resource:
    """A capacity-limited resource with FIFO granting.

    Usage inside a process::

        grant = resource.acquire()
        yield grant
        ...  # hold the resource
        resource.release()
    """

    def __init__(self, sim, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # busy-time accounting for utilization reports
        self._busy_since: Optional[int] = None
        self._busy_time: int = 0
        sanitizer = getattr(sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.watch_resource(self)

    @property
    def in_use(self) -> int:
        """Number of units currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of acquire requests waiting for a free unit."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request one unit; the returned event fires when granted."""
        sim = self.sim
        event = Event(sim)
        if self._in_use < self.capacity:
            # inline _grant + succeed: the uncontended fast path
            if self._in_use == 0 and self._busy_since is None:
                self._busy_since = sim._now
            self._in_use += 1
            event._triggered = True
            event._value = self
            heappush(sim._queue, (sim._now, next(sim._sequence), event))
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, granting the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())
        elif self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.sim.now - self._busy_since
            self._busy_since = None

    def _grant(self, event: Event) -> None:
        if self._in_use == 0 and self._busy_since is None:
            self._busy_since = self.sim._now
        self._in_use += 1
        event.succeed(self)

    def busy_time(self) -> int:
        """Total ns during which at least one unit was held."""
        total = self._busy_time
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        return total

    def utilization(self, elapsed: Optional[int] = None) -> float:
        """Busy fraction over ``elapsed`` ns (default: since t=0)."""
        elapsed = elapsed if elapsed is not None else self.sim.now
        return self.busy_time() / elapsed if elapsed > 0 else 0.0


class Store:
    """Unbounded-or-bounded FIFO channel between processes."""

    def __init__(self, sim, capacity: Optional[int] = None, name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of get requests blocked on an empty store."""
        return len(self._getters)

    def put(self, item: Any) -> Event:
        """Append ``item``; the event fires once the store accepts it."""
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Take the oldest item; the event fires with it as value."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def peek_items(self) -> List[Any]:
        """Snapshot of queued items (read-only view for schedulers)."""
        return list(self._items)

    def _admit_putter(self) -> None:
        if self._putters:
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed()


class PriorityStore(Store):
    """A store whose items are retrieved lowest-key-first.

    Items are ``(priority, item)`` pairs passed to :meth:`put`; ties break
    FIFO.  :meth:`get` yields the bare item.
    """

    def __init__(self, sim, capacity: Optional[int] = None, name: str = "") -> None:
        super().__init__(sim, capacity, name)
        self._heap: List[Tuple[Any, int, Any]] = []
        self._seq = count()

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any, priority: Any = 0) -> Event:
        """Insert ``item`` with ``priority`` (lower retrieves first)."""
        event = Event(self.sim)
        if self._getters and not self._heap:
            self._getters.popleft().succeed(item)
            event.succeed()
            return event
        if self.capacity is not None and len(self._heap) >= self.capacity:
            raise RuntimeError("PriorityStore does not support blocking puts")
        heapq.heappush(self._heap, (priority, next(self._seq), item))
        event.succeed()
        # A getter may have been waiting while higher-priority items queue.
        if self._getters:
            _prio, _seq, head = heapq.heappop(self._heap)
            self._getters.popleft().succeed(head)
        return event

    def get(self) -> Event:
        """Take the lowest-priority-key item; ties resolve FIFO."""
        event = Event(self.sim)
        if self._heap:
            _prio, _seq, item = heapq.heappop(self._heap)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._heap:
            _prio, _seq, item = heapq.heappop(self._heap)
            return True, item
        return False, None

    def peek_items(self) -> List[Any]:
        """Snapshot of queued items in retrieval order."""
        return [item for _prio, _seq, item in sorted(self._heap)]

"""SIM220 fixture: two paths acquire die/channel in opposite orders."""


class Backend:
    def read(self, sim):
        yield self.die.acquire()
        try:
            yield self.channel.acquire()
            try:
                yield sim.timeout(5)
            finally:
                self.channel.release()
        finally:
            self.die.release()

    def program(self, sim):
        yield self.channel.acquire()    # inverted: channel before die
        try:
            yield self.die.acquire()
            try:
                yield sim.timeout(7)
            finally:
                self.die.release()
        finally:
            self.channel.release()

"""Calibration invariants: presets must keep the relationships the
validation experiments rely on (fast device is fast, SATA is capped...).

These are cheap guards against accidental de-calibration when someone
edits a preset: they check *derived* quantities, not magic numbers.
"""

import pytest

from repro.common.units import MB, SEC
from repro.core import presets


def device_read_service_ns(config):
    """Rough per-4K-read service time: flash sense + channel transfer."""
    timing = config.timing
    transfer = 4096 / timing.channel_bandwidth * SEC
    return timing.t_read_avg + transfer


def hil_pipeline_ns(config):
    """Per-command time on the HIL core (the saturation mechanism)."""
    costs = config.costs
    instr = costs.hil_fetch + costs.hil_complete + costs.doorbell_service
    cycles = instr * 1.33   # average class CPI
    return cycles / config.cores.frequency * SEC


class TestRelativeSpeeds:
    def test_zssd_flash_is_order_of_magnitude_faster(self):
        z = device_read_service_ns(presets.zssd())
        i = device_read_service_ns(presets.intel750())
        assert z < i / 5

    def test_hil_rate_supports_observed_saturation(self):
        """Intel 750's firmware rate must cap IOPS in the few-hundred-K
        range — that is what makes bandwidth saturate by QD 8-16."""
        per_cmd = hil_pipeline_ns(presets.intel750())
        iops_cap = SEC / per_cmd
        assert 150_000 < iops_cap < 800_000

    def test_sata_link_is_the_850pro_bottleneck(self):
        """An h-type device must be PHY-limited, not flash-limited."""
        from repro.host.pcie import SataLink
        from repro.sim import Simulator
        link = SataLink(Simulator())
        config = presets.samsung850pro()
        geom = config.geometry
        flash_read_bw = (geom.total_dies * geom.page_size
                         / (config.timing.t_read_avg / SEC))
        assert link.effective_bandwidth < flash_read_bw

    def test_parallel_units_match_paper_order(self):
        assert presets.intel750().geometry.total_dies == 60   # 12 x 5

    def test_all_presets_have_three_embedded_cores(self):
        for name in ("intel750", "850pro", "zssd", "983dct"):
            assert presets.by_name(name).cores.n_cores == 3

    def test_mobile_preset_is_low_power(self):
        ufs = presets.ufs_mobile()
        nvme = presets.intel750()
        ufs_static = ufs.cores.n_cores * ufs.cores.leakage_per_core
        nvme_static = nvme.cores.n_cores * nvme.cores.leakage_per_core
        assert ufs_static < nvme_static
        assert ufs.cores.frequency < nvme.cores.frequency


class TestCapacityScaling:
    def test_presets_are_laptop_sized(self):
        """Scaled-down capacity must stay simulation-friendly."""
        for name in ("intel750", "850pro", "zssd", "983dct"):
            config = presets.by_name(name)
            assert config.logical_capacity < 8 * (1 << 30)
            assert config.logical_pages < 4_000_000

    def test_overprovision_survives_rounding(self):
        for name in ("intel750", "850pro", "zssd", "983dct"):
            config = presets.by_name(name)
            physical = config.geometry.physical_capacity
            logical = config.logical_capacity
            actual_op = 1.0 - logical / physical
            assert actual_op == pytest.approx(config.ftl.overprovision,
                                              abs=0.02)

    def test_superpage_spans_all_channels_by_default(self):
        config = presets.intel750()
        assert config.superpage_pages == (config.geometry.channels
                                          * config.geometry.planes_per_die)


class TestTimingSanity:
    def test_erase_much_slower_than_program(self):
        for name in ("intel750", "850pro", "983dct"):
            timing = presets.by_name(name).timing
            assert timing.t_erase > 1.5 * timing.t_prog_avg

    def test_ispp_slow_pages_slower(self):
        timing = presets.intel750().timing
        assert timing.t_prog(1) > timing.t_prog(0)
        assert timing.t_read(1) > timing.t_read(0)

    def test_slc_class_flash_has_uniform_pages(self):
        timing = presets.zssd().timing
        assert timing.t_prog(0) == timing.t_prog(1)

    def test_channel_bandwidth_in_onfi_range(self):
        for name in ("intel750", "850pro", "zssd", "983dct"):
            bw = presets.by_name(name).timing.channel_bandwidth
            assert 200 * MB < bw < 2000 * MB

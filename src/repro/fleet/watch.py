"""Live sweep watching: journal-derived job states, ETA and partials.

``sweep_status`` (:mod:`repro.fleet.runner`) can only see the store, so
it answers "done or missing".  This module folds in the run journal
(:mod:`repro.obs.journal`) that workers stream beside the store, which
splits "missing" three ways: **running** (a ``job_started`` with live
heartbeats and no terminal event), **failed** (a ``job_failed``) and
truly **pending**.  On top of that it estimates an ETA from the mean
wall duration of completed jobs, renders the one-screen status block
behind ``python -m repro.fleet watch`` / ``status --follow``, and
writes *streaming partial reports*: the ordinary
:func:`repro.fleet.report.merge_results` document over whatever the
store holds right now.  Because the final ``report`` runs the exact
same merge in the exact same sorted-hash order, a partial report
regenerated once the sweep completes is byte-identical to the final
one (pinned by test and by the fleet-smoke CI job).

Everything here is display-plane: wall clocks come only from the
journal's blessed accessor (:func:`repro.obs.journal.wall_now`) and
nothing feeds back into stored results.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.fleet.report import merge_results, write_fleet_report
from repro.fleet.spec import SweepSpec
from repro.fleet.store import ResultStore
from repro.obs.journal import RunJournal, journal_path_for, wall_now


def journal_status(spec: SweepSpec, store: ResultStore,
                   now_s: Optional[float] = None) -> Dict:
    """Per-job sweep state, merging the store with the run journal.

    The store is authoritative for **done** (a stored result trumps any
    journal state — resumed sweeps rewrite history).  For the rest, the
    journal's last word per job decides: a terminal ``job_failed`` means
    **failed**, an open ``job_started`` means **running**, no mention
    means **pending**.

    The returned document is the stable ``fleet.watch/1`` schema that
    ``watch --once --json`` emits (keys sorted; pinned by
    ``tests/test_fleet_watch.py``):

    * ``schema`` — the literal ``"fleet.watch/1"``;
    * ``spec`` / ``planned`` / ``done`` — sweep name, job count, stored
      count;
    * ``journal`` — path of the NDJSON journal that was folded in;
    * ``running`` — one entry per in-flight job: ``job`` (hash),
      ``pid``, ``sim_ns`` / ``events`` from the freshest heartbeat, and
      ``beat_age_s`` (wall seconds since that heartbeat);
    * ``failed`` — one entry per failed job: ``job``, ``error``
      (exception class), ``message``, ``flightrec`` post-mortem names;
    * ``pending`` — hashes the journal has never mentioned;
    * ``missing`` — pending + failed + running (everything not stored);
    * ``eta_s`` — always present: wall-seconds estimate from completed
      jobs' mean duration, or ``None`` until at least one job has
      completed (or nothing remains).
    """
    now_s = wall_now() if now_s is None else now_s
    planned = sorted(spec.expand(), key=lambda job: job.config_hash)
    hashes = [job.config_hash for job in planned]
    hash_set = set(hashes)
    journal = RunJournal(journal_path_for(store.root))

    last: Dict[str, Dict] = {}          # job hash -> last journal event
    beats: Dict[str, Dict] = {}         # job hash -> last progress event
    durations: List[float] = []
    for event in journal.events():
        job = event.get("job")
        if job not in hash_set:
            continue
        kind = event["event"]
        if kind in ("job_started", "job_completed", "job_failed"):
            last[job] = event
            if kind == "job_completed" \
                    and isinstance(event.get("wall_duration_s"), (int, float)):
                durations.append(float(event["wall_duration_s"]))
        elif kind in ("heartbeat", "epoch_sampled"):
            beats[job] = event

    done: List[str] = []
    failed: List[Dict] = []
    running: List[Dict] = []
    pending: List[str] = []
    for job_hash in hashes:
        if store.has(job_hash):
            done.append(job_hash)
            continue
        word = last.get(job_hash)
        if word is None:
            pending.append(job_hash)
        elif word["event"] == "job_failed":
            failed.append({"job": job_hash,
                           "error": word.get("error", "?"),
                           "message": word.get("message", ""),
                           "flightrec": word.get("flightrec", [])})
        else:
            beat = beats.get(job_hash, word)
            running.append({
                "job": job_hash,
                "pid": word.get("pid"),
                "sim_ns": beat.get("sim_ns", 0),
                "events": beat.get("events", 0),
                "beat_age_s": round(max(0.0, now_s
                                        - float(beat.get("wall_ts", now_s))),
                                    3),
            })

    doc: Dict = {"schema": "fleet.watch/1",
                 "spec": spec.name, "planned": len(planned),
                 "journal": str(journal.path),
                 "done": len(done), "running": running, "failed": failed,
                 "pending": pending, "missing": pending
                 + [entry["job"] for entry in failed]
                 + [entry["job"] for entry in running],
                 "eta_s": None}
    remaining = len(pending) + len(running)
    if durations and remaining:
        mean = sum(durations) / len(durations)
        doc["eta_s"] = round(mean * remaining / max(1, len(running)), 1)
    return doc


def render_status(doc: Dict) -> str:
    """Render a journal-status document as the one-screen watch block."""
    out = [f"{doc['spec']}: {doc['done']}/{doc['planned']} done, "
           f"{len(doc['running'])} running, {len(doc['failed'])} failed, "
           f"{len(doc['pending'])} pending"
           + (f", eta ~{doc['eta_s']:.0f}s"
              if doc.get("eta_s") is not None else "")]
    for entry in doc["running"]:
        out.append(f"  RUN  {entry['job'][:12]}  pid={entry['pid']}  "
                   f"sim={entry['sim_ns']}ns  events={entry['events']}  "
                   f"beat {entry['beat_age_s']:.1f}s ago")
    for entry in doc["failed"]:
        dumps = ", ".join(entry["flightrec"]) or "-"
        out.append(f"  FAIL {entry['job'][:12]}  {entry['error']}: "
                   f"{entry['message']}  [post-mortem: {dumps}]")
    return "\n".join(out)


def write_partial_report(spec: SweepSpec, store: ResultStore,
                         path) -> Dict:
    """Write a streaming partial report over the store's current state.

    Runs the very same :func:`~repro.fleet.report.merge_results` +
    renderer as the final ``fleet report`` command, so the artifact
    converges byte-identically to the final report as results land.
    Returns the merged document.
    """
    doc = merge_results(spec, store)
    write_fleet_report(path, doc)
    return doc


def watch(spec: SweepSpec, store: ResultStore,
          emit: Callable[[str], None],
          interval_s: float = 2.0, once: bool = False,
          partial_out=None, as_json: bool = False,
          sleep: Optional[Callable[[float], None]] = None,
          max_iterations: Optional[int] = None) -> Dict:
    """Follow a sweep until it settles; returns the last status document.

    Each tick re-reads the journal and store, emits the rendered status
    block (or the JSON document with ``as_json``), and — when
    ``partial_out`` is set — rewrites the streaming partial report.
    Stops when every planned job is done or failed (or immediately
    after one tick with ``once``).  ``sleep``/``max_iterations`` exist
    for tests; the CLI passes real ``time.sleep``.
    """
    import time as _time
    sleep = _time.sleep if sleep is None else sleep
    iterations = 0
    while True:
        doc = journal_status(spec, store)
        emit(json.dumps(doc, sort_keys=True) if as_json
             else render_status(doc))
        if partial_out is not None:
            write_partial_report(spec, store, partial_out)
        iterations += 1
        settled = doc["done"] + len(doc["failed"]) >= doc["planned"]
        if once or settled \
                or (max_iterations is not None
                    and iterations >= max_iterations):
            return doc
        sleep(interval_s)

"""Tests for workload generators, baseline simulators and analysis."""

import pytest

from repro.analysis.featurematrix import (
    SIMULATOR_FEATURES,
    amber_feature_count,
    feature_headers,
    feature_table,
)
from repro.analysis.tables import format_series, format_table
from repro.baselines.models import (
    FlashSimModel,
    MQSimModel,
    SSDExtensionModel,
    SSDSimModel,
)
from repro.baselines.reference import (
    REAL_DEVICES,
    accuracy,
    error_rate,
    reference_at,
    reference_curve,
)
from repro.baselines.replay import ClosedLoopReplayer
from repro.core import presets
from repro.workloads.enterprise import ENTERPRISE_WORKLOADS, EnterpriseGenerator
from repro.workloads.synthetic import blocksize_sweep, depth_sweep, standard_patterns


class TestEnterpriseGenerators:
    @pytest.mark.parametrize("name", list(ENTERPRISE_WORKLOADS))
    def test_statistics_match_table3(self, name):
        spec = ENTERPRISE_WORKLOADS[name]
        generator = EnterpriseGenerator(spec, region_sectors=1 << 22, seed=2)
        stats = generator.sample_statistics(4000)
        assert stats["read_ratio"] == pytest.approx(spec.read_ratio,
                                                    abs=0.05)
        assert stats["avg_read_kb"] == pytest.approx(spec.avg_read_kb,
                                                     rel=0.25)
        assert stats["avg_write_kb"] == pytest.approx(spec.avg_write_kb,
                                                      rel=0.25)
        assert stats["random_read"] == pytest.approx(spec.random_read,
                                                     abs=0.08)
        assert stats["random_write"] == pytest.approx(spec.random_write,
                                                      abs=0.08)

    def test_deterministic_given_seed(self):
        spec = ENTERPRISE_WORKLOADS["CFS"]
        a = EnterpriseGenerator(spec, 1 << 20, seed=9)
        b = EnterpriseGenerator(spec, 1 << 20, seed=9)
        for _ in range(50):
            ra, rb = a.next_request(), b.next_request()
            assert (ra.kind, ra.slba, ra.nsectors) == \
                (rb.kind, rb.slba, rb.nsectors)

    def test_requests_stay_in_region(self):
        spec = ENTERPRISE_WORKLOADS["DAP"]
        generator = EnterpriseGenerator(spec, region_sectors=65536, seed=3)
        for _ in range(300):
            request = generator.next_request()
            assert 0 <= request.slba
            assert request.slba + request.nsectors <= 65536

    def test_too_small_region_rejected(self):
        with pytest.raises(ValueError):
            EnterpriseGenerator(ENTERPRISE_WORKLOADS["24HR"], 100)


class TestSyntheticWorkloads:
    def test_standard_patterns_cover_grid(self):
        jobs = standard_patterns()
        assert set(jobs) == {"seqread", "randread", "seqwrite", "randwrite"}
        assert jobs["randwrite"].rw == "randwrite"

    def test_depth_sweep(self):
        jobs = depth_sweep("randread", [1, 4, 16])
        assert [j.iodepth for j in jobs] == [1, 4, 16]

    def test_blocksize_sweep(self):
        jobs = blocksize_sweep("seqwrite", [4096, 65536])
        assert [j.bs for j in jobs] == [4096, 65536]


class TestBaselineModels:
    def _replay(self, model_cls, pattern="randread", depth=8, n=150):
        config = presets.intel750()
        replayer = ClosedLoopReplayer(model_cls(config))
        return replayer.run(pattern, bs=4096, iodepth=depth, n_ios=n)

    def test_flashsim_bandwidth_flat_with_depth(self):
        shallow = self._replay(FlashSimModel, depth=1)
        deep = self._replay(FlashSimModel, depth=16)
        assert deep.bandwidth_mbps == pytest.approx(
            shallow.bandwidth_mbps, rel=0.2)
        assert deep.mean_latency_us > 4 * shallow.mean_latency_us

    def test_ssdsim_scales_linearly(self):
        shallow = self._replay(SSDSimModel, depth=1)
        deep = self._replay(SSDSimModel, depth=16)
        assert deep.bandwidth_mbps > 8 * shallow.bandwidth_mbps

    def test_ssdext_saturates_immediately(self):
        mid = self._replay(SSDExtensionModel, depth=8)
        deep = self._replay(SSDExtensionModel, depth=32)
        assert deep.bandwidth_mbps == pytest.approx(mid.bandwidth_mbps,
                                                    rel=0.15)

    def test_mqsim_write_cache_never_saturates(self):
        shallow = self._replay(MQSimModel, "randwrite", depth=1)
        deep = self._replay(MQSimModel, "randwrite", depth=16)
        assert deep.bandwidth_mbps > 3 * shallow.bandwidth_mbps

    def test_replayer_counts_events(self):
        result = self._replay(MQSimModel, n=50)
        assert result.events_processed > 0
        assert result.wall_seconds > 0


class TestReferenceCurves:
    def test_all_devices_have_all_patterns(self):
        for device in REAL_DEVICES:
            for pattern in ("seqread", "randread", "seqwrite", "randwrite"):
                curve = reference_curve(device, pattern)
                assert len(curve) == 7
                lat = reference_curve(device, pattern, "latency")
                assert all(v > 0 for v in lat.values())

    def test_interpolation_between_depths(self):
        at8 = reference_at("intel750", "seqread", 8)
        at16 = reference_at("intel750", "seqread", 16)
        at12 = reference_at("intel750", "seqread", 12)
        assert min(at8, at16) <= at12 <= max(at8, at16)

    def test_clamping_outside_range(self):
        assert reference_at("intel750", "seqread", 64) == \
            reference_at("intel750", "seqread", 32)

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            reference_curve("optane", "seqread")

    def test_error_and_accuracy(self):
        assert error_rate(100, 80) == pytest.approx(0.2)
        assert accuracy(100, 80) == pytest.approx(0.8)
        assert accuracy(100, 500) == 0.0
        with pytest.raises(ValueError):
            error_rate(0, 10)


class TestAnalysis:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.123]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_format_series_merges_x(self):
        text = format_series({"s1": {1: 10}, "s2": {2: 20}}, "x")
        assert "s1" in text and "s2" in text

    def test_feature_matrix_shape(self):
        rows = feature_table()
        headers = feature_headers()
        assert all(len(row) == len(headers) for row in rows)
        assert amber_feature_count() == len(rows)

    def test_amber_strictly_supersets_baselines(self):
        amber = SIMULATOR_FEATURES["Amber"]
        for name, features in SIMULATOR_FEATURES.items():
            if name != "Amber":
                assert features < amber, name

"""Property battery for the HIL submission-queue arbiters.

The arbiters are driven directly — no simulator — through a saturation
harness: every queue is always backlogged, arrivals are interleaved
round-robin from a common ``cmd_id`` base, and each grant is replenished
immediately.  Under that regime the fairness contracts are sharp:

* **WRR convergence** — grant shares converge to the priority-class
  weight ratios;
* **WFQ convergence** — grant shares converge to the per-queue
  ``qos_weights``, and with *mixed request sizes* the shares hold in
  sectors served (weighted max-min fairness), not just command counts;
* **no starvation** — every backlogged queue is granted service within
  a bounded window, for every discipline;
* **grant conservation** — every grant picks a backlogged queue and the
  per-queue counters sum exactly to the number of selections made.
"""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.iorequest import IOKind
from repro.ssd.config import HILConfig
from repro.ssd.firmware.arbiter import (
    ARBITERS,
    FifoArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    WfqArbiter,
    make_arbiter,
)
from repro.ssd.firmware.requests import DeviceCommand


def _cmd(cmd_id, qid, priority=1, nsectors=8):
    """A DeviceCommand with a harness-controlled (not global) cmd_id."""
    return DeviceCommand(IOKind.READ, 0, nsectors, queue_id=qid,
                         priority=priority, cmd_id=cmd_id)


class _Saturator:
    """Keep every queue backlogged; replenish with interleaved cmd_ids.

    Arrival order is round-robin across queues starting from ``cmd_id``
    1, so effective ages start aligned — the steady-state regime the
    convergence properties are stated for.
    """

    def __init__(self, qids, priority_of=None, nsectors_of=None,
                 depth=4):
        self.qids = list(qids)
        self.priority_of = priority_of or (lambda q: 1)
        self.nsectors_of = nsectors_of or (lambda q: 8)
        self.queues = {q: deque() for q in self.qids}
        self._next_id = 1
        self.served = {q: 0 for q in self.qids}
        self.sectors = {q: 0 for q in self.qids}
        for _ in range(depth):
            for q in self.qids:
                self._arrive(q)

    def _arrive(self, qid):
        self.queues[qid].append(_cmd(self._next_id, qid,
                                     self.priority_of(qid),
                                     self.nsectors_of(qid)))
        self._next_id += 1

    def drive(self, arbiter, grants):
        """Run ``grants`` selections, asserting basic sanity throughout."""
        for _ in range(grants):
            backlogged = [q for q in self.qids if self.queues[q]]
            chosen = arbiter.grant(self.queues, backlogged)
            assert chosen in backlogged, \
                f"{arbiter.name} granted a queue with no commands"
            head = self.queues[chosen].popleft()
            self.served[chosen] += 1
            self.sectors[chosen] += head.nsectors
            self._arrive(chosen)
        return self.served


# -- registry / construction --------------------------------------------------


def test_make_arbiter_dispatches_every_policy():
    expected = {"fifo": FifoArbiter, "rr": RoundRobinArbiter,
                "wrr": WeightedRoundRobinArbiter, "wfq": WfqArbiter}
    assert set(ARBITERS) == set(expected)
    for name, cls in expected.items():
        arbiter = make_arbiter(HILConfig(arbitration=name))
        assert type(arbiter) is cls
        assert arbiter.name == name


def test_make_arbiter_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown arbitration"):
        make_arbiter(HILConfig(arbitration="warp"))


# -- exact decision sequences (the bit-identity surface) ----------------------


def test_fifo_serves_global_arrival_order():
    sat = _Saturator([1, 2, 3])
    arbiter = make_arbiter(HILConfig(arbitration="fifo"))
    order = []
    for _ in range(6):
        backlogged = [q for q in sat.qids if sat.queues[q]]
        qid = arbiter.grant(sat.queues, backlogged)
        order.append(sat.queues[qid].popleft().cmd_id)
    assert order == [1, 2, 3, 4, 5, 6]


def test_rr_cycles_evenly_over_backlogged_queues():
    sat = _Saturator([1, 2, 3])
    arbiter = make_arbiter(HILConfig(arbitration="rr"))
    served = sat.drive(arbiter, 300)
    assert served == {1: 100, 2: 100, 3: 100}


def test_wrr_exact_shares_for_default_weights():
    # three queues, one per priority class, default weights (4, 2, 1)
    sat = _Saturator([1, 2, 3], priority_of=lambda q: q - 1, depth=800)
    arbiter = make_arbiter(HILConfig(arbitration="wrr"))
    served = sat.drive(arbiter, 700)
    assert served == {1: 400, 2: 200, 3: 100}


def test_wfq_exact_shares_for_eight_to_one():
    hil = HILConfig(arbitration="wfq", qos_weights=(8, 1))
    sat = _Saturator([1, 2], depth=1000)
    served = sat.drive(make_arbiter(hil), 900)
    assert served == {1: 800, 2: 100}


# -- convergence properties ---------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(weights=st.tuples(st.integers(1, 8), st.integers(1, 8),
                         st.integers(1, 8)))
def test_wrr_shares_converge_to_class_weights(weights):
    hil = HILConfig(arbitration="wrr", wrr_weights=weights)
    total = 200 * sum(weights)
    sat = _Saturator([1, 2, 3], priority_of=lambda q: q - 1,
                     depth=total + 1)
    served = sat.drive(make_arbiter(hil), total)
    weight_sum = sum(weights)
    for qid in (1, 2, 3):
        fair = total * weights[qid - 1] / weight_sum
        assert abs(served[qid] - fair) <= 0.05 * total + weight_sum, \
            f"wrr share for class {qid - 1}: {served[qid]} vs fair {fair}"


@settings(max_examples=25, deadline=None)
@given(weights=st.tuples(st.integers(1, 8), st.integers(1, 8)))
def test_wfq_shares_converge_to_queue_weights(weights):
    hil = HILConfig(arbitration="wfq", qos_weights=weights)
    total = 150 * sum(weights)
    sat = _Saturator([1, 2], depth=total + 1)
    served = sat.drive(make_arbiter(hil), total)
    weight_sum = sum(weights)
    for qid in (1, 2):
        fair = total * weights[qid - 1] / weight_sum
        assert abs(served[qid] - fair) <= 0.05 * total + weight_sum


@settings(max_examples=25, deadline=None)
@given(weights=st.tuples(st.integers(1, 6), st.integers(1, 6)),
       sizes=st.tuples(st.sampled_from([8, 16, 32, 128]),
                       st.sampled_from([8, 16, 32, 128])))
def test_wfq_is_fair_in_sectors_under_mixed_sizes(weights, sizes):
    """WFQ equalizes *sectors served / weight*, not command counts."""
    hil = HILConfig(arbitration="wfq", qos_weights=weights)
    sat = _Saturator([1, 2], nsectors_of=lambda q: sizes[q - 1], depth=2000)
    sat.drive(make_arbiter(hil), 1500)
    per_weight = [sat.sectors[q] / weights[q - 1] for q in (1, 2)]
    # equal within a few head-of-line commands' worth of sectors
    slack = 4 * max(sizes) / min(weights)
    assert abs(per_weight[0] - per_weight[1]) <= slack, \
        f"sector shares {sat.sectors} not weight-fair {weights}"


# -- starvation freedom -------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(policy=st.sampled_from(sorted(ARBITERS)),
       n_queues=st.integers(2, 5))
def test_no_backlogged_queue_starves(policy, n_queues):
    hil = HILConfig(arbitration=policy, wrr_weights=(4, 2, 1),
                    qos_weights=tuple(range(n_queues, 0, -1)))
    qids = list(range(1, n_queues + 1))
    total = 400 * n_queues
    sat = _Saturator(qids, priority_of=lambda q: (q - 1) % 3,
                     depth=total + 1)
    served = sat.drive(make_arbiter(hil), total)
    assert min(served.values()) > 0, \
        f"{policy} starved a queue over {total} grants: {served}"


# -- grant conservation -------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(policy=st.sampled_from(sorted(ARBITERS)),
       grants=st.integers(1, 500))
def test_grant_counters_conserve(policy, grants):
    hil = HILConfig(arbitration=policy, qos_weights=(3, 1, 2))
    sat = _Saturator([1, 2, 3], depth=grants + 1)
    arbiter = make_arbiter(hil)
    served = sat.drive(arbiter, grants)
    assert arbiter.total_grants() == grants
    assert sum(arbiter.grants.values()) == grants
    assert arbiter.grants == {q: n for q, n in served.items() if n}


def test_wfq_idle_queue_banks_no_credit():
    """A queue that sleeps must not starve busy queues on its return."""
    hil = HILConfig(arbitration="wfq", qos_weights=(1, 1))
    arbiter = make_arbiter(hil)
    sat = _Saturator([1, 2], depth=400)
    # queue 2 "sleeps": serve only queue 1 for a long stretch
    for _ in range(300):
        arbiter.grant({1: sat.queues[1]}, [1])
        sat.queues[1].popleft()
        sat._arrive(1)
    # queue 2 returns; equal weights must split service evenly from here
    before = dict(arbiter.grants)
    sat.drive(arbiter, 200)
    delta1 = arbiter.grants[1] - before[1]
    delta2 = arbiter.grants[2] - before.get(2, 0)
    assert abs(delta1 - delta2) <= 2, (delta1, delta2)

"""Fleet CLI: plan, run, inspect and report declarative sweeps.

Usage::

    python -m repro.fleet plan   --builtin smoke4
    python -m repro.fleet run    --spec sweep.json --store out/ --jobs 4
    python -m repro.fleet run    --builtin smoke4 --store out/ --resume
    python -m repro.fleet status --builtin smoke4 --store out/ [--follow]
    python -m repro.fleet watch  --builtin smoke4 --store out/ --out partial.md
    python -m repro.fleet report --builtin smoke4 --store out/ --out fleet.md
    python -m repro.fleet explain HASH_A HASH_B --store out/ --out why.md
    python -m repro.fleet --list

``run --resume`` skips configurations whose hash already has a stored
result; ``run --dry-run`` prints the plan (including what resume would
skip) without simulating.  Runs journal lifecycle events beside the
store by default (``--no-journal`` opts out, ``--profile`` adds
per-layer wall-time attribution to the journal); ``status`` folds the
journal in to tell running and failed jobs apart from never-started
ones, and ``watch`` / ``status --follow`` tail the journal live,
optionally rewriting a streaming partial report that converges
byte-identically to the final ``report``.  Reports render Markdown or
HTML by file suffix; ``--json`` on ``report`` writes the canonical
merged document instead.  ``run --causal`` embeds each job's
per-request causal latency decomposition (:mod:`repro.obs.causal`) in
its stored result, and ``explain HASH_A HASH_B`` then renders a
deterministic report ranking the resource components that moved the
p50/p99 between the two configurations.  See ``docs/FLEET.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.fleet.report import merge_results, merged_json, write_fleet_report
from repro.obs.diff import explain, write_explain_report
from repro.fleet.runner import run_sweep, sweep_status
from repro.fleet.scenarios import SCENARIOS, builtin_specs, spec_names
from repro.fleet.spec import SweepSpec
from repro.fleet.store import ResultStore
from repro.fleet.watch import journal_status, render_status, watch


def _load_spec(args) -> SweepSpec:
    """Resolve --spec FILE / --builtin NAME into a SweepSpec."""
    if args.spec:
        return SweepSpec.load(args.spec)
    if args.builtin:
        specs = builtin_specs()
        if args.builtin not in specs:
            raise SystemExit(f"unknown built-in sweep {args.builtin!r}; "
                             f"choose from {', '.join(spec_names())}")
        return specs[args.builtin]
    raise SystemExit("one of --spec FILE or --builtin NAME is required")


def _add_spec_args(sub) -> None:
    """Attach the shared ``--spec`` / ``--builtin`` options to a subcommand."""
    sub.add_argument("--spec", metavar="FILE",
                     help="JSON sweep-spec file (docs/FLEET.md schema)")
    sub.add_argument("--builtin", metavar="NAME",
                     help=f"built-in sweep: {', '.join(spec_names())}")


def _print_plan(spec: SweepSpec, store: ResultStore | None) -> None:
    """One line per planned job: hash, cached marker, parameters."""
    jobs = sorted(spec.expand(), key=lambda job: job.config_hash)
    print(f"sweep {spec.name!r}: scenario {spec.scenario!r}, "
          f"{len(jobs)} configuration(s)")
    for job in jobs:
        cached = " (cached)" if store is not None and \
            store.has(job.config_hash) else ""
        varying = {key: value for key, value in sorted(job.params.items())
                   if key in spec.axes}
        print(f"  {job.config_hash[:16]}{cached}  {varying}")


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Plan, run and report declarative simulation sweeps.")
    parser.add_argument("--list", action="store_true",
                        help="list built-in sweeps and scenarios")
    sub = parser.add_subparsers(dest="command")

    plan = sub.add_parser("plan", help="expand a spec into its job list")
    _add_spec_args(plan)
    plan.add_argument("--store", metavar="DIR",
                      help="mark jobs already cached in this store")

    run = sub.add_parser("run", help="execute a sweep into a result store")
    _add_spec_args(run)
    run.add_argument("--store", metavar="DIR", required=True,
                     help="content-addressed result store directory")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (default 1: inline)")
    run.add_argument("--resume", action="store_true",
                     help="skip configurations that already have results")
    run.add_argument("--dry-run", action="store_true",
                     help="print the plan without simulating")
    run.add_argument("--no-journal", action="store_true",
                     help="skip the NDJSON run journal beside the store")
    run.add_argument("--heartbeat", type=float, default=2.0, metavar="SEC",
                     help="min wall seconds between journal heartbeats "
                          "(default 2.0)")
    run.add_argument("--profile", action="store_true",
                     help="wall-clock self-profile each job; per-layer "
                          "attribution lands in the journal")
    run.add_argument("--causal", action="store_true",
                     help="capture per-request causal latency forensics; "
                          "the summary lands in each stored result for "
                          "'fleet explain'")

    status = sub.add_parser("status",
                            help="done/running/failed/pending for a sweep")
    _add_spec_args(status)
    status.add_argument("--store", metavar="DIR", required=True)
    status.add_argument("--follow", action="store_true",
                        help="keep refreshing until the sweep settles")
    status.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                        help="refresh period with --follow (default 2.0)")

    watch_cmd = sub.add_parser(
        "watch", help="tail a sweep's journal with streaming partial reports")
    _add_spec_args(watch_cmd)
    watch_cmd.add_argument("--store", metavar="DIR", required=True)
    watch_cmd.add_argument("--interval", type=float, default=2.0,
                           metavar="SEC",
                           help="refresh period (default 2.0)")
    watch_cmd.add_argument("--once", action="store_true",
                           help="print one snapshot and exit")
    watch_cmd.add_argument("--out", metavar="OUT.md|OUT.html",
                           help="rewrite a streaming partial report each "
                                "tick (converges to the final report)")
    watch_cmd.add_argument("--json", action="store_true",
                           help="emit the status document as JSON lines")

    report = sub.add_parser("report", help="merge a sweep into one artifact")
    _add_spec_args(report)
    report.add_argument("--store", metavar="DIR", required=True)
    report.add_argument("--out", metavar="OUT.md|OUT.html", required=True,
                        help="output path; suffix selects Markdown or HTML")
    report.add_argument("--json", action="store_true",
                        help="write the canonical merged JSON instead")

    explain_cmd = sub.add_parser(
        "explain",
        help="why do two stored runs differ? (needs 'run --causal')")
    explain_cmd.add_argument("hash_a", metavar="HASH_A",
                             help="baseline config hash (unique prefix ok)")
    explain_cmd.add_argument("hash_b", metavar="HASH_B",
                             help="comparison config hash (unique prefix ok)")
    explain_cmd.add_argument("--store", metavar="DIR", required=True,
                             help="result store holding both runs")
    explain_cmd.add_argument("--out", metavar="OUT.md|OUT.html|OUT.json",
                             required=True,
                             help="explain report path; suffix selects the "
                                  "format")

    args = parser.parse_args(argv)

    if args.list or not args.command:
        print("built-in sweeps:")
        for name, spec in sorted(builtin_specs().items()):
            print(f"  {name:<24} scenario={spec.scenario:<12} "
                  f"{len(spec.expand())} job(s)")
        print("scenarios:")
        for name in sorted(SCENARIOS):
            print(f"  {name}")
        return 0

    if args.command == "explain":
        store = ResultStore(args.store)
        docs = []
        for prefix in (args.hash_a, args.hash_b):
            matches = [h for h in store.hashes() if h.startswith(prefix)]
            if len(matches) != 1:
                raise SystemExit(
                    f"hash prefix {prefix!r} matches {len(matches)} stored "
                    f"results in {store.root} (need exactly 1)")
            docs.append(store.get(matches[0]))
        try:
            doc = explain(docs[0], docs[1])
        except ValueError as error:
            raise SystemExit(str(error))
        write_explain_report(args.out, doc)
        print(f"[explain: {doc['a']['config_hash'][:12]} vs "
              f"{doc['b']['config_hash'][:12]} -> {args.out}]")
        return 0

    spec = _load_spec(args)

    if args.command == "plan":
        store = ResultStore(args.store) if args.store else None
        _print_plan(spec, store)
        return 0

    store = ResultStore(args.store)

    if args.command == "run":
        if args.dry_run:
            _print_plan(spec, store)
            return 0
        summary = run_sweep(spec, store, jobs=args.jobs, resume=args.resume,
                            progress=lambda msg: print(msg, file=sys.stderr),
                            journal=not args.no_journal,
                            heartbeat_s=args.heartbeat,
                            profile=args.profile, causal=args.causal)
        print(f"{spec.name}: executed {len(summary.executed)}, "
              f"cached {len(summary.skipped)}, "
              f"planned {summary.planned} -> {store.root}")
        return 0

    if args.command == "status":
        if args.follow:
            doc = watch(spec, store, emit=print, interval_s=args.interval)
            return 0 if not doc["missing"] else 1
        state = sweep_status(spec, store)
        live = journal_status(spec, store)
        print(f"{state['spec']}: {state['done']}/{state['planned']} done, "
              f"{len(live['running'])} running, "
              f"{len(live['failed'])} failed, "
              f"{len(live['pending'])} pending")
        for entry in live["running"]:
            print(f"  running {entry['job'][:16]}  pid={entry['pid']}  "
                  f"sim={entry['sim_ns']}ns")
        for entry in live["failed"]:
            print(f"  failed  {entry['job'][:16]}  {entry['error']}: "
                  f"{entry['message']}")
        for job_hash in live["pending"]:
            print(f"  missing {job_hash[:16]}")
        return 0 if not state["missing"] else 1

    if args.command == "watch":
        doc = watch(spec, store, emit=print, interval_s=args.interval,
                    once=args.once, partial_out=args.out,
                    as_json=args.json)
        if args.out:
            print(f"[partial report: {doc['done']}/{doc['planned']} configs "
                  f"-> {args.out}]")
        return 0 if not doc["missing"] else 1

    # report
    doc = merge_results(spec, store)
    if args.json:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(merged_json(doc))
    else:
        write_fleet_report(args.out, doc)
    print(f"[fleet report: {doc['merged']}/{doc['planned']} configs "
          f"-> {args.out}]")
    return 0 if not doc["missing"] else 1


if __name__ == "__main__":
    sys.exit(main())

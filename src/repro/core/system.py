"""FullSystem: host + OS + interface + SSD wired together.

The facade a user of this library builds experiments on.  It owns the
simulator, assembles a platform (Table II), a kernel profile, a storage
interface (SATA/UFS/NVMe/OCSSD) and the SSD model, and exposes the
FIO-like workload engine plus direct I/O entry points.
"""

from __future__ import annotations

from typing import Optional

from repro.common.instructions import InstructionMix
from repro.common.iorequest import IOKind, IORequest
from repro.core.fio import FioEngine, FioJob
from repro.core.metrics import FioResult
from repro.host.bus import SystemBus
from repro.host.cpu import CpuModel, HostCpu
from repro.host.dma import DmaEngine
from repro.host.memory import HostMemory
from repro.host.pcie import PcieLink, SataLink, UfsLink
from repro.host.platform import HostPlatform, mobile_platform, pc_platform
from repro.hostos.blocklayer import BlockLayer
from repro.hostos.kernel import KernelProfile, kernel_by_version
from repro.hostos.pagecache import PageCache
from repro.obs import MetricsRegistry
from repro.sim import Simulator
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD

INTERFACES = ("nvme", "sata", "ufs", "ocssd")


class FullSystem:
    def __init__(self, device: SSDConfig, interface: str = "nvme",
                 platform: Optional[HostPlatform] = None,
                 kernel: str = "4.14",
                 cpu_model: Optional[CpuModel] = None,
                 data_emulation: bool = False,
                 page_cache_bytes: int = 64 * 1024 * 1024,
                 nvme_queue_depth: int = 1024,
                 nvme_transfer_mode: str = "prp",
                 nvme_queue_priorities: Optional[dict] = None) -> None:
        if interface not in INTERFACES:
            raise ValueError(f"unknown interface {interface!r}; "
                             f"choose from {INTERFACES}")
        self.interface = interface
        if platform is None:
            platform = mobile_platform() if interface == "ufs" else pc_platform()
        self.platform = platform
        self.kernel_profile: KernelProfile = kernel_by_version(kernel)
        self.data_emulation = data_emulation

        # h-type storage schedules its device queue FIFO (Section III-B)
        if interface in ("sata", "ufs") and device.hil.arbitration != "fifo":
            from repro.ssd.config import HILConfig
            device = device.with_overrides(hil=HILConfig(arbitration="fifo"))

        self.sim = Simulator()
        self.cpu = HostCpu(self.sim, platform.n_cores, platform.frequency,
                           model=cpu_model or platform.cpu_model,
                           cpi_scale=platform.cpi_scale)
        self.memory = HostMemory(self.sim, platform.memory_size,
                                 platform.memory_bandwidth,
                                 platform.memory_latency_ns)
        self.bus = SystemBus(self.sim, platform.sysbus_bandwidth)
        self.ssd = SSD(self.sim, device, data_emulation=data_emulation)
        self._nvme_transfer_mode = nvme_transfer_mode
        self._nvme_queue_priorities = nvme_queue_priorities or {}
        self._wire_interface(nvme_queue_depth)
        self.blocklayer = BlockLayer(self.sim, self.cpu, self.kernel_profile,
                                     self.adapter)
        self.pagecache = PageCache(self.sim, self.memory, page_cache_bytes,
                                   data_emulation=data_emulation)
        self._syscall_mix = InstructionMix.typical(
            self.kernel_profile.syscall_submit_instr)
        self._writeback_running = False
        self.metrics = MetricsRegistry()
        self._register_metrics()

    # -- wiring ------------------------------------------------------------------

    def _wire_interface(self, nvme_queue_depth: int) -> None:
        sim = self.sim
        if self.interface == "nvme":
            from repro.interfaces.nvme.controller import NvmeController
            from repro.interfaces.nvme.host import NvmeDriver
            from repro.interfaces.nvme.structures import TransferMode
            self.link = PcieLink(sim, gen=3, lanes=4)
            self.dma = DmaEngine(sim, self.cpu, self.memory, self.bus, self.link)
            self.adapter = NvmeDriver(
                sim, self.memory, self.link,
                n_io_queues=self.platform.n_cores,
                queue_depth=nvme_queue_depth,
                transfer_mode=TransferMode(self._nvme_transfer_mode),
                total_sectors=self.ssd.config.logical_sectors)
            self.controller = NvmeController(
                sim, self.ssd, self.dma, self.adapter,
                queue_priorities=self._nvme_queue_priorities)
        elif self.interface == "sata":
            from repro.interfaces.sata.ahci import AhciHba
            from repro.interfaces.sata.controller import SataDeviceController
            self.link = SataLink(sim)
            self.dma = DmaEngine(sim, self.cpu, self.memory, self.bus, self.link)
            self.adapter = AhciHba(sim, self.memory, self.link)
            self.controller = SataDeviceController(sim, self.ssd, self.dma,
                                                   self.adapter)
        elif self.interface == "ufs":
            from repro.interfaces.ufs.utp import UtpEngine
            from repro.interfaces.ufs.controller import UfsDeviceController
            self.link = UfsLink(sim)
            self.dma = DmaEngine(sim, self.cpu, self.memory, self.bus, self.link)
            self.adapter = UtpEngine(sim, self.memory, self.link)
            self.controller = UfsDeviceController(sim, self.ssd, self.dma,
                                                  self.adapter)
        else:  # ocssd
            from repro.interfaces.ocssd.controller import OcssdController
            from repro.interfaces.ocssd.pblk import PblkDriver
            self.link = PcieLink(sim, gen=3, lanes=4)
            self.dma = DmaEngine(sim, self.cpu, self.memory, self.bus, self.link)
            self.controller = OcssdController(sim, self.ssd, self.dma)
            self.adapter = PblkDriver(sim, self.cpu, self.memory, self.link,
                                      self.controller,
                                      data_emulation=self.data_emulation)

    def _register_metrics(self) -> None:
        """Publish every layer's instruments into one named-metric tree.

        Values are read lazily at snapshot time, so registration costs
        nothing during simulation (see ``docs/OBSERVABILITY.md``).
        """
        reg = self.metrics
        self.cpu.register_metrics(reg)
        self.memory.register_metrics(reg)
        self.ssd.backend.register_metrics(reg)
        blk = reg.scoped("os.block")
        blk.register("submitted",
                     lambda: float(self.blocklayer.requests_submitted))
        blk.register("merged",
                     lambda: float(self.blocklayer.requests_merged))
        blk.register("dispatched",
                     lambda: float(self.blocklayer.requests_dispatched))
        blk.register("inflight", lambda: float(self.blocklayer.inflight))
        blk.register("queued", lambda: float(len(self.blocklayer.scheduler)))
        if self.interface == "nvme":
            nvme = reg.scoped("nvme")
            nvme.register("sq.depth", lambda: float(self.adapter.sq_depth()))
            nvme.register("outstanding",
                          lambda: float(self.adapter.outstanding()))
        dev = reg.scoped("ssd")
        dev.register("hil.fetched",
                     lambda: float(self.ssd.hil.commands_fetched))
        dev.register("hil.completed",
                     lambda: float(self.ssd.hil.commands_completed))
        dev.register("icl.hit_rate", self.ssd.icl.hit_rate)
        dev.register("icl.lines_flushed",
                     lambda: float(self.ssd.icl.lines_flushed))
        dev.register("icl.dirty_lines",
                     lambda: float(self.ssd.icl.dirty_line_count()))
        dev.register("ftl.gc_runs", lambda: float(self.ssd.ftl.gc_runs))
        dev.register("ftl.gc_active", lambda: float(self.ssd.ftl.gc_active))
        dev.register("ftl.gc_pages_migrated",
                     lambda: float(self.ssd.ftl.gc_pages_migrated))
        dev.register("ftl.write_amplification",
                     self.ssd.ftl.write_amplification)
        sim_scope = reg.scoped("sim")
        sim_scope.register("events_processed",
                           lambda: float(self.sim.events_processed))
        sim_scope.register("now_ns", lambda: float(self.sim.now))
        tracer = self.sim.tracer
        if getattr(tracer, "causal", False):
            # causal capture armed: fold the exact per-component latency
            # sums into the metric tree so telemetry epochs stream them
            causal_scope = reg.scoped("causal")
            causal_scope.register("requests",
                                  lambda: float(tracer.records))
            causal_scope.register("violations",
                                  lambda: float(tracer.violations))
            from repro.obs.causal import COMPONENTS

            def _component_gauge(component: str):
                """Bind one component's cumulative-ns gauge closure."""
                return lambda: float(tracer.component_total(component))
            for component in COMPONENTS:
                causal_scope.register(f"{component}.ns",
                                      _component_gauge(component))
        # telemetry (when armed) samples this registry every epoch
        probe = self.sim.telemetry
        if probe is not None:
            probe.bind_registry(reg, label=f"{probe.label}-{self.interface}")

    # -- properties --------------------------------------------------------------

    @property
    def device_sectors(self) -> int:
        if self.interface == "ocssd":
            return self.adapter.logical_sectors
        return self.ssd.config.logical_sectors

    def set_host_frequency(self, frequency: int) -> None:
        """Host CPU frequency knob for the Fig 14 sweep."""
        self.cpu.set_frequency(frequency)

    # -- data helpers -----------------------------------------------------------

    @staticmethod
    def pattern_data(slba: int, nsectors: int, seed: int = 0) -> bytes:
        """Deterministic verifiable payload for a sector range."""
        chunks = []
        for sector in range(slba, slba + nsectors):
            tag = ((sector * 2654435761 + seed * 40503) & 0xFFFFFFFFFFFFFFFF)
            chunks.append(tag.to_bytes(8, "little") * 64)
        return b"".join(chunks)

    # -- the syscall layer -------------------------------------------------------

    def submit_io(self, req: IORequest, stream_id: int = 0,
                  core: Optional[int] = None, direct: bool = True):
        """Process generator: submit an I/O at user level.

        Returns the completion event (fires with read payload or None).
        Buffered (non-direct) I/O consults the page cache first.
        """
        # end-to-end span: syscall entry to user-visible completion; it
        # closes from the completion event's callback, registered only
        # when tracing is on so disabled runs stay event-identical
        tracer = self.sim.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin("io.submit", req.req_id, op=req.kind.name,
                                slba=req.slba, nbytes=req.nbytes)
            if req.nsid:
                # tenant blame label: waits blocked behind this request
                # are attributed to its namespace, not its request id
                tracer.annotate_track(req.req_id, f"ns:{req.nsid}")
        yield from self.cpu.execute(self._syscall_mix, core=core, kernel=True)
        if not direct:
            served = yield from self._buffered_path(req, stream_id, core)
            if served is not None:
                if span is not None:
                    tracer.end(span)
                return served
        event = yield from self.blocklayer.submit(req, stream_id=stream_id,
                                                  core=core)
        if not direct and req.kind.is_read:
            event.add_callback(
                lambda ev: self.pagecache.install_read(req.slba, req.nsectors,
                                                       ev.value))
        if span is not None:
            event.add_callback(lambda _ev: tracer.end(span))
        return event

    def _buffered_path(self, req: IORequest, stream_id: int,
                       core: Optional[int]):
        """Try to serve from the page cache; returns an event or None."""
        cache = self.pagecache
        if req.kind.is_read and cache.lookup_read(req.slba, req.nsectors):
            yield from self.memory.access(req.nbytes)
            done = self.sim.event()
            req.t_complete = self.sim.now
            done.succeed(cache.read_data(req.slba, req.nsectors))
            return done
        if req.kind.is_write and cache.write(req.slba, req.nsectors, req.data):
            yield from self.memory.access(req.nbytes, write=True)
            done = self.sim.event()
            req.t_complete = self.sim.now
            done.succeed(None)
            self._kick_writeback(stream_id)
            return done
        return None

    def _kick_writeback(self, stream_id: int) -> None:
        if self._writeback_running:
            return
        if len(self.pagecache.dirty_pages()) < self.pagecache.capacity_pages // 4:
            return
        self._writeback_running = True
        self.sim.process(self._writeback(stream_id))

    def _writeback(self, stream_id: int):
        cache = self.pagecache
        try:
            while len(cache.dirty_pages()) > cache.capacity_pages // 8:
                batch = cache.dirty_pages()[:16]
                events = []
                for index in batch:
                    payload = cache.page_payload(index) if self.data_emulation \
                        else None
                    wb_req = IORequest(IOKind.WRITE, index * 8, 8, data=payload)
                    event = yield from self.blocklayer.submit(
                        wb_req, stream_id=stream_id)
                    events.append(event)
                    cache.clean(index)
                for event in events:
                    yield event
                for index, page in cache.evict_candidates():
                    if not page.dirty:
                        cache.drop(index)
        finally:
            self._writeback_running = False

    # -- workload entry points ------------------------------------------------------

    def run_fio(self, job: FioJob) -> FioResult:
        return FioEngine(self).run(job)

    def run_multi_tenant(self, job):
        """Run a :class:`repro.core.tenants.MultiTenantJob` (NVMe only)."""
        from repro.core.tenants import MultiTenantEngine
        return MultiTenantEngine(self).run(job)

    def run_process(self, generator, until: Optional[int] = None):
        return self.sim.run_process(generator, until=until)

    def read(self, slba: int, nsectors: int, direct: bool = True):
        """Process generator: synchronous read convenience."""
        req = IORequest(IOKind.READ, slba, nsectors)
        req.t_submit = self.sim.now
        event = yield from self.submit_io(req, direct=direct)
        data = yield event
        return data

    def write(self, slba: int, nsectors: int, data: Optional[bytes] = None,
              direct: bool = True):
        req = IORequest(IOKind.WRITE, slba, nsectors, data=data)
        req.t_submit = self.sim.now
        event = yield from self.submit_io(req, direct=direct)
        yield event

    def trim(self, slba: int, nsectors: int):
        """Process generator: deallocate a range (NVMe DSM / ATA TRIM)."""
        req = IORequest(IOKind.TRIM, slba, nsectors)
        req.t_submit = self.sim.now
        event = yield from self.submit_io(req)
        yield event

    def precondition(self, fraction: float = 1.0) -> int:
        """Fill the device to steady state (instant, untimed)."""
        return self.ssd.precondition_sequential(fraction)

"""Figure 11: write performance vs over-provisioning ratio.

The paper's stress test: fill the device (steady state), then randomly
write 2x the whole logical space so garbage collection runs hot, and
measure random-write bandwidth for block sizes 4 KB - 1024 KB at OP
ratios 20/15/10/5%.  Lower OP leaves GC fewer spare blocks, victims
carry more valid pages, and bandwidth collapses — the normalized curves
of Fig 11.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import format_series
from repro.common.units import KB
from repro.core.fio import FioJob
from repro.core.system import FullSystem
from repro.ssd.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    FlashGeometry,
    FlashTiming,
    FTLConfig,
    SSDConfig,
)

OP_RATIOS = [0.20, 0.15, 0.10, 0.05]
FULL_SIZES = [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1024 * KB]
QUICK_SIZES = [4 * KB, 64 * KB]


def _stress_device(op: float, quick: bool) -> SSDConfig:
    """A small device so writing a multiple of its space is tractable.

    ``blocks_per_plane`` stays high (64) because a 5% over-provision
    must still amount to a few erase blocks per parallel unit — the same
    reason real devices have hundreds of blocks per plane.  Channel
    count shrinks instead; striping shape is preserved.
    """
    geometry = FlashGeometry(
        channels=2 if quick else 4,
        packages_per_channel=1 if quick else 2,
        dies_per_package=1, planes_per_die=2, blocks_per_plane=64,
        pages_per_block=16 if quick else 32, page_size=4 * KB)
    return SSDConfig(
        name=f"stress-op{int(op * 100)}",
        geometry=geometry,
        timing=FlashTiming(
            t_read_fast=57_000, t_read_slow=94_000,
            t_prog_fast=413_000, t_prog_slow=1_800_000,
            t_erase=3_000_000, bits_per_cell=2, channel_bus_mhz=333),
        dram=DramConfig(size=8 << 20),
        cores=CoreConfig(n_cores=3, frequency=500_000_000),
        cache=CacheConfig(fraction_of_dram=0.25),
        ftl=FTLConfig(overprovision=op, gc_threshold_free_blocks=1),
    )


def run(quick: bool = True, sizes=None, op_ratios=None,
        stress_multiplier=None) -> Dict:
    """Optional knobs shrink the sweep for the golden small configs;
    the 20% OP point must stay included (it anchors normalization)."""
    sizes = sizes or (QUICK_SIZES if quick else FULL_SIZES)
    op_ratios = op_ratios or OP_RATIOS
    if stress_multiplier is None:
        stress_multiplier = 0.5 if quick else 2.0
    results: Dict = {"op_ratios": op_ratios, "sizes": sizes, "bandwidth": {}}
    for op in op_ratios:
        per_size: Dict[int, float] = {}
        for bs in sizes:
            config = _stress_device(op, quick)
            system = FullSystem(device=config, interface="nvme")
            system.precondition()
            capacity = system.device_sectors * 512
            stress_ios = max(50, int(capacity * stress_multiplier) // bs)
            res = system.run_fio(FioJob(rw="randwrite", bs=bs,
                                        iodepth=16, total_ios=stress_ios,
                                        warmup_fraction=0.5))
            per_size[bs // KB] = {
                "bandwidth_mbps": res.bandwidth_mbps,
                "write_amplification":
                    res.ssd_stats["write_amplification"],
                "gc_runs": res.ssd_stats["gc_runs"],
            }
        results["bandwidth"][op] = per_size
    results["normalized"] = _normalize(results)
    return results


def _normalize(results: Dict) -> Dict[float, Dict[int, float]]:
    """Per the figure: bandwidth normalized to the 20% OP curve."""
    base = results["bandwidth"][0.20]
    out: Dict[float, Dict[int, float]] = {}
    for op, per_size in results["bandwidth"].items():
        out[op] = {}
        for kb, point in per_size.items():
            ref = base[kb]["bandwidth_mbps"]
            out[op][kb] = point["bandwidth_mbps"] / ref if ref else 0.0
    return out


def render(results: Dict) -> str:
    series = {f"OP {int(op * 100)}%": {kb: round(v, 3)
                                       for kb, v in per_size.items()}
              for op, per_size in results["normalized"].items()}
    table = format_series(series, "KiB",
                          "Fig 11: normalized random-write bandwidth vs OP")
    wa = {f"OP {int(op * 100)}%": {
        kb: round(v["write_amplification"], 2)
        for kb, v in per_size.items()}
        for op, per_size in results["bandwidth"].items()}
    return table + "\n\n" + format_series(wa, "KiB", "Write amplification")

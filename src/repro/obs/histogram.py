"""Streaming log-bucketed latency histograms.

A :class:`LogHistogram` summarizes an unbounded stream of non-negative
integer samples (latencies in ns) in O(1) time and bounded memory, in
the style of HdrHistogram: each power-of-two octave is split into
``subbuckets`` linear buckets, so the bucket holding a sample is never
wider than ``value / subbuckets``.  Percentile estimates are therefore
within a relative error of ``1 / subbuckets`` of the exact
order-statistic answer (6.25% at the default 16 sub-buckets), while
``count``/``sum``/``min``/``max`` — and hence the mean — stay exact.

Histograms are mergeable (:meth:`merge`), which is what lets per-epoch
or per-system histograms aggregate into one report without keeping any
raw samples around.

Bucket layout (``S = subbuckets``, a power of two):

* values ``v < S`` get their own width-1 bucket (``index = v``), so
  small latencies are exact;
* values ``v >= S`` with ``e = v.bit_length() - 1`` land in
  ``index = (e - log2(S) + 1) * S + ((v >> (e - log2(S))) - S)``,
  a width ``2**(e - log2(S))`` bucket.

The index math is a few integer ops per :meth:`record` — no search, no
allocation beyond a dict slot per occupied bucket (at most ~``64 * S``
slots for 64-bit values, in practice a few dozen).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple


class LogHistogram:
    """O(1)-record, mergeable, log-bucketed histogram of ints >= 0."""

    __slots__ = ("subbuckets", "_sub_bits", "_counts", "count", "total",
                 "min", "max")

    def __init__(self, subbuckets: int = 16) -> None:
        if subbuckets < 2 or subbuckets & (subbuckets - 1):
            raise ValueError("subbuckets must be a power of two >= 2")
        self.subbuckets = subbuckets
        self._sub_bits = subbuckets.bit_length() - 1
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    # -- recording --------------------------------------------------------

    def _index_of(self, value: int) -> int:
        if value < self.subbuckets:
            return value
        exp = value.bit_length() - 1
        shift = exp - self._sub_bits
        return (shift + 1) * self.subbuckets + ((value >> shift)
                                                - self.subbuckets)

    def _bounds_of(self, index: int) -> Tuple[int, int]:
        """[lo, hi) bounds of one bucket index."""
        if index < self.subbuckets:
            return index, index + 1
        shift = index // self.subbuckets - 1
        j = index % self.subbuckets
        lo = (self.subbuckets + j) << shift
        return lo, lo + (1 << shift)

    def record(self, value: int) -> None:
        """Add one sample; O(1), no allocation beyond the bucket slot."""
        value = int(value)
        if value < 0:
            raise ValueError("negative sample")
        index = self._index_of(value)
        counts = self._counts
        counts[index] = counts.get(index, 0) + 1
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same layout)."""
        if other.subbuckets != self.subbuckets:
            raise ValueError("cannot merge histograms with different "
                             "sub-bucket counts")
        if other.count == 0:
            return
        counts = self._counts
        for index, n in other._counts.items():
            counts[index] = counts.get(index, 0) + n
        if self.count == 0:
            self.min, self.max = other.min, other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total

    # -- summary ----------------------------------------------------------

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of a percentile estimate."""
        return 1.0 / self.subbuckets

    def mean(self) -> float:
        """Exact mean of all recorded samples."""
        return self.total / self.count if self.count else 0.0

    def _value_at_rank(self, rank: int, ordered: Sequence[int],
                      cumulative: Sequence[int]) -> float:
        """Estimated value of the ``rank``-th order statistic (0-based)."""
        before = 0
        for index, cum in zip(ordered, cumulative):
            if rank < cum:
                lo, hi = self._bounds_of(index)
                in_bucket = cum - before
                # samples assumed uniform across the bucket
                frac = (rank - before + 0.5) / in_bucket
                return lo + frac * (hi - lo)
            before = cum
        return float(self.max)

    def percentile(self, p: float) -> float:
        """Estimated percentile; within ``relative_error`` of exact."""
        return self.percentiles([p])[0]

    def percentiles(self, ps: Sequence[float]) -> List[float]:
        """Several percentile estimates sharing one bucket walk."""
        for p in ps:
            if not 0.0 <= p <= 100.0:
                raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return [0.0 for _ in ps]
        ordered = sorted(self._counts)
        cumulative: List[int] = []
        running = 0
        for index in ordered:
            running += self._counts[index]
            cumulative.append(running)
        out: List[float] = []
        for p in ps:
            rank = (p / 100.0) * (self.count - 1)
            lower = int(rank)
            low_v = self._value_at_rank(lower, ordered, cumulative)
            if lower == rank:
                value = low_v
            else:
                high_v = self._value_at_rank(lower + 1, ordered, cumulative)
                frac = rank - lower
                value = low_v * (1 - frac) + high_v * frac
            # exact extremes bound every estimate
            out.append(min(max(value, float(self.min)), float(self.max)))
        return out

    # -- iteration / serialization ----------------------------------------

    def buckets(self) -> Iterator[Tuple[int, int, int]]:
        """Occupied buckets as ``(lo, hi, count)``, ascending."""
        for index in sorted(self._counts):
            lo, hi = self._bounds_of(index)
            yield lo, hi, self._counts[index]

    def summary(self, scale: float = 1.0) -> Dict[str, float]:
        """count/mean/p50/p95/p99/min/max dict, values scaled by ``scale``."""
        p50, p95, p99 = self.percentiles([50, 95, 99])
        return {
            "count": float(self.count),
            "mean": self.mean() * scale,
            "p50": p50 * scale,
            "p95": p95 * scale,
            "p99": p99 * scale,
            "min": self.min * scale,
            "max": self.max * scale,
        }

    def to_dict(self) -> Dict:
        """JSON-ready encoding (flight-recorder dumps, reports)."""
        return {
            "subbuckets": self.subbuckets,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [[lo, hi, n] for lo, hi, n in self.buckets()],
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_dict` output.

        The encoding is lossless at bucket granularity, so a round trip
        preserves every summary — which is what lets per-job histograms
        persisted by the fleet result store merge into fleet-wide
        percentiles without any raw samples (``repro.fleet.report``).
        """
        hist = cls(subbuckets=int(doc["subbuckets"]))
        for lo, _hi, n in doc.get("buckets", []):
            hist._counts[hist._index_of(int(lo))] = int(n)
        hist.count = int(doc["count"])
        hist.total = int(doc["total"])
        hist.min = int(doc["min"])
        hist.max = int(doc["max"])
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"LogHistogram(count={self.count}, min={self.min}, "
                f"max={self.max}, buckets={len(self._counts)})")

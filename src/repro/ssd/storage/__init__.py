"""Storage complex: multi-channel / multi-way flash with detailed timing."""

from repro.ssd.storage.address import PPA, AddressMapper
from repro.ssd.storage.array import BlockState, FlashArray, PageState
from repro.ssd.storage.backend import FlashBackend
from repro.ssd.storage.power import NandPowerMeter

__all__ = [
    "PPA",
    "AddressMapper",
    "PageState",
    "BlockState",
    "FlashArray",
    "FlashBackend",
    "NandPowerMeter",
]

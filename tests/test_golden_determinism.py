"""The golden-determinism contract (docs/PERFORMANCE.md).

Every figure experiment (small config) and benchmark scenario must
reproduce the exact result tree recorded in ``tests/golden/*.json``.
The digests were recorded on the pre-optimization engine, so these tests
are the proof that the kernel fast path changed no simulated behaviour:
event counts, final simulated times, latencies, bandwidths and figure
payloads are all bit-identical.

After an *intentional* model change, regenerate with::

    PYTHONPATH=src python -m repro.experiments.golden --update
"""

import json
from pathlib import Path

import pytest

from repro.experiments import golden

GOLDEN_DIR = Path(__file__).parent / "golden"


def _load(case):
    return json.loads((GOLDEN_DIR / f"{case}.json").read_text())


class TestGoldenFiles:
    def test_every_case_has_a_recorded_file(self):
        for case in golden.GOLDEN_CASES:
            assert (GOLDEN_DIR / f"{case}.json").exists(), (
                f"missing golden file for {case!r}; run "
                "`python -m repro.experiments.golden --update`")

    def test_no_orphan_golden_files(self):
        on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
        assert on_disk == set(golden.GOLDEN_CASES)

    def test_documents_are_self_consistent(self):
        """Stored digest always matches the stored payload."""
        for case in golden.GOLDEN_CASES:
            doc = _load(case)
            assert doc["case"] == case
            assert golden.digest(doc["payload"]) == doc["digest"]

    def test_volatile_keys_never_recorded(self):
        def walk(node):
            if isinstance(node, dict):
                for key, value in node.items():
                    assert key not in golden.VOLATILE_KEYS
                    walk(value)
            elif isinstance(node, list):
                for value in node:
                    walk(value)

        for case in golden.GOLDEN_CASES:
            walk(_load(case)["payload"])


class TestCanonicalization:
    def test_tuple_keys_and_values_stabilize(self):
        tree = {("nvme", 4): (1, 2), "b": {"wall_seconds": 1.23, "x": 1}}
        canon = golden.canonicalize(tree)
        assert canon == {"('nvme', 4)": [1, 2], "b": {"x": 1}}

    def test_digest_independent_of_key_order(self):
        a = {"x": 1, "y": {"p": [1, 2], "q": 3.5}}
        b = {"y": {"q": 3.5, "p": [1, 2]}, "x": 1}
        assert golden.digest(a) == golden.digest(b)

    def test_digest_sensitive_to_values(self):
        assert golden.digest({"x": 1}) != golden.digest({"x": 2})


@pytest.mark.parametrize("case", sorted(golden.GOLDEN_CASES))
def test_golden_digest_unchanged(case):
    """Re-run the small config and compare against the recorded digest.

    A mismatch means a behavioural change: an event reordered, a latency
    recomputed differently, a float built by a different expression.
    """
    result = golden.GOLDEN_CASES[case]()
    expected = _load(case)
    actual = golden.digest(result)
    if actual != expected["digest"]:  # pragma: no cover - diagnostic path
        payload = golden.canonicalize(result)
        diffs = _first_diffs(expected["payload"], payload)
        pytest.fail(f"golden digest drift for {case}: {diffs}")


def _first_diffs(old, new, path="", out=None, limit=5):
    out = out if out is not None else []
    if len(out) >= limit:
        return out
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            _first_diffs(old.get(key), new.get(key), f"{path}.{key}", out)
    elif isinstance(old, list) and isinstance(new, list) and len(old) == len(new):
        for i, (a, b) in enumerate(zip(old, new)):
            _first_diffs(a, b, f"{path}[{i}]", out)
    elif old != new:
        out.append(f"{path}: {old!r} -> {new!r}")
    return out


class TestKernelPins:
    """The headline determinism facts, pinned explicitly and readably."""

    def test_scenario_events_and_sim_time_pinned(self):
        recorded = _load("perf_scenarios")["payload"]
        from repro.bench.scenarios import SCENARIOS
        for name, runner in SCENARIOS.items():
            result = runner("smoke")
            assert result.events == recorded[name]["events"], name
            assert result.sim_ns == recorded[name]["sim_ns"], name

    def test_simulator_is_rerun_stable(self):
        """The same scenario twice in one process: identical facts."""
        from repro.bench.scenarios import kernel_churn
        first = kernel_churn("smoke")
        second = kernel_churn("smoke")
        assert first.events == second.events
        assert first.sim_ns == second.sim_ns

"""Host system crossbar (gem5's "system bar" that Amber modifies).

All DMA traffic between I/O devices and system memory crosses this bus;
CPU instruction traffic is folded into the CPU timing model.  The bus is
a bandwidth-shared resource with a small per-transaction arbitration
latency.
"""

from __future__ import annotations

from repro.common.units import transfer_ns
from repro.sim import Resource


class SystemBus:
    def __init__(self, sim, bandwidth: float, arbitration_ns: int = 20,
                 name: str = "sysbus") -> None:
        self.sim = sim
        self.bandwidth = bandwidth
        self.arbitration_ns = arbitration_ns
        self._lanes = Resource(sim, 1, name=name)
        self.bytes_moved = 0
        self.transactions = 0

    def transfer(self, nbytes: int):
        """Process generator: move ``nbytes`` across the crossbar."""
        if nbytes <= 0:
            return
        yield self._lanes.acquire()
        try:
            yield self.sim.timeout(
                self.arbitration_ns + transfer_ns(nbytes, self.bandwidth))
        finally:
            self._lanes.release()
        self.bytes_moved += nbytes
        self.transactions += 1

    def utilization(self) -> float:
        return self._lanes.utilization()

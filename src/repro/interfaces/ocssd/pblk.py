"""pblk: the host-side FTL for Open-Channel SSDs (lightNVM).

Everything an SSD's firmware normally does — translation, write
buffering, striping, garbage collection, wear management — runs here as
*kernel code on host cores*.  That is the essence of the passive storage
architecture: Fig 15b's 50% kernel CPU utilization and Fig 15c's pblk
buffer allocation both come out of this module.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.common.instructions import InstructionMix
from repro.common.iorequest import IOKind, IORequest
from repro.host.cpu import HostCpu
from repro.host.memory import HostMemory
from repro.host.pcie import PcieLink
from repro.interfaces.base import HostAdapter
from repro.interfaces.ocssd.controller import OcssdController

UNMAPPED = -1

# pblk kernel-path instruction budgets: the host pays what device
# firmware would otherwise pay, plus buffer management.
_MIX_WRITE_ENTRY = InstructionMix.typical(3400)   # buffer insert + l2p prep
_MIX_FLUSH_PAGE = InstructionMix.typical(2800)    # alloc + map + vector build
_MIX_READ_LOOKUP = InstructionMix.typical(2600)   # l2p walk + vector build
_MIX_GC_PAGE = InstructionMix.typical(3000)


class _PuState:
    __slots__ = ("free", "active", "next_page", "valid")

    def __init__(self, chunks: int, pages_per_chunk: int) -> None:
        self.free: Deque[int] = deque(range(chunks))
        self.active: Optional[int] = None
        self.next_page = 0
        self.valid = [0] * chunks


class PblkDriver(HostAdapter):
    max_outstanding = 4096

    def __init__(self, sim, cpu: HostCpu, memory: HostMemory,
                 link: PcieLink, controller: OcssdController,
                 buffer_bytes: int = 64 * 1024 * 1024,
                 ring_bytes: int = 16 * 1024 * 1024,
                 op_reserve: float = 0.15,
                 gc_threshold_chunks: int = 2,
                 data_emulation: bool = False) -> None:
        self.sim = sim
        self.cpu = cpu
        self.memory = memory
        self.link = link
        self.controller = controller
        self.data_emulation = data_emulation
        geometry = controller.geometry
        self.page_size = geometry.page_size
        self.sectors_per_page = self.page_size // 512
        self.num_pu = geometry.num_pu
        self.pages_per_chunk = geometry.pages_per_chunk
        # pblk reserves whole chunks per PU; at least two, so GC always
        # has an erased chunk to migrate into while another drains
        reserve_chunks = max(2, int(geometry.chunks_per_pu * op_reserve))
        if reserve_chunks >= geometry.chunks_per_pu:
            raise ValueError("device too small for pblk's chunk reserve")
        self.gc_threshold_chunks = min(gc_threshold_chunks,
                                       reserve_chunks - 1)

        usable = (geometry.total_pages
                  - self.num_pu * reserve_chunks * geometry.pages_per_chunk)
        self.logical_pages = usable
        self.l2p = np.full(usable, UNMAPPED, dtype=np.int64)
        self.p2l = np.full(geometry.total_pages, UNMAPPED, dtype=np.int64)
        self._pus = [_PuState(geometry.chunks_per_pu, geometry.pages_per_chunk)
                     for _ in range(self.num_pu)]
        self._pu_cursor = 0
        self._gc_busy = [False] * self.num_pu

        # pblk allocates its kernel memory once at initialization
        # (Fig 15c's visible step), but the *usable* write-buffer ring is
        # a fraction of it — kernel drivers draw from physical memory and
        # cannot grow like user space, the very limit that costs OCSSD
        # its large-I/O advantage (Section V-E)
        self.buffer_capacity_pages = max(
            8, min(ring_bytes, buffer_bytes) // self.page_size)
        self._buffer: "OrderedDict[int, Optional[bytearray]]" = OrderedDict()
        self._buffer_waiters: Deque = deque()
        self._flush_running = False
        self._force_drain = False
        self._flush_failure: Optional[BaseException] = None
        memory.allocate("pblk", buffer_bytes)

        self.writes_buffered = 0
        self.pages_flushed = 0
        self.gc_pages_migrated = 0
        self.gc_chunks_reclaimed = 0
        self.chunks_retired = 0

    # -- geometry helpers ---------------------------------------------------------

    @property
    def logical_sectors(self) -> int:
        return self.logical_pages * self.sectors_per_page

    def _ppn(self, pu: int, chunk: int, page: int) -> int:
        return (pu * self.controller.geometry.chunks_per_pu + chunk) \
            * self.pages_per_chunk + page

    def _decompose(self, ppn: int):
        chunk_global, page = divmod(ppn, self.pages_per_chunk)
        pu, chunk = divmod(chunk_global, self.controller.geometry.chunks_per_pu)
        return pu, chunk, page

    # -- HostAdapter entry point ----------------------------------------------------

    def submit(self, req: IORequest):
        event = self.sim.event()
        if req.kind == IOKind.FLUSH:
            self.sim.process(self._flush_then(event))
        elif req.kind.is_write:
            self.sim.process(self._write(req, event))
        else:
            self.sim.process(self._read(req, event))
        return event

    # -- write path -------------------------------------------------------------------

    def _write(self, req: IORequest, event):
        with self.sim.tracer.span("ocssd.pblk.write", req.req_id,
                                  nsectors=req.nsectors):
            req.t_device = self.sim.now
            first_lpn = req.slba // self.sectors_per_page
            n_pages = max(1, -(-req.nsectors // self.sectors_per_page))
            for i in range(n_pages):
                lpn = first_lpn + i
                if lpn >= self.logical_pages:
                    raise ValueError(f"lpn {lpn} beyond pblk capacity")
                yield from self.cpu.execute(_MIX_WRITE_ENTRY, kernel=True)
                while len(self._buffer) >= self.buffer_capacity_pages:
                    self._start_flush()
                    waiter = self.sim.event()
                    self._buffer_waiters.append(waiter)
                    yield waiter
                payload = None
                if self.data_emulation and req.data is not None:
                    off = i * self.page_size
                    payload = bytearray(req.data[off:off + self.page_size]
                                        .ljust(self.page_size, b"\0"))
                self._buffer[lpn] = payload
                self._buffer.move_to_end(lpn)
                self.writes_buffered += 1
                yield from self.memory.access(self.page_size, write=True)
            if len(self._buffer) >= self.buffer_capacity_pages // 2:
                self._start_flush()
            req.t_backend_done = self.sim.now
        event.succeed(None)

    def _start_flush(self) -> None:
        if self._flush_failure is not None:
            raise RuntimeError(
                "pblk flush daemon previously failed") from self._flush_failure
        if not self._flush_running:
            self._flush_running = True
            self.sim.process(self._flush_daemon())

    def _flush_daemon(self):
        try:
            while (len(self._buffer) > self.buffer_capacity_pages // 4
                   or self._buffer_waiters
                   or (self._force_drain and self._buffer)):
                batch: List[int] = []
                seen = set()
                while self._buffer and len(batch) < 2 * self.num_pu:
                    lpn, _payload = next(iter(self._buffer.items()))
                    if lpn in seen:
                        break   # wrapped around a small buffer
                    seen.add(lpn)
                    batch.append(lpn)
                    self._buffer.move_to_end(lpn)
                if not batch:
                    break
                yield from self._flush_batch(batch)
        except BaseException as exc:
            # remember why we died so waiters don't respawn us forever
            self._flush_failure = exc
            raise
        finally:
            self._flush_running = False

    def _flush_batch(self, lpns: List[int]):
        """Stripe a batch of buffered pages across parallel units.

        GC for every target PU runs *before* any allocation: flash
        programs must land in allocation order per chunk, so a GC that
        allocated-and-programmed mid-batch would violate the device's
        in-order write rule for pages the batch already reserved.
        """
        targets = []
        for _ in lpns:
            targets.append(self._next_pu())
        for pu in sorted(set(targets)):
            yield from self._gc_if_needed(pu)

        by_pu: Dict[int, List[int]] = {}
        placements: Dict[int, int] = {}
        snapshots: Dict[int, Optional[bytearray]] = {}
        for lpn, pu in zip(lpns, targets):
            yield from self.cpu.execute(_MIX_FLUSH_PAGE, kernel=True)
            snapshots[lpn] = self._buffer.get(lpn)
            ppn = self._allocate(pu)
            placements[lpn] = ppn
            by_pu.setdefault(pu, []).append(lpn)

        writes = []
        for pu, pu_lpns in by_pu.items():
            ppns = [placements[lpn] for lpn in pu_lpns]
            data = None
            if self.data_emulation:
                data = [bytes(snapshots[lpn] or bytes(self.page_size))
                        for lpn in pu_lpns]
            writes.append(self.sim.process(
                self.controller.vector_write(ppns, data)))
        for proc in writes:
            yield proc

        for lpn, ppn in placements.items():
            old = int(self.l2p[lpn])
            self.l2p[lpn] = ppn
            self.p2l[ppn] = lpn
            pu, chunk, _page = self._decompose(ppn)
            self._pus[pu].valid[chunk] += 1
            if old != UNMAPPED:
                self._invalidate(old)
            # a write that re-dirtied the page mid-flush keeps its entry
            if self._buffer.get(lpn) is snapshots[lpn]:
                self._buffer.pop(lpn, None)
            self.pages_flushed += 1
            while self._buffer_waiters and \
                    len(self._buffer) < self.buffer_capacity_pages:
                self._buffer_waiters.popleft().succeed()

    def _invalidate(self, ppn: int) -> None:
        pu, chunk, _page = self._decompose(ppn)
        self._pus[pu].valid[chunk] -= 1
        self.p2l[ppn] = UNMAPPED
        self.controller.invalidate(ppn)

    def _next_pu(self) -> int:
        self._pu_cursor = (self._pu_cursor + 1) % self.num_pu
        return self._pu_cursor

    def _allocate(self, pu: int) -> int:
        state = self._pus[pu]
        if state.active is None:
            if not state.free:
                raise RuntimeError(f"pblk: PU {pu} has no free chunks")
            state.active = state.free.popleft()
            state.next_page = 0
        ppn = self._ppn(pu, state.active, state.next_page)
        state.next_page += 1
        if state.next_page >= self.pages_per_chunk:
            state.active = None
        return ppn

    # -- read path -----------------------------------------------------------------------

    def _read(self, req: IORequest, event):
        with self.sim.tracer.span("ocssd.pblk.read", req.req_id,
                                  nsectors=req.nsectors):
            req.t_device = self.sim.now
            first_lpn = req.slba // self.sectors_per_page
            n_pages = max(1, -(-(req.slba % self.sectors_per_page
                                 + req.nsectors)
                               // self.sectors_per_page))
            chunks: List[Optional[bytes]] = [None] * n_pages
            flash: List[tuple] = []    # (index, ppn) needing a media read
            for i in range(n_pages):
                lpn = first_lpn + i
                yield from self.cpu.execute(_MIX_READ_LOOKUP, kernel=True)
                if lpn in self._buffer:
                    yield from self.memory.access(self.page_size)
                    buffered = self._buffer[lpn]
                    chunks[i] = (bytes(buffered) if buffered is not None
                                 else bytes(self.page_size))
                    continue
                ppn = int(self.l2p[lpn]) if lpn < self.logical_pages \
                    else UNMAPPED
                if ppn == UNMAPPED:
                    chunks[i] = bytes(self.page_size)
                else:
                    flash.append((i, ppn))
            if flash:
                # one vector read covers every missing page (single command)
                payloads = yield from self.controller.vector_read(
                    [ppn for _i, ppn in flash])
                for (i, _ppn), payload in zip(flash, payloads):
                    chunks[i] = payload or bytes(self.page_size)
            req.t_backend_done = self.sim.now
        if self.data_emulation:
            whole = b"".join(chunks)
            start = (req.slba % self.sectors_per_page) * 512
            event.succeed(whole[start:start + req.nbytes])
        else:
            event.succeed(None)

    # -- flush / GC -----------------------------------------------------------------------

    def _flush_then(self, event):
        self._force_drain = True
        try:
            while self._buffer:
                self._start_flush()
                yield self.sim.timeout(50_000)
        finally:
            self._force_drain = False
        event.succeed(None)

    def _gc_if_needed(self, pu: int):
        state = self._pus[pu]
        if len(state.free) > self.gc_threshold_chunks or self._gc_busy[pu]:
            return
        self._gc_busy[pu] = True
        try:
            victim = self._pick_victim(pu)
            if victim is None:
                return
            yield from self._collect(pu, victim)
        finally:
            self._gc_busy[pu] = False

    def _pick_victim(self, pu: int) -> Optional[int]:
        state = self._pus[pu]
        candidates = [c for c in range(len(state.valid))
                      if c != state.active and state.valid[c] >= 0
                      and self._chunk_written(pu, c)
                      and state.valid[c] < self.pages_per_chunk]
        if not candidates:
            return None
        return min(candidates, key=lambda c: state.valid[c])

    def _chunk_written(self, pu: int, chunk: int) -> bool:
        state = self._pus[pu]
        return chunk not in state.free and chunk != state.active

    def _collect(self, pu: int, victim: int):
        base = self._ppn(pu, victim, 0)
        live = [(int(self.p2l[base + page]), base + page)
                for page in range(self.pages_per_chunk)
                if int(self.p2l[base + page]) != UNMAPPED]
        for lpn, old_ppn in live:
            yield from self.cpu.execute(_MIX_GC_PAGE, kernel=True)
            payloads = yield from self.controller.vector_read([old_ppn])
            new_pu = self._next_pu()
            if not self._pus[new_pu].free and \
                    self._pus[new_pu].active is None:
                new_pu = pu
            new_ppn = self._allocate(new_pu)
            yield from self.controller.vector_write(
                [new_ppn], [payloads[0]] if self.data_emulation else None)
            self.l2p[lpn] = new_ppn
            self.p2l[new_ppn] = lpn
            npu, nchunk, _ = self._decompose(new_ppn)
            self._pus[npu].valid[nchunk] += 1
            self._invalidate(old_ppn)
            self.gc_pages_migrated += 1
        ok = yield from self.controller.vector_erase(pu, victim)
        self._pus[pu].valid[victim] = 0
        if ok:
            self._pus[pu].free.append(victim)
            self.gc_chunks_reclaimed += 1
        else:
            # chunk went OFFLINE: drop it from the pool for good
            self._pus[pu].valid[victim] = self.pages_per_chunk
            self.chunks_retired += 1

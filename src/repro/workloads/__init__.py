"""Workload generation: FIO-style synthetic patterns and the Table III
enterprise workloads (24HR, 24HRS, CFS, MSNFS, DAP)."""

from repro.workloads.synthetic import standard_patterns
from repro.workloads.enterprise import ENTERPRISE_WORKLOADS, WorkloadSpec
from repro.workloads.runner import EnterpriseRunner

__all__ = [
    "standard_patterns",
    "WorkloadSpec",
    "ENTERPRISE_WORKLOADS",
    "EnterpriseRunner",
]

"""Device presets for the four validated SSDs (Section V-B) plus Table I.

Geometry shape, flash timing class and interface match each real device;
``blocks_per_plane`` is scaled down from 512 so Python-level mapping
tables stay small (DESIGN.md, "Capacity note").  Parallelism, striping
and timing behaviour — the things the experiments measure — are
unaffected by block count, except total capacity.
"""

from __future__ import annotations

from repro.common.units import GB, KB, MB
from repro.ssd.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    FirmwareCosts,
    FlashGeometry,
    FlashTiming,
    FTLConfig,
    SSDConfig,
)


def intel750(blocks_per_plane: int = 16) -> SSDConfig:
    """Intel 750 400GB-class: 12 channels x 5 packages, MLC, NVMe.

    Flash latencies follow the eval section: tPROG 413us-1.8ms,
    tR 57-94us (ISPP fast/slow pages).
    """
    return SSDConfig(
        name="intel750",
        geometry=FlashGeometry(
            channels=12, packages_per_channel=5, dies_per_package=1,
            planes_per_die=2, blocks_per_plane=blocks_per_plane,
            pages_per_block=256, page_size=4 * KB),
        timing=FlashTiming(
            t_read_fast=57_000, t_read_slow=94_000,
            t_prog_fast=413_000, t_prog_slow=1_800_000,
            t_erase=3_000_000, bits_per_cell=2,
            channel_bus_mhz=333, t_cmd=300),
        dram=DramConfig(size=1 * GB),
        cores=CoreConfig(n_cores=3, frequency=800_000_000,
                         energy_per_instruction=400e-12,
                         leakage_per_core=0.55),
        cache=CacheConfig(fraction_of_dram=0.5),
        ftl=FTLConfig(overprovision=0.20, gc_threshold_free_blocks=1),
        costs=FirmwareCosts(
            hil_fetch=1050, hil_complete=720, icl_lookup=950, icl_fill=480,
            ftl_translate=800, ftl_gc_per_page=560, fil_issue=320,
            doorbell_service=360),
    )


def samsung850pro(blocks_per_plane: int = 16) -> SSDConfig:
    """Samsung 850 PRO: 8 interconnects, MLC V-NAND, SATA (h-type)."""
    return SSDConfig(
        name="850pro",
        geometry=FlashGeometry(
            channels=8, packages_per_channel=4, dies_per_package=1,
            planes_per_die=2, blocks_per_plane=blocks_per_plane,
            pages_per_block=256, page_size=4 * KB),
        timing=FlashTiming(
            t_read_fast=45_000, t_read_slow=85_000,
            t_prog_fast=400_000, t_prog_slow=1_500_000,
            t_erase=3_000_000, bits_per_cell=2,
            channel_bus_mhz=333, t_cmd=300),
        dram=DramConfig(size=512 * MB),
        cores=CoreConfig(n_cores=3, frequency=400_000_000,
                 energy_per_instruction=350e-12,
                 leakage_per_core=0.45),
        cache=CacheConfig(fraction_of_dram=0.5),
        ftl=FTLConfig(overprovision=0.10, gc_threshold_free_blocks=1),
        costs=FirmwareCosts(
            hil_fetch=500, hil_complete=380, icl_lookup=550, icl_fill=280,
            ftl_translate=460, ftl_gc_per_page=330, fil_issue=190,
            doorbell_service=0),
    )


def zssd(blocks_per_plane: int = 16) -> SSDConfig:
    """Samsung Z-SSD prototype: new flash with 3us read / 100us program."""
    return SSDConfig(
        name="zssd",
        geometry=FlashGeometry(
            channels=16, packages_per_channel=4, dies_per_package=1,
            planes_per_die=2, blocks_per_plane=blocks_per_plane,
            pages_per_block=256, page_size=4 * KB),
        timing=FlashTiming(
            t_read_fast=3_000, t_read_slow=3_000,
            t_prog_fast=100_000, t_prog_slow=100_000,
            t_erase=1_000_000, bits_per_cell=1,
            channel_bus_mhz=667, t_cmd=200),
        dram=DramConfig(size=1 * GB, bus_mhz=1066),
        cores=CoreConfig(n_cores=3, frequency=800_000_000,
                 energy_per_instruction=400e-12,
                 leakage_per_core=0.55),
        cache=CacheConfig(fraction_of_dram=0.5),
        ftl=FTLConfig(overprovision=0.20, gc_threshold_free_blocks=1),
        costs=FirmwareCosts(
            hil_fetch=600, hil_complete=450, icl_lookup=560, icl_fill=280,
            ftl_translate=470, ftl_gc_per_page=360, fil_issue=190,
            doorbell_service=250),
    )


def samsung983dct(blocks_per_plane: int = 16) -> SSDConfig:
    """Samsung 983 DCT prototype: V-NAND TLC datacenter NVMe, multi-stream."""
    return SSDConfig(
        name="983dct",
        geometry=FlashGeometry(
            channels=8, packages_per_channel=8, dies_per_package=1,
            planes_per_die=2, blocks_per_plane=blocks_per_plane,
            pages_per_block=256, page_size=4 * KB),
        timing=FlashTiming(
            t_read_fast=60_000, t_read_slow=90_000,
            t_prog_fast=500_000, t_prog_slow=1_600_000,
            t_erase=3_500_000, bits_per_cell=3,
            channel_bus_mhz=533, t_cmd=250),
        dram=DramConfig(size=1 * GB, bus_mhz=933),
        cores=CoreConfig(n_cores=3, frequency=700_000_000,
                 energy_per_instruction=380e-12,
                 leakage_per_core=0.5),
        cache=CacheConfig(fraction_of_dram=0.5),
        ftl=FTLConfig(overprovision=0.15, gc_threshold_free_blocks=1),
        costs=FirmwareCosts(
            hil_fetch=950, hil_complete=730, icl_lookup=700, icl_fill=350,
            ftl_translate=600, ftl_gc_per_page=450, fil_issue=240,
            doorbell_service=340),
    )


def ufs_mobile(blocks_per_plane: int = 16) -> SSDConfig:
    """UFS 2.1 handheld storage: hardware-automated h-type controller.

    Mobile storage spends far less firmware work per command (no rich
    queues, no doorbells, heavy hardware automation) on a small
    low-power controller — the basis of Fig 13's instruction-rate and
    power gaps versus NVMe.
    """
    return SSDConfig(
        name="ufs-mobile",
        geometry=FlashGeometry(
            channels=4, packages_per_channel=4, dies_per_package=1,
            planes_per_die=2, blocks_per_plane=blocks_per_plane,
            pages_per_block=256, page_size=4 * KB),
        timing=FlashTiming(
            t_read_fast=50_000, t_read_slow=90_000,
            t_prog_fast=450_000, t_prog_slow=1_600_000,
            t_erase=3_000_000, bits_per_cell=2,
            channel_bus_mhz=333, t_cmd=300),
        dram=DramConfig(size=256 * MB),
        cores=CoreConfig(n_cores=2, frequency=300_000_000,
                         energy_per_instruction=300e-12,
                         leakage_per_core=0.4),
        cache=CacheConfig(fraction_of_dram=0.5),
        ftl=FTLConfig(overprovision=0.10, gc_threshold_free_blocks=1),
        costs=FirmwareCosts(
            hil_fetch=260, hil_complete=200, icl_lookup=300, icl_fill=160,
            ftl_translate=260, ftl_gc_per_page=200, fil_issue=110,
            doorbell_service=0),
    )


def table1_configuration() -> dict:
    """Table I: the real device's hardware configuration, verbatim."""
    return {
        "NAND Flash timing (us)": {
            "tPROG": "820.62 / 2250",
            "tR": "59.975 / 104.956",
            "tERASE": "3000",
        },
        "Storage back-end": {
            "Channel": 12, "Package": 5, "Die": 1,
            "Plane": 2, "Block": 512, "Page": 512,
        },
        "Internal DRAM": {
            "Size": "1GB", "Channel": 1, "Rank": 1,
            "Bank": 8, "Chip": 4, "Bus width": 8,
        },
    }


PRESETS = {
    "intel750": intel750,
    "ufs-mobile": ufs_mobile,
    "850pro": samsung850pro,
    "zssd": zssd,
    "983dct": samsung983dct,
}


def by_name(name: str, **kwargs) -> SSDConfig:
    try:
        return PRESETS[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown preset {name!r}; "
                         f"choose from {sorted(PRESETS)}") from None

"""Result containers for full-system runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.recorders import LatencyRecorder


@dataclass
class FioResult:
    """What one FIO invocation reports back."""

    bandwidth_mbps: float = 0.0
    read_bandwidth_mbps: float = 0.0
    write_bandwidth_mbps: float = 0.0
    iops: float = 0.0
    total_ios: int = 0
    total_bytes: int = 0
    elapsed_ns: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    device_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    # where time went, per request stage (ns means); the request's
    # lifecycle timestamps make user/interface/device levels separable
    stage_breakdown: Dict[str, float] = field(default_factory=dict)
    # host-side observations
    host_kernel_utilization: float = 0.0
    host_memory_used: int = 0
    kernel_cpu_timeline: List[Tuple[int, float]] = field(default_factory=list)
    memory_timeline: List[Tuple[int, float]] = field(default_factory=list)
    # device-side observations
    ssd_power: Dict[str, float] = field(default_factory=dict)
    ssd_instructions: Dict[str, float] = field(default_factory=dict)
    ssd_stats: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        return {
            "bandwidth_mbps": round(self.bandwidth_mbps, 1),
            "iops": round(self.iops, 0),
            "mean_latency_us": round(self.latency.mean_us(), 1),
            "p99_latency_us": round(self.latency.percentile(99) / 1000.0, 1),
            "kernel_cpu": round(self.host_kernel_utilization, 3),
        }


@dataclass
class TenantResult:
    """Steady-state observations for one tenant of a shared device."""

    name: str = ""
    nsid: int = 0
    issued: int = 0
    completed: int = 0
    total_bytes: int = 0
    bandwidth_mbps: float = 0.0
    iops: float = 0.0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def summary(self) -> Dict[str, float]:
        """Per-tenant scalar summary (report/JSON-friendly)."""
        return {
            "nsid": self.nsid,
            "completed": self.completed,
            "bandwidth_mbps": round(self.bandwidth_mbps, 1),
            "iops": round(self.iops, 0),
            "mean_latency_us": round(self.latency.mean_us(), 1),
            "p50_latency_us": round(self.latency.percentile(50) / 1000.0, 1),
            "p99_latency_us": round(self.latency.percentile(99) / 1000.0, 1),
        }


@dataclass
class MultiTenantResult:
    """What one multi-tenant run reports: per-tenant plus device-wide.

    ``latency`` is the exact merge of every tenant's recorder
    (:meth:`LatencyRecorder.merge`), so device-wide percentiles come
    from the same buckets as per-tenant ones.
    """

    tenants: List[TenantResult] = field(default_factory=list)
    elapsed_ns: int = 0
    total_ios: int = 0
    total_bytes: int = 0
    bandwidth_mbps: float = 0.0
    iops: float = 0.0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    fairness: float = 0.0           # Jain's index over tenant throughputs
    arbitration: str = ""
    grants: Dict[int, int] = field(default_factory=dict)
    ssd_stats: Dict[str, float] = field(default_factory=dict)

    def tenant(self, index: int) -> TenantResult:
        """The ``index``-th tenant's result (0-based, creation order)."""
        return self.tenants[index]

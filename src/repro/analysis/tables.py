"""Plain-text rendering of result tables and figure series."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Dict[str, Dict], x_label: str = "x",
                  title: str = "") -> str:
    """Render {name: {x: y}} curves as one table with x as first column."""
    xs: List = sorted({x for curve in series.values() for x in curve})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x, "") for name in series])
    return format_table(headers, rows, title=title)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)

"""SIM101 fixture: simulated logic reading the host wall clock."""

import time
from datetime import datetime


def service_time():
    started = time.time()
    return time.perf_counter() - started


def stamp_request():
    return datetime.now()

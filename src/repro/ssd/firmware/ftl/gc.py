"""Garbage-collection victim selection policies.

* **Greedy** [Bux & Iliadis]: pick the block with the fewest valid pages —
  minimum migration cost right now.
* **Cost-benefit** [Kawaguchi et al.]: maximize ``(1-u)/(2u) * age`` where
  ``u`` is block utilization — prefers old, mostly-invalid blocks and
  gives hot blocks time to accumulate more invalidations.

Both are wear-aware when wear-leveling is enabled: among near-equal
candidates the least-worn block wins, which spreads erases (the paper's
"evenly distributed" erase behaviour).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ssd.config import SSDConfig
from repro.ssd.storage.array import FlashArray


def select_victim(config: SSDConfig, array: FlashArray, unit: int,
                  candidates: List[int], now: int) -> Optional[int]:
    """Pick the GC victim block index for a unit, or None if no candidate."""
    if not candidates:
        return None
    policy = config.ftl.gc_policy
    if policy == "greedy":
        scored = [(array.block(unit, b).valid_count, b) for b in candidates]
    elif policy == "costbenefit":
        pages = config.geometry.pages_per_block
        scored = []
        for b in candidates:
            blk = array.block(unit, b)
            u = blk.valid_count / pages
            age = max(1, now - blk.last_write_time)
            if u >= 1.0:
                continue
            # negate: lower score = better victim (matches greedy ordering)
            benefit = (1.0 - u) / (2.0 * max(u, 1e-9)) * age
            scored.append((-benefit, b))
        if not scored:
            return None
    else:
        raise ValueError(f"unknown GC policy {policy!r}")

    scored.sort(key=lambda pair: pair[0])
    if not config.ftl.wear_leveling:
        return scored[0][1]

    # Wear-aware tie-break: among candidates within one page (greedy) or
    # 10% score (cost-benefit) of the best, take the least-erased block.
    best_score = scored[0][0]
    if policy == "greedy":
        near = [b for score, b in scored if score <= best_score + 1]
    else:
        slack = abs(best_score) * 0.1
        near = [b for score, b in scored if score <= best_score + slack]
    return min(near, key=lambda b: array.block(unit, b).erase_count)


def wear_leveling_swap_needed(config: SSDConfig, array: FlashArray,
                              unit: int, candidates: List[int]) -> Optional[int]:
    """Static wear-leveling: if the erase spread within a unit exceeds the
    threshold, nominate the least-worn fully-valid block for migration so
    its cold data moves and the block rejoins the erase rotation.
    """
    if not config.ftl.wear_leveling or not candidates:
        return None
    counts = [array.block(unit, b).erase_count
              for b in range(config.geometry.blocks_per_plane)]
    if max(counts) - min(counts) <= config.ftl.wear_delta_threshold:
        return None
    coldest = min(candidates, key=lambda b: array.block(unit, b).erase_count)
    if array.block(unit, coldest).erase_count == min(counts):
        return coldest
    return None

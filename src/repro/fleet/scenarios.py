"""The scenario registry: named, parameter-driven simulation recipes.

A *scenario* is a function ``(params, seed) -> result dict`` registered
under a stable name with :func:`scenario`.  The fleet runner never
constructs simulations itself — it looks the scenario up by the
``"scenario"`` key of each job's parameter dict and calls it with the
job's hash-derived seed, so the whole sweep is data plus this registry.

Two scenarios ship by default:

* ``"fio"`` — the general design-space probe: a device preset with
  firmware/FTL/geometry knob overrides under one FIO job.  Every axis
  of ``examples/design_space_exploration.py`` is expressible here (see
  the built-in specs below and ``docs/FLEET.md``).
* ``"experiment"`` — wraps the per-figure modules of
  :mod:`repro.experiments`, making each paper figure one more config a
  sweep can enumerate instead of a hand-run script.

Scenario results must be JSON-able and deterministic for a given
``(params, seed)`` — no wall-clock fields — because the result store
content-addresses them and golden tests compare merged reports
byte-for-byte.  Include a ``"latency_hist"`` (``LogHistogram.to_dict``)
to take part in fleet-wide percentile merging.
"""

from __future__ import annotations

import importlib
from dataclasses import replace
from typing import Callable, Dict, List

from repro.fleet.spec import SweepSpec

#: registered scenario name -> callable(params, seed) -> result dict
SCENARIOS: Dict[str, Callable[[Dict, int], Dict]] = {}


def scenario(name: str):
    """Decorator: register a scenario runner under ``name``."""
    def wrap(func: Callable[[Dict, int], Dict]):
        """Register ``func`` in :data:`SCENARIOS`, rejecting duplicates."""
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario {name!r}")
        SCENARIOS[name] = func
        return func
    return wrap


def run_scenario(params: Dict, seed: int) -> Dict:
    """Dispatch one job's parameter dict to its registered scenario."""
    name = params.get("scenario")
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"choose from {sorted(SCENARIOS)}")
    return SCENARIOS[name](params, seed)


# -- the "fio" scenario -------------------------------------------------------

#: fio-scenario keys that are workload knobs, not device overrides
_WORKLOAD_KEYS = {"scenario", "preset", "interface", "rw", "bs", "iodepth",
                  "total_ios", "numjobs"}


def _apply_device_overrides(config, params: Dict, extra_known=frozenset()):
    """Fold the job's device-knob parameters into an ``SSDConfig``.

    ``extra_known`` names parameters the *calling scenario* consumes
    itself (e.g. the multi-tenant scenario's ``tenants`` list); anything
    outside the union of knob keys is rejected loudly so a typo in a
    sweep spec fails the plan instead of silently running the default.
    """
    geometry = config.geometry
    if "channels" in params:
        geometry = replace(geometry, channels=int(params["channels"]))
    if "packages_per_channel" in params:
        geometry = replace(geometry,
                           packages_per_channel=int(
                               params["packages_per_channel"]))
    if geometry is not config.geometry:
        config = config.with_overrides(geometry=geometry)
    cores = config.cores
    if "core_mhz" in params:
        cores = replace(cores, frequency=int(params["core_mhz"]) * 1_000_000)
    if "n_cores" in params:
        cores = replace(cores, n_cores=int(params["n_cores"]))
    if cores is not config.cores:
        config = config.with_overrides(cores=cores)
    ftl = config.ftl
    if "overprovision" in params:
        ftl = replace(ftl, overprovision=float(params["overprovision"]))
    if "gc_policy" in params:
        ftl = replace(ftl, gc_policy=str(params["gc_policy"]))
    if "mapping" in params:
        ftl = replace(ftl, mapping=str(params["mapping"]))
    if ftl is not config.ftl:
        config = config.with_overrides(ftl=ftl)
    if "cache_fraction" in params:
        config = config.with_overrides(
            cache=replace(config.cache,
                          fraction_of_dram=float(params["cache_fraction"])))
    known = _WORKLOAD_KEYS | {"channels", "packages_per_channel", "core_mhz",
                              "n_cores", "overprovision", "gc_policy",
                              "mapping", "cache_fraction"} | set(extra_known)
    unknown = set(params) - known
    if unknown:
        raise ValueError(f"unknown fio-scenario parameters: {sorted(unknown)}")
    config.validate()
    return config


@scenario("fio")
def run_fio_scenario(params: Dict, seed: int) -> Dict:
    """One preset + knob overrides under one FIO job; summary + histogram."""
    from repro.core import presets
    from repro.core.fio import FioJob
    from repro.core.system import FullSystem
    from repro.experiments.common import DEVICE_INTERFACES

    preset = params.get("preset", "intel750")
    config = _apply_device_overrides(presets.by_name(preset), params)
    interface = params.get("interface") or DEVICE_INTERFACES.get(preset,
                                                                 "nvme")
    system = FullSystem(device=config, interface=interface)
    system.precondition()
    job = FioJob(rw=params.get("rw", "randread"),
                 bs=int(params.get("bs", 4096)),
                 iodepth=int(params.get("iodepth", 16)),
                 numjobs=int(params.get("numjobs", 1)),
                 total_ios=int(params.get("total_ios", 1000)),
                 seed=seed & 0x7FFFFFFF)
    result = system.run_fio(job)
    hist = result.latency.histogram
    return {
        "bandwidth_mbps": result.bandwidth_mbps,
        "iops": result.iops,
        "mean_latency_us": result.latency.mean_us(),
        "p50_latency_us": result.latency.percentile(50) / 1000.0,
        "p99_latency_us": result.latency.percentile(99) / 1000.0,
        "total_ios": result.total_ios,
        "elapsed_ns": result.elapsed_ns,
        "events_processed": system.sim.events_processed,
        "sim_time_ns": system.sim.now,
        "write_amplification": result.ssd_stats.get(
            "write_amplification", 1.0),
        "latency_hist": hist.to_dict(),
    }


# -- the "multi_tenant" scenario ----------------------------------------------

#: multi_tenant-scenario keys consumed here, not by the device overrides
_TENANT_KEYS = {"tenants", "arbitration", "inflight_limit", "placement",
                "runtime_ms", "warmup_fraction"}


@scenario("multi_tenant")
def run_multi_tenant_scenario(params: Dict, seed: int) -> Dict:
    """Co-located tenants under a QoS arbiter, as one sweepable job.

    ``params["tenants"]`` is a list of :class:`TenantSpec` field dicts
    (JSON-able, so tenant mixes live in sweep specs).  ``arbitration``,
    ``inflight_limit`` and ``placement`` select the device's QoS
    machinery; per-queue WFQ weights are derived from the tenants'
    ``weight`` fields.  All the ``fio`` scenario's device knobs apply
    too.  The result carries the fleet's standard metric keys plus
    per-tenant summaries/histograms, arbiter grant counts and Jain's
    fairness index, so sweep reports rank fairness alongside tails.
    """
    from repro.core import presets
    from repro.core.system import FullSystem
    from repro.core.tenants import MultiTenantJob, TenantSpec

    preset = params.get("preset", "intel750")
    config = _apply_device_overrides(presets.by_name(preset), params,
                                     extra_known=_TENANT_KEYS)
    tenants = tuple(TenantSpec(**fields)
                    for fields in params.get("tenants", ()))
    if not tenants:
        raise ValueError("multi_tenant scenario needs a 'tenants' list")
    hil = replace(config.hil,
                  arbitration=str(params.get("arbitration",
                                             config.hil.arbitration)),
                  qos_weights=tuple(t.weight for t in tenants),
                  inflight_limit=int(params.get("inflight_limit",
                                                config.hil.inflight_limit)))
    config = config.with_overrides(hil=hil)
    if "placement" in params:
        config = config.with_overrides(
            fil=replace(config.fil, placement=str(params["placement"])))
    config.validate()

    # namespaces require NVMe; the engine enforces this, we just wire it
    system = FullSystem(device=config, interface="nvme")
    system.precondition()
    runtime_ms = params.get("runtime_ms")
    job = MultiTenantJob(
        tenants=tenants,
        runtime_ns=int(runtime_ms) * 1_000_000 if runtime_ms else None,
        seed=seed & 0x7FFFFFFF,
        warmup_fraction=float(params.get("warmup_fraction", 0.15)))
    result = system.run_multi_tenant(job)
    return {
        "bandwidth_mbps": result.bandwidth_mbps,
        "iops": result.iops,
        "mean_latency_us": result.latency.mean_us(),
        "p50_latency_us": result.latency.percentile(50) / 1000.0,
        "p99_latency_us": result.latency.percentile(99) / 1000.0,
        "total_ios": result.total_ios,
        "elapsed_ns": result.elapsed_ns,
        "events_processed": system.sim.events_processed,
        "sim_time_ns": system.sim.now,
        "write_amplification": result.ssd_stats.get(
            "write_amplification", 1.0),
        "latency_hist": result.latency.histogram.to_dict(),
        "arbitration": result.arbitration,
        "fairness": result.fairness,
        "grants": {str(qid): count
                   for qid, count in sorted(result.grants.items())},
        "tenants": [
            dict(tenant.summary(), name=tenant.name,
                 latency_hist=tenant.latency.histogram.to_dict(),
                 metrics=system.metrics.snapshot(f"tenant{index}"))
            for index, tenant in enumerate(result.tenants)],
    }


# -- the "experiment" scenario ------------------------------------------------


@scenario("experiment")
def run_experiment_scenario(params: Dict, seed: int) -> Dict:
    """Run one ``repro.experiments`` module as a fleet job.

    ``params["experiment"]`` names the module (short or module-style
    name, as on the ``python -m repro.experiments`` CLI); every other
    key except ``quick`` is forwarded to the module's ``run()``.  The
    per-figure modules seed themselves deterministically, so ``seed``
    is unused here — the config hash still isolates their result files.
    """
    from repro.experiments.__main__ import EXPERIMENTS, resolve_experiment
    from repro.experiments.golden import canonicalize

    name = resolve_experiment(str(params.get("experiment", "")))
    if name is None:
        raise ValueError(f"unknown experiment {params.get('experiment')!r}; "
                         f"choose from {', '.join(EXPERIMENTS)}")
    module = importlib.import_module(EXPERIMENTS[name])
    kwargs = {key: value for key, value in params.items()
              if key not in ("scenario", "experiment", "quick")}
    result = module.run(quick=bool(params.get("quick", True)), **kwargs)
    return {"experiment": name, "result": canonicalize(result)}


# -- built-in sweep specs -----------------------------------------------------


def builtin_specs() -> Dict[str, SweepSpec]:
    """Named sweeps shipped with the repo (``--builtin`` on the CLI).

    ``design_space_*`` reproduce the three axes of
    ``examples/design_space_exploration.py`` as data; ``smoke4`` is the
    tiny 4-config sweep CI uses for its N-worker determinism gate;
    ``paper_figs`` enumerates every paper figure as one job each;
    ``mt_smoke`` is the 2-tenant arbitration sweep CI replays at
    ``--jobs 1`` and ``--jobs 2`` to pin scheduling-independence;
    ``noisy_neighbor`` sweeps the victim/aggressor mix across the QoS
    mechanisms (see ``repro.experiments.noisy_neighbor``).
    """
    measure = {"preset": "intel750", "rw": "randread", "bs": 4096,
               "iodepth": 32, "total_ios": 1200}
    mt_pair = [
        {"name": "reader", "rw": "randread", "bs": 4096, "iodepth": 4,
         "total_ios": 120, "weight": 4, "priority": 0},
        {"name": "writer", "rw": "randwrite", "bs": 4096, "iodepth": 4,
         "total_ios": 80, "weight": 1, "priority": 2},
    ]
    noisy_pair = [
        {"name": "victim", "rw": "randread", "bs": 4096,
         "arrival": {"kind": "poisson", "rate_iops": 6000},
         "zipf_theta": 0.9, "weight": 8, "priority": 0,
         "size_fraction": 0.5},
        {"name": "aggressor", "rw": "randwrite", "bs": 8192,
         "iodepth": 32, "weight": 1, "priority": 2,
         "size_fraction": 0.5},
    ]
    return {
        "design_space_channels": SweepSpec(
            name="design_space_channels", scenario="fio", base=dict(
                measure, packages_per_channel=5),
            axes={"channels": (2, 4, 8, 12)}),
        "design_space_frequency": SweepSpec(
            name="design_space_frequency", scenario="fio", base=dict(measure),
            axes={"core_mhz": (200, 400, 800, 1600)}),
        "design_space_cores": SweepSpec(
            name="design_space_cores", scenario="fio", base=dict(measure),
            axes={"n_cores": (1, 2, 3)}),
        "smoke4": SweepSpec(
            name="smoke4", scenario="fio",
            base={"preset": "intel750", "rw": "randread",
                  "total_ios": 160, "iodepth": 8},
            axes={"bs": (4096, 65536), "channels": (4, 12)}),
        "paper_figs": SweepSpec(
            name="paper_figs", scenario="experiment",
            axes={"experiment": ("fig10", "fig11", "fig12", "fig13",
                                 "fig14", "fig15", "fig16")}),
        "mt_smoke": SweepSpec(
            name="mt_smoke", scenario="multi_tenant",
            base={"preset": "intel750", "tenants": mt_pair,
                  "inflight_limit": 4},
            axes={"arbitration": ("rr", "wrr", "wfq")}),
        "noisy_neighbor": SweepSpec(
            name="noisy_neighbor", scenario="multi_tenant",
            base={"preset": "intel750", "tenants": noisy_pair,
                  "inflight_limit": 8, "runtime_ms": 20},
            axes={"arbitration": ("rr", "wfq"),
                  "placement": ("rotate", "banded")}),
    }


def spec_names() -> List[str]:
    """Sorted names of the built-in sweeps."""
    return sorted(builtin_specs())

"""SIM105 fixture: a timeout bound to a name that is never used again."""


def worker(sim):
    watchdog = sim.timeout(50_000)
    yield sim.timeout(1)

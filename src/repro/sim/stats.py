"""Measurement instruments attached to simulated components."""

from __future__ import annotations

from typing import List, Optional, Tuple


class TimeAverage:
    """Time-weighted average of a piecewise-constant signal.

    Used for queue depths, memory footprints and similar quantities whose
    mean must be weighted by how long each value was held.
    """

    def __init__(self, sim, initial: float = 0.0) -> None:
        self.sim = sim
        self._value = initial
        self._last_change = sim.now
        self._weighted_sum = 0.0
        self._origin = sim.now
        self._samples: List[Tuple[int, float]] = [(sim.now, initial)]

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.sim.now
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        self._samples.append((now, value))

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def mean(self) -> float:
        elapsed = self.sim.now - self._origin
        if elapsed <= 0:
            return self._value
        total = self._weighted_sum + self._value * (self.sim.now - self._last_change)
        return total / elapsed

    def timeline(self) -> List[Tuple[int, float]]:
        """(time_ns, value) change points — used for the Fig 15 timelines."""
        return list(self._samples)


class UtilizationTracker:
    """Fraction of time a component spends busy, with interval sampling."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._busy_depth = 0
        self._busy_since: Optional[int] = None
        self._busy_time = 0
        self._origin = sim.now
        self._marks: List[Tuple[int, int]] = []  # (time, cumulative busy ns)

    def begin(self) -> None:
        if self._busy_depth == 0:
            self._busy_since = self.sim.now
        self._busy_depth += 1

    def end(self) -> None:
        if self._busy_depth <= 0:
            raise RuntimeError("end() without matching begin()")
        self._busy_depth -= 1
        if self._busy_depth == 0:
            self._busy_time += self.sim.now - self._busy_since
            self._busy_since = None

    def busy_ns(self) -> int:
        total = self._busy_time
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        return total

    def utilization(self) -> float:
        elapsed = self.sim.now - self._origin
        return self.busy_ns() / elapsed if elapsed > 0 else 0.0

    def mark(self) -> None:
        """Record a sample point for interval utilization queries."""
        self._marks.append((self.sim.now, self.busy_ns()))

    def interval_utilization(self) -> List[Tuple[int, float]]:
        """Per-interval utilization between successive ``mark()`` calls."""
        points: List[Tuple[int, float]] = []
        prev_t, prev_b = self._origin, 0
        for t, b in self._marks:
            span = t - prev_t
            points.append((t, (b - prev_b) / span if span > 0 else 0.0))
            prev_t, prev_b = t, b
        return points

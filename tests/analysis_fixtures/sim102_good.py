"""SIM102 fixture: an explicitly-seeded RNG threaded through."""

import random


def make_rng(seed):
    return random.Random(seed)


def jitter_ns(rng):
    return rng.uniform(0, 50)


def pick_victim(rng, blocks):
    return blocks[rng.randint(0, len(blocks) - 1)]

"""SIM109 fixture: workers derive every RNG stream from the config hash."""

import random

from repro.fleet.spec import derive_seed


def run_job_worker(job):
    rng = random.Random(derive_seed(job.config_hash))
    return rng.uniform(0, 50)


def sweep_worker(params, config_hash):
    rng = random.Random(int(config_hash[:16], 16))
    return rng.randrange(100)


def replay_job(entry, job_seed):
    rng = random.Random(job_seed + 7919)
    return rng.random()

"""The event loop at the heart of the simulation.

Hot-path note: ``run``/``run_process`` inline the pop-and-process body
of :meth:`Simulator.step` (and of ``Event._process``) with the heap and
counters bound to locals — the loop runs hundreds of thousands of times
per macro benchmark and attribute lookups dominate otherwise.  All three
copies must stay semantically identical; the golden determinism suite
(``tests/golden``) pins the observable behaviour, and simlint's
clone-consistency rule (SIM108, ``repro.analysis.clones``) diffs the
normalized loop bodies so any drift fails
``python -m repro.analysis lint`` before it can ship.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterator, Optional

from repro.analysis.sanitizer import sanitizer_for
from repro.obs.profiler import profiler_for, run_process_profiled, run_profiled
from repro.obs.runtime import tracer_for
from repro.obs.telemetry import probe_for
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Deterministic discrete-event simulator.

    Events scheduled for the same instant are processed in the order they
    were enqueued (FIFO tie-break via a monotonically increasing sequence
    number), which keeps every run bit-for-bit reproducible.

    Cancelled events (see :meth:`~repro.sim.events.Timeout.cancel`) stay
    in the heap as tombstones and are discarded when popped — without
    counting toward ``events_processed``, so a cancel storm does not
    perturb the simulation-speed metric.

    Every simulator carries a ``tracer`` (see :mod:`repro.obs`): the
    shared no-op ``NULL_TRACER`` by default, or a live span recorder when
    process-wide tracing is enabled.  Spans record simulated time only
    and never schedule events, so tracing cannot perturb results.

    It likewise carries a ``telemetry`` probe (``None`` by default, live
    when :func:`repro.obs.telemetry.enable_telemetry` was called): the
    loop hands it each processed event so it can flight-record and take
    epoch samples.  The probe only *observes* — it schedules nothing —
    so even enabled telemetry changes neither ``events_processed`` nor
    any simulated result; disabled, it costs one ``is None`` test per
    event.

    A third observe-only hook, the ``sanitizer`` (``None`` by default,
    live when :func:`repro.analysis.sanitizer.enable_sanitizer` was
    called or ``REPRO_SANITIZE=1`` is set), sees each processed event
    the same way and audits resources and processes when the queue
    drains — detecting causality violations, leaked resource tokens and
    stuck processes without scheduling anything, so a sanitized run is
    bit-identical to a plain one.

    The fourth hook, the ``profiler`` (``None`` by default, live when
    :func:`repro.obs.profiler.enable_profiling` was called), works
    differently: instead of being consulted per event, its presence
    makes ``run``/``run_process`` delegate to the profiled loop clones
    in :mod:`repro.obs.profiler`, which wrap each dispatch in
    ``perf_counter`` reads to attribute wall time per layer.  Profiled
    runs stay bit-identical to plain ones (pinned by test); off, the
    cost is one ``is None`` test per ``run`` call, nothing per event.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list = []
        self._sequence: Iterator[int] = count()
        self._event_count: int = 0
        self._orphan_failures: list = []
        self.tracer = tracer_for(self)
        self.telemetry = probe_for(self)
        self.sanitizer = sanitizer_for(self)
        self.profiler = profiler_for(self)

    def _record_orphan_failure(self, event) -> None:
        self._orphan_failures.append(event)

    def _notify_failure(self, error: BaseException) -> None:
        """Hand a run failure to the telemetry/sanitizer post-mortems."""
        if self.telemetry is not None:
            self.telemetry.on_failure(error)
        if self.sanitizer is not None:
            self.sanitizer.on_failure(error)

    def check_orphan_failures(self) -> None:
        """Raise the first failure of a process nobody waited on."""
        if self._orphan_failures:
            error = self._orphan_failures[0].value
            self._notify_failure(error)
            raise error

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events processed so far (simulation-speed metric)."""
        return self._event_count

    # -- factory helpers -------------------------------------------------

    def event(self) -> Event:
        """A fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now with ``value``."""
        return Timeout(self, delay, value)

    def process(self, generator) -> Process:
        """Register ``generator`` as a process starting at this instant."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event firing as soon as any event in ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _enqueue(self, delay: int, event: Event) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + int(delay), next(self._sequence), event))

    def schedule(self, delay: int, callback, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` ns; returns the event."""
        event = Event(self)
        event.callbacks.append(lambda _ev: callback(*args))
        event.succeed(delay=delay)
        return event

    # -- execution -------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty.

        Tombstoned (cancelled) heads are purged on the way, so the
        answer always refers to an event that will actually fire.
        """
        queue = self._queue
        while queue:
            if queue[0][2]._cancelled:
                heapq.heappop(queue)
            else:
                return queue[0][0]
        return None

    def step(self) -> None:
        """Process exactly one live event (skipping tombstones)."""
        queue = self._queue
        telemetry = self.telemetry
        sanitizer = self.sanitizer
        while queue:
            when, _seq, event = heapq.heappop(queue)
            if event._cancelled:
                continue
            self._now = when
            self._event_count += 1
            if telemetry is not None:
                telemetry.on_event(when, event)
            if sanitizer is not None:
                sanitizer.on_event(when, event)
            event._process()
            return
        raise EmptySchedule()

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError("until lies in the past")
        if self.profiler is not None:
            return run_profiled(self, until)
        # Inlined step()/Event._process() with locals for the hot loop.
        queue = self._queue
        pop = heapq.heappop
        record_orphan = self._record_orphan_failure
        telemetry = self.telemetry
        sanitizer = self.sanitizer
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                return
            when, _seq, event = pop(queue)
            if event._cancelled:
                continue
            self._now = when
            self._event_count += 1
            if telemetry is not None:
                telemetry.on_event(when, event)
            if sanitizer is not None:
                sanitizer.on_event(when, event)
            event._processed = True
            callbacks, event.callbacks = event.callbacks, None
            if not event._ok and not callbacks:
                record_orphan(event)
            for callback in callbacks:
                callback(event)
        if until is not None:
            self._now = until
        elif sanitizer is not None:
            # true drain (no deadline cut the run short): audit held
            # tokens and unfinished processes
            sanitizer.on_drain()

    def run_process(self, generator, until: Optional[int] = None) -> Any:
        """Convenience: drive ``generator`` as a process to completion.

        Steps the simulation only until the process finishes (other
        queued work — background daemons, periodic samplers — stays
        queued), returning the process return value.  Raises if the
        process fails, or if the queue drains / ``until`` passes first.

        Clock contract: on success ``now`` is the instant the process
        completed (pending events may remain queued).  On the failure
        paths with a deadline — the next event lies beyond ``until``,
        or the queue drains early — the clock is advanced to ``until``
        before raising, matching :meth:`run`'s drain behaviour, so
        ``now`` never sits behind a deadline that has already passed.
        """
        if self.profiler is not None:
            return run_process_profiled(self, generator, until)
        proc = self.process(generator)
        queue = self._queue
        pop = heapq.heappop
        record_orphan = self._record_orphan_failure
        telemetry = self.telemetry
        sanitizer = self.sanitizer
        while not proc._processed and queue:
            if until is not None and queue[0][0] > until:
                break
            when, _seq, event = pop(queue)
            if event._cancelled:
                continue
            self._now = when
            self._event_count += 1
            if telemetry is not None:
                telemetry.on_event(when, event)
            if sanitizer is not None:
                sanitizer.on_event(when, event)
            event._processed = True
            callbacks, event.callbacks = event.callbacks, None
            if not event._ok and not callbacks:
                record_orphan(event)
            for callback in callbacks:
                callback(event)
        if not proc._processed:
            if until is not None and self._now < until:
                self._now = until
            self.check_orphan_failures()
            error = RuntimeError("process did not complete"
                                 + ("" if until is None
                                    else " before the deadline"))
            self._notify_failure(error)
            raise error
        if not proc._ok:
            self._notify_failure(proc._value)
            raise proc._value
        return proc._value

"""Device-side NVMe controller.

Fetches SQEs over PCIe when doorbells ring, parses them, emulates every
payload transfer through the DMA engine (PRP/SGL walk), drives the SSD's
HIL, and posts CQEs + MSI-X on completion.
"""

from __future__ import annotations

from typing import Dict

from repro.common.instructions import InstructionMix
from repro.obs.tracer import NULL_SPAN_CONTEXT
from repro.common.iorequest import IOKind
from repro.host.dma import DmaEngine, PointerList
from repro.interfaces.nvme.host import NvmeDriver
from repro.interfaces.nvme.structures import (
    CQE_BYTES,
    SQE_BYTES,
    CompletionEntry,
    NvmeOpcode,
    SubmissionEntry,
)
from repro.ssd.device import SSD
from repro.ssd.firmware.requests import DeviceCommand

_MSI_BYTES = 16


class NvmeController:
    def __init__(self, sim, ssd: SSD, dma: DmaEngine, driver: NvmeDriver,
                 queue_priorities: Dict[int, int] = None) -> None:
        self.sim = sim
        self.ssd = ssd
        self.dma = dma
        self.driver = driver
        self.queue_priorities = queue_priorities or {}
        driver.attach_controller(self)
        self._doorbell_mix = InstructionMix.typical(
            ssd.config.costs.doorbell_service)
        self._fetch_busy: Dict[int, bool] = {}
        self.commands_fetched = 0
        self.completions_posted = 0

    # -- doorbell handling -----------------------------------------------------

    def doorbell(self, qid: int) -> None:
        """Posted doorbell write arrived; start fetching if not already."""
        if not self._fetch_busy.get(qid):
            self._fetch_busy[qid] = True
            self.sim.process(self._fetch_loop(qid))

    def admin_doorbell(self) -> None:
        """Admin queue doorbell: fetch and execute admin commands."""
        if not self._fetch_busy.get(0):
            self._fetch_busy[0] = True
            self.sim.process(self._admin_loop())

    def _admin_loop(self):
        admin = self.driver.admin
        try:
            while admin.device_work_pending:
                sqe = admin.sq.pop()
                yield from self.dma.control_to_device(SQE_BYTES)
                yield from self.ssd.cores.execute("hil", self._doorbell_mix)
                result = yield from self._execute_admin(sqe)
                cqe = CompletionEntry(cid=sqe.cid, sq_id=0,
                                      sq_head=admin.sq.head)
                cqe.payload = result
                yield from self.dma.control_to_host(CQE_BYTES)
                admin.cq.post(cqe)
                yield from self.dma.control_to_host(_MSI_BYTES)
                self.driver.interrupt_admin()
        finally:
            self._fetch_busy[0] = False

    def _execute_admin(self, sqe: SubmissionEntry):
        """Mandatory + supported-optional admin commands (NVMe 1.2.1)."""
        params = sqe.context or {}
        if sqe.opcode is NvmeOpcode.IDENTIFY:
            config = self.ssd.config
            result = {
                "model": config.name,
                "capacity_sectors": config.logical_sectors,
                "namespaces": sorted(self.driver.namespaces),
                "channels": config.geometry.channels,
                "embedded_cores": config.cores.n_cores,
            }
        elif sqe.opcode is NvmeOpcode.GET_LOG_PAGE:
            # log page 0x02 = SMART / health information
            result = self.ssd.smart_report()
        elif sqe.opcode is NvmeOpcode.CREATE_SQ:
            result = self.driver.create_io_queue_pair(
                params["qid"], params.get("depth"))
        elif sqe.opcode is NvmeOpcode.CREATE_CQ:
            result = None   # paired with CREATE_SQ in create_io_queue_pair
        elif sqe.opcode is NvmeOpcode.DELETE_SQ:
            self.driver.delete_io_queue_pair(params["qid"])
            result = None
        elif sqe.opcode is NvmeOpcode.DELETE_CQ:
            result = None
        elif sqe.opcode in (NvmeOpcode.SET_FEATURES, NvmeOpcode.GET_FEATURES):
            result = dict(params)
        elif sqe.opcode is NvmeOpcode.NS_MANAGEMENT:
            ns = self.driver.create_namespace(
                params["nsid"], params["start_sector"], params["n_sectors"])
            result = ns
        elif sqe.opcode is NvmeOpcode.NS_ATTACH:
            result = None
        elif sqe.opcode is NvmeOpcode.FORMAT_NVM:
            # deallocate the whole drive: TRIM every mapped sector range
            yield self.ssd.submit(DeviceCommand(
                IOKind.TRIM, 0, self.ssd.config.logical_sectors))
            result = None
        elif sqe.opcode is NvmeOpcode.ABORT:
            result = None   # nothing cancellable: completions are in flight
        else:
            raise ValueError(f"unsupported admin opcode {sqe.opcode}")
        return result

    def _fetch_loop(self, qid: int):
        qpair = self.driver.qpairs[qid]
        try:
            while qpair.device_work_pending:
                sqe = qpair.sq.pop()
                # SQE fetch: 64 B DMA from host memory over PCIe
                yield from self.dma.control_to_device(SQE_BYTES)
                # the embedded core that owns the queue must service every
                # doorbell/fetch — the cost behind Fig 13c's NVMe./UFS gap
                yield from self.ssd.cores.execute("hil", self._doorbell_mix)
                self.commands_fetched += 1
                self.sim.process(self._execute(qid, sqe))
        finally:
            self._fetch_busy[qid] = False

    # -- command execution --------------------------------------------------------

    def _execute(self, qid: int, sqe: SubmissionEntry):
        req = sqe.context
        track = req.req_id if req is not None else 0
        pointers = PointerList(list(sqe.prp_entries))
        payload = None

        tracer = self.sim.tracer
        with (tracer.span("nvme.cmd", track, qid=qid, opcode=sqe.opcode.name)
              if tracer.enabled else NULL_SPAN_CONTEXT):
            if sqe.opcode is NvmeOpcode.WRITE:
                # pull data host -> device (PRP walk), then hand to firmware
                yield from self.dma.to_device(pointers, track=track)
                cmd = DeviceCommand(IOKind.WRITE, sqe.slba, sqe.nsectors,
                                    queue_id=qid,
                                    priority=self.queue_priorities.get(qid, 1),
                                    data=req.data if req is not None else None,
                                    host_request=req)
                if req is not None:
                    req.t_device = self.sim.now
                done = self.ssd.submit(cmd)
                yield done
            elif sqe.opcode is NvmeOpcode.READ:
                cmd = DeviceCommand(IOKind.READ, sqe.slba, sqe.nsectors,
                                    queue_id=qid,
                                    priority=self.queue_priorities.get(qid, 1),
                                    host_request=req)
                if req is not None:
                    req.t_device = self.sim.now
                done = self.ssd.submit(cmd)
                payload = yield done
                # push data device -> host (PRP walk)
                yield from self.dma.to_host(pointers, track=track)
            elif sqe.opcode is NvmeOpcode.FLUSH:
                cmd = DeviceCommand(IOKind.FLUSH, 0, 0, queue_id=qid)
                yield self.ssd.submit(cmd)
            elif sqe.opcode is NvmeOpcode.DATASET_MANAGEMENT:
                cmd = DeviceCommand(IOKind.TRIM, sqe.slba, sqe.nsectors,
                                    queue_id=qid)
                yield self.ssd.submit(cmd)
            else:
                raise ValueError(f"controller cannot execute {sqe.opcode}")

            if req is not None:
                req.t_backend_done = self.sim.now
        yield from self._complete(qid, sqe, payload)

    def _complete(self, qid: int, sqe: SubmissionEntry, payload):
        qpair = self.driver.qpairs[qid]
        cqe = CompletionEntry(cid=sqe.cid, sq_id=qid,
                              sq_head=qpair.sq.head)
        cqe.payload = payload
        # CQE write into host memory, then the MSI-X vector write
        yield from self.dma.control_to_host(CQE_BYTES)
        qpair.cq.post(cqe)
        yield from self.dma.control_to_host(_MSI_BYTES)
        self.completions_posted += 1
        self.driver.interrupt(qid)

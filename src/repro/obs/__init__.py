"""``repro.obs`` — end-to-end observability for the simulated stack.

Two substrates, documented in detail in ``docs/OBSERVABILITY.md``:

* **Tracing** (:mod:`repro.obs.tracer`): nested spans in *simulated*
  time, keyed by I/O request id, opened and closed at every layer of
  the stack (``io.submit`` -> ``os.blocklayer`` -> ``nvme.sq`` /
  ``ahci`` / ``ufs.utp`` / ``ocssd.pblk`` -> ``hil`` -> ``icl`` ->
  ``ftl`` -> ``flash``), exportable as a Chrome ``trace_event`` JSON.
* **Metrics** (:mod:`repro.obs.metrics`): one hierarchical namespace
  (``ssd.channel0.util``) unifying the previously ad-hoc counters,
  ``TimeAverage`` and ``UtilizationTracker`` instruments, exportable
  as CSV.

**Causal forensics** (:mod:`repro.obs.causal`) builds on tracing: a
:class:`CausalTracer` decomposes every request's end-to-end latency
exactly into resource components (conservation invariant: components
sum to the total), keeps bounded top-K tail captures with blame edges,
and :mod:`repro.obs.diff` explains *why two runs differ* by ranking
components against the p50/p99 delta (``fleet explain``).

A third substrate, **telemetry epochs** (:mod:`repro.obs.telemetry`),
samples every registered metric into bounded
:class:`~repro.obs.timeseries.TimeSeries` at a fixed simulated-time
period, keeps a :class:`~repro.obs.flightrec.FlightRecorder` ring of
recent events (dumped to JSON on failure), and feeds the self-contained
HTML/Markdown reports of :mod:`repro.obs.report`
(``python -m repro.experiments <fig> --report out.html``).

Tracing and telemetry are off by default and zero-cost when off:
simulators carry the shared :data:`NULL_TRACER` and a ``None`` probe
until :func:`repro.obs.runtime.enable_tracing` /
:func:`repro.obs.telemetry.enable_telemetry` are called (e.g. by
``python -m repro.experiments <fig> --trace out.json --report out.html``).

Two wall-clock substrates complete the picture (both deliberately
outside the simulated-time determinism contract): the **run journal**
(:mod:`repro.obs.journal`) streams NDJSON lifecycle events beside a
fleet result store for ``python -m repro.fleet watch``, and the
**self-profiler** (:mod:`repro.obs.profiler`) attributes host wall time
per layer (``--profile`` / ``--self-profile`` on the CLIs).  Both are
off by default and zero-cost when off, and neither ever perturbs
simulated results.
"""

from repro.obs.causal import (
    CHAIN_CAP,
    COMPONENTS,
    KIND_COMPONENT,
    CausalTracer,
    causal_enabled,
    causal_summary,
    causal_tracer_for,
    component_of,
    disable_causal,
    enable_causal,
)
from repro.obs.diff import (
    explain,
    render_explain_html,
    render_explain_markdown,
    write_explain_report,
)
from repro.obs.export import (
    chrome_trace,
    format_breakdown,
    latency_breakdown,
    span_histograms,
    write_chrome_trace,
    write_metrics_csv,
)
from repro.obs.flightrec import FlightRecorder
from repro.obs.histogram import LogHistogram
from repro.obs.journal import (
    JOURNAL_NAME,
    RunJournal,
    active_job,
    begin_job,
    end_job,
    journal_path_for,
    wall_now,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, ScopedRegistry
from repro.obs.profiler import (
    WallProfiler,
    attribution,
    attribution_markdown,
    chrome_profile_trace,
    disable_profiling,
    enable_profiling,
    hottest_layers,
    profiler_for,
    profilers,
    profiling_enabled,
    write_profile,
    write_profile_trace,
)
from repro.obs.report import gather, render_html, render_markdown, write_report
from repro.obs.runtime import (
    collect_metrics,
    disable_tracing,
    enable_tracing,
    label_latest_tracer,
    metric_snapshots,
    tracer_for,
    tracers,
    tracing_enabled,
)
from repro.obs.telemetry import (
    TelemetryProbe,
    disable_telemetry,
    enable_telemetry,
    label_latest_probe,
    probe_for,
    probes,
    telemetry_enabled,
)
from repro.obs.timeseries import TimeSeries, sparkline
from repro.obs.tracer import (
    NULL_SPAN_CONTEXT,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    merge_spans,
)

__all__ = [
    "CHAIN_CAP",
    "COMPONENTS",
    "KIND_COMPONENT",
    "CausalTracer",
    "causal_enabled",
    "causal_summary",
    "causal_tracer_for",
    "component_of",
    "disable_causal",
    "enable_causal",
    "explain",
    "render_explain_html",
    "render_explain_markdown",
    "write_explain_report",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "ScopedRegistry",
    "NullTracer",
    "NULL_SPAN_CONTEXT",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "merge_spans",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_csv",
    "latency_breakdown",
    "format_breakdown",
    "collect_metrics",
    "disable_tracing",
    "enable_tracing",
    "label_latest_tracer",
    "metric_snapshots",
    "tracer_for",
    "tracers",
    "tracing_enabled",
    "FlightRecorder",
    "JOURNAL_NAME",
    "LogHistogram",
    "RunJournal",
    "TelemetryProbe",
    "TimeSeries",
    "WallProfiler",
    "active_job",
    "attribution",
    "attribution_markdown",
    "begin_job",
    "chrome_profile_trace",
    "disable_profiling",
    "disable_telemetry",
    "enable_profiling",
    "enable_telemetry",
    "end_job",
    "gather",
    "hottest_layers",
    "journal_path_for",
    "profiler_for",
    "profilers",
    "profiling_enabled",
    "wall_now",
    "write_profile",
    "write_profile_trace",
    "label_latest_probe",
    "probe_for",
    "probes",
    "render_html",
    "render_markdown",
    "span_histograms",
    "sparkline",
    "telemetry_enabled",
    "write_report",
]

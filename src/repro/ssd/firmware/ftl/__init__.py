"""Flash Translation Layer: mapping, allocation, GC, wear-leveling."""

from repro.ssd.firmware.ftl.allocator import PageAllocator
from repro.ssd.firmware.ftl.mapping import (
    BlockMapping,
    HybridMapping,
    PageMapping,
    make_mapping,
)
from repro.ssd.firmware.ftl.gc import select_victim
from repro.ssd.firmware.ftl.ftl import FlashTranslationLayer

__all__ = [
    "PageAllocator",
    "PageMapping",
    "BlockMapping",
    "HybridMapping",
    "make_mapping",
    "select_victim",
    "FlashTranslationLayer",
]

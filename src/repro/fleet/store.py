"""Content-addressed, resumable result store for fleet sweeps.

Each job's result lives at ``<root>/<hh>/<hash>.json`` where ``hash``
is the job's config hash and ``hh`` its first two hex digits (fan-out
so huge sweeps don't pile thousands of files into one directory).  The
document records the parameter dict alongside the result, so a store
is self-describing: ``status``/``report`` never need the spec to tell
which configuration produced a file.

Writes are canonical JSON (sorted keys, fixed separators, trailing
newline) and atomic (temp file + rename), so a store populated twice
from the same simulations is byte-identical and a killed run never
leaves a half-written result for ``--resume`` to trust.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.experiments.golden import canonicalize


class ResultStore:
    """Directory of per-job result documents keyed by config hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path_for(self, job_hash: str) -> Path:
        """Where the result document for ``job_hash`` lives."""
        return self.root / job_hash[:2] / f"{job_hash}.json"

    def has(self, job_hash: str) -> bool:
        """Whether a completed result exists for this configuration."""
        return self.path_for(job_hash).is_file()

    def put(self, job_hash: str, params: Dict, result: Dict) -> Path:
        """Atomically write one job's result document; returns its path."""
        doc = canonicalize({"config_hash": job_hash, "params": params,
                            "result": result})
        path = self.path_for(job_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)
        return path

    def get(self, job_hash: str) -> Optional[Dict]:
        """Load one result document, or None when absent."""
        path = self.path_for(job_hash)
        if not path.is_file():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def delete(self, job_hash: str) -> bool:
        """Drop one result (used by tests to exercise ``--resume``)."""
        path = self.path_for(job_hash)
        if path.is_file():
            path.unlink()
            return True
        return False

    def hashes(self) -> List[str]:
        """Config hashes of every stored result, sorted."""
        if not self.root.is_dir():
            return []
        found = []
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir():
                for entry in sorted(sub.glob("*.json")):
                    found.append(entry.stem)
        return found

    def documents(self) -> Iterator[Dict]:
        """Every stored result document, in sorted-hash order."""
        for job_hash in self.hashes():
            doc = self.get(job_hash)
            if doc is not None:
                yield doc

    def __len__(self) -> int:
        return len(self.hashes())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r}, results={len(self)})"

"""Protocol-conformance tests for the four storage interfaces."""

import pytest

from repro.common.iorequest import IOKind, IORequest
from repro.core.system import FullSystem
from repro.host.platform import mobile_platform
from repro.interfaces.nvme.queues import CompletionQueue, QueuePair, SubmissionQueue
from repro.interfaces.nvme.structures import (
    CQE_BYTES,
    SQE_BYTES,
    Namespace,
    NvmeOpcode,
    SubmissionEntry,
)
from repro.interfaces.sata.fis import (
    DATA_FIS_PAYLOAD,
    FIS_SIZES,
    AhciCommand,
    FisType,
    prdt_for,
)
from repro.interfaces.ocssd.geometry import ChunkState, OcssdGeometry

from tests.conftest import tiny_ssd_config


class TestNvmeQueues:
    def test_sqe_cqe_sizes_match_spec(self):
        assert SQE_BYTES == 64
        assert CQE_BYTES == 16

    def test_sq_keeps_one_slot_open(self):
        sq = SubmissionQueue(qid=1, depth=4)
        for _ in range(3):
            sq.push(SubmissionEntry(NvmeOpcode.READ))
        assert sq.is_full
        with pytest.raises(RuntimeError, match="overflow"):
            sq.push(SubmissionEntry(NvmeOpcode.READ))

    def test_tail_advances_modulo_depth(self):
        sq = SubmissionQueue(qid=1, depth=4)
        for i in range(3):
            sq.push(SubmissionEntry(NvmeOpcode.READ))
            assert sq.tail == (i + 1) % 4
            sq.pop()

    def test_doorbell_reflects_tail(self):
        qp = QueuePair(qid=1, depth=8)
        qp.sq.push(SubmissionEntry(NvmeOpcode.WRITE))
        assert qp.sq_tail_doorbell == 0
        qp.ring_sq_doorbell()
        assert qp.sq_tail_doorbell == qp.sq.tail == 1

    def test_cq_reap_order(self):
        cq = CompletionQueue(qid=1, depth=8)
        from repro.interfaces.nvme.structures import CompletionEntry
        cq.post(CompletionEntry(cid=5, sq_id=1))
        cq.post(CompletionEntry(cid=7, sq_id=1))
        assert cq.reap().cid == 5
        assert cq.reap().cid == 7
        assert cq.reap() is None

    def test_namespace_translation_bounds(self):
        ns = Namespace(nsid=2, start_sector=1000, n_sectors=100)
        assert ns.translate(0, 10) == 1000
        assert ns.translate(90, 10) == 1090
        with pytest.raises(ValueError):
            ns.translate(95, 10)


class TestNvmeEndToEnd:
    def test_mandatory_commands_supported(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme",
                            data_emulation=True)

        def scenario():
            data = FullSystem.pattern_data(0, 8)
            yield from system.write(0, 8, data)        # WRITE
            got = yield from system.read(0, 8)         # READ
            assert got == data
            req = IORequest(IOKind.FLUSH, 0, 0)
            event = yield from system.submit_io(req)   # FLUSH
            yield event

        system.run_process(scenario())
        assert system.controller.completions_posted == 3

    def test_namespace_management_optional_feature(self, sim, tiny_config):
        from repro.host.memory import HostMemory
        from repro.host.pcie import PcieLink
        from repro.interfaces.nvme.host import NvmeDriver
        memory = HostMemory(sim, 1 << 30, bandwidth=1 << 34)
        driver = NvmeDriver(sim, memory, PcieLink(sim), total_sectors=0)
        driver.create_namespace(1, 0, 1000)
        driver.create_namespace(2, 1000, 1000)
        assert driver.identify()["namespaces"] == [1, 2]
        with pytest.raises(ValueError, match="overlaps"):
            driver.create_namespace(3, 500, 1000)
        with pytest.raises(ValueError, match="exists"):
            driver.create_namespace(2, 5000, 10)

    def test_default_namespace_rejects_overlap(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        with pytest.raises(ValueError, match="overlaps"):
            system.adapter.create_namespace(2, 0, 100)

    def test_interrupt_reaps_all_posted_completions(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")

        def scenario():
            events = []
            for i in range(6):
                req = IORequest(IOKind.READ, i * 8, 8)
                events.append((yield from system.submit_io(req)))
            for event in events:
                yield event

        system.run_process(scenario())
        assert system.adapter.interrupts_received >= 1
        # every CQ must be drained after the run
        for qpair in system.adapter.qpairs.values():
            assert qpair.cq.reap() is None


class TestSataAhci:
    def test_fis_sizes(self):
        assert FIS_SIZES[FisType.REGISTER_H2D] == 20
        assert FIS_SIZES[FisType.SET_DEVICE_BITS] == 8

    def test_prdt_segments_are_page_grained(self):
        prdt = prdt_for(0x1000, 10_000)
        assert sum(e.nbytes for e in prdt) == 10_000
        assert all(e.nbytes <= 4096 for e in prdt)

    def test_data_fis_count(self):
        cmd = AhciCommand(slot=0, is_write=False, slba=0,
                          nsectors=64)   # 32 KB
        assert cmd.data_fis_count() == -(-32768 // DATA_FIS_PAYLOAD)

    def test_ncq_limits_outstanding_to_32(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="sata")
        hba = system.adapter
        assert hba.max_outstanding == 32
        peak = {"value": 0}

        def scenario():
            events = []
            for i in range(48):
                # stride 24: never adjacent, so the block layer can't merge
                req = IORequest(IOKind.READ, (i * 24) % 2000, 8)
                events.append((yield from system.submit_io(req)))
                peak["value"] = max(peak["value"],
                                    32 - len(hba._free_slots))
            for event in events:
                yield event

        system.run_process(scenario())
        assert peak["value"] <= 32
        assert hba.commands_issued == 48

    def test_sata_interrupts_serialized_on_core0(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="sata")

        def scenario():
            req = IORequest(IOKind.READ, 0, 8)
            event = yield from system.submit_io(req)
            yield event
            return req

        req = system.run_process(scenario())
        assert req.queue_id == 0   # single interrupt path

    def test_data_integrity_through_prdt_walk(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="sata",
                            data_emulation=True)

        def scenario():
            data = FullSystem.pattern_data(100, 16)
            yield from system.write(100, 16, data)
            got = yield from system.read(100, 16)
            assert got == data

        system.run_process(scenario())


class TestUfs:
    def test_utrd_slots_limit(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="ufs")
        assert system.adapter.max_outstanding == 32

    def test_runs_on_mobile_platform_by_default(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="ufs")
        assert system.platform.name == "mobile"

    def test_data_integrity(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="ufs",
                            platform=mobile_platform(), data_emulation=True)

        def scenario():
            data = FullSystem.pattern_data(0, 24)
            yield from system.write(0, 24, data)
            got = yield from system.read(0, 24)
            assert got == data

        system.run_process(scenario())

    def test_ufs_slower_than_nvme_same_device(self, tiny_config):
        from repro.core.fio import FioJob
        results = {}
        for interface in ("nvme", "ufs"):
            system = FullSystem(device=tiny_config, interface=interface)
            system.precondition()
            results[interface] = system.run_fio(
                FioJob(rw="randread", bs=2048, iodepth=16, total_ios=300))
        assert results["nvme"].bandwidth_mbps >= \
            0.8 * results["ufs"].bandwidth_mbps


class TestOcssd:
    def test_geometry_from_config(self, tiny_config):
        geometry = OcssdGeometry.from_config(tiny_config)
        assert geometry.num_pu == tiny_config.geometry.parallel_units
        assert geometry.pages_per_chunk == tiny_config.geometry.pages_per_block
        assert geometry.spec_version == "2.0"

    def test_spec_12_identify(self, tiny_config):
        geometry = OcssdGeometry.from_config(tiny_config, "1.2")
        ident = geometry.describe_12()
        assert ident["num_pu"] == tiny_config.geometry.parallel_units
        with pytest.raises(ValueError):
            OcssdGeometry.from_config(tiny_config, "3.0")

    def test_chunk_report_reflects_writes(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="ocssd")

        def scenario():
            yield from system.write(0, 64)
            req = IORequest(IOKind.FLUSH, 0, 0)
            event = yield from system.submit_io(req)
            yield event

        system.run_process(scenario())
        states = [desc.state for pu in range(4)
                  for desc in system.controller.report_chunks(pu)]
        assert ChunkState.OPEN in states or ChunkState.CLOSED in states

    def test_pblk_data_integrity(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="ocssd",
                            data_emulation=True)

        def scenario():
            data = FullSystem.pattern_data(0, 32)
            yield from system.write(0, 32, data)
            got = yield from system.read(0, 32)
            assert got == data
            # force a flush, then read from flash (not the write buffer)
            req = IORequest(IOKind.FLUSH, 0, 0)
            event = yield from system.submit_io(req)
            yield event
            got = yield from system.read(0, 32)
            assert got == data

        system.run_process(scenario())
        assert system.adapter.pages_flushed > 0

    def test_pblk_gc_reclaims_chunks(self, tiny_config):
        import random
        system = FullSystem(device=tiny_config, interface="ocssd")
        pblk = system.adapter
        # shrink the ring so writes actually reach flash (and invalidate
        # old pages there) instead of coalescing in the buffer
        pblk.buffer_capacity_pages = 16
        rng = random.Random(5)
        pages = pblk.logical_pages
        spp = pblk.sectors_per_page

        def scenario():
            for _ in range(3 * pages):
                page = rng.randrange(pages)
                yield from system.write(page * spp, spp)
            req = IORequest(IOKind.FLUSH, 0, 0)
            event = yield from system.submit_io(req)
            yield event

        system.run_process(scenario())
        assert pblk.gc_chunks_reclaimed > 0
        assert system.controller.vector_erases > 0

    def test_passive_storage_burns_host_cpu(self, tiny_config):
        from repro.core.fio import FioJob
        results = {}
        for interface in ("nvme", "ocssd"):
            system = FullSystem(device=tiny_config, interface=interface)
            if interface == "nvme":
                system.precondition()
            results[interface] = system.run_fio(
                FioJob(rw="randwrite", bs=2048, iodepth=8, total_ios=300))
        assert results["ocssd"].host_kernel_utilization > \
            results["nvme"].host_kernel_utilization

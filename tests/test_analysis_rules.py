"""Per-rule simlint fixtures, suppression semantics and the CLI
(docs/ANALYSIS.md, "Rule catalog").

Every rule has a bad/good fixture pair under ``tests/analysis_fixtures``:
the bad file must trip exactly that rule, the good file must lint
completely clean — so a rule that goes blind *or* trigger-happy fails
here before it reaches the self-check gate.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import all_rules, lint_paths, lint_source
from repro.analysis.findings import META_RULE, parse_suppressions
from repro.analysis.registry import all_project_rules

FIXTURES = Path(__file__).parent / "analysis_fixtures"

#: rules with a bad/good file pair (SIM108 is exercised on engine sources
#: in test_analysis_selfcheck.py; SIM100 is the meta-rule, tested below)
FIXTURE_RULES = ("SIM101", "SIM102", "SIM103", "SIM104",
                 "SIM105", "SIM106", "SIM107", "SIM109", "SIM110")

#: whole-project (simflow) rules, also covered by bad/good pairs
PROJECT_FIXTURE_RULES = ("SIM201", "SIM202", "SIM203", "SIM210", "SIM220")

#: a path inside a designated wall-clock module (SIM110 allowlist), so
#: suppression-semantics tests exercise SIM101/SIM100 in isolation
_BENCH_PATH = "repro/bench/snippet.py"


def _rule_ids(findings):
    return {f.rule for f in findings if not f.suppressed}


# -- registry -----------------------------------------------------------------

class TestRegistry:
    def test_every_rule_registered_once(self):
        rules = all_rules()
        assert [r.id for r in rules] == sorted(FIXTURE_RULES + ("SIM108",))

    def test_every_project_rule_registered_once(self):
        rules = all_project_rules()
        assert [r.id for r in rules] == sorted(PROJECT_FIXTURE_RULES)

    def test_rules_carry_name_and_rationale(self):
        for rule in all_rules() + all_project_rules():
            assert rule.name, rule.id
            assert len(rule.rationale) > 20, rule.id

    def test_meta_rule_is_not_registered(self):
        # SIM100 is reserved for the suppression machinery itself
        assert META_RULE not in {r.id for r in all_rules()}
        assert META_RULE not in {r.id for r in all_project_rules()}

    def test_rule_families_share_one_id_space(self):
        ids = [r.id for r in all_rules()] + \
            [r.id for r in all_project_rules()]
        assert len(ids) == len(set(ids))


# -- fixture pairs ------------------------------------------------------------

class TestFixturePairs:
    @pytest.mark.parametrize("rule_id",
                             FIXTURE_RULES + PROJECT_FIXTURE_RULES)
    def test_bad_fixture_trips_the_rule(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_bad.py"
        findings = lint_source(str(path))
        assert rule_id in _rule_ids(findings), \
            f"{path.name} did not trigger {rule_id}"

    @pytest.mark.parametrize("rule_id",
                             FIXTURE_RULES + PROJECT_FIXTURE_RULES)
    def test_good_fixture_is_clean(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_good.py"
        findings = [f for f in lint_source(str(path)) if not f.suppressed]
        assert findings == [], \
            "\n".join(f.format() for f in findings)

    def test_fixture_directory_is_paired(self):
        names = {p.name for p in FIXTURES.glob("sim*.py")}
        for rule_id in FIXTURE_RULES + PROJECT_FIXTURE_RULES:
            assert f"{rule_id.lower()}_bad.py" in names
            assert f"{rule_id.lower()}_good.py" in names

    @pytest.mark.parametrize("rule_id", PROJECT_FIXTURE_RULES)
    def test_project_findings_carry_witness(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_bad.py"
        hits = [f for f in lint_source(str(path))
                if f.rule == rule_id and not f.suppressed]
        assert hits and all(f.witness for f in hits), \
            f"{rule_id} findings should explain themselves"


# -- suppression semantics ----------------------------------------------------

class TestSuppressions:
    def test_reasoned_suppression_silences_and_is_marked(self):
        source = ("import time\n"
                  "wall = time.time()  "
                  "# simlint: disable=SIM101 -- measuring lint speed\n")
        findings = lint_source(_BENCH_PATH, source)
        assert _rule_ids(findings) == set()
        suppressed = [f for f in findings if f.suppressed]
        assert len(suppressed) == 1
        assert suppressed[0].rule == "SIM101"
        assert suppressed[0].reason == "measuring lint speed"

    def test_bare_suppression_is_flagged_sim100(self):
        source = ("import time\n"
                  "wall = time.time()  # simlint: disable=SIM101\n")
        findings = lint_source(_BENCH_PATH, source)
        assert _rule_ids(findings) == {META_RULE}

    def test_useless_suppression_is_flagged_sim100(self):
        source = "x = 1  # simlint: disable=SIM101 -- nothing here\n"
        findings = lint_source(_BENCH_PATH, source)
        assert _rule_ids(findings) == {META_RULE}
        assert "useless suppression" in findings[0].message

    def test_sim100_itself_cannot_be_suppressed(self):
        source = ("import time\n"
                  "wall = time.time()  # simlint: disable=SIM101, SIM100\n")
        findings = lint_source(_BENCH_PATH, source)
        assert META_RULE in _rule_ids(findings)

    def test_multi_rule_suppression_covers_both(self):
        source = ("import time, random\n"
                  "x = time.time() + random.random()  "
                  "# simlint: disable=SIM101, SIM102 -- fixture\n")
        findings = lint_source(_BENCH_PATH, source)
        assert _rule_ids(findings) == set()
        assert {f.rule for f in findings if f.suppressed} == \
            {"SIM101", "SIM102"}

    def test_directive_in_docstring_is_not_a_suppression(self):
        source = ('"""Example: # simlint: disable=SIM101 -- docs only."""\n'
                  "import time\n"
                  "wall = time.time()\n")
        assert parse_suppressions(source) == {}
        assert _rule_ids(lint_source(_BENCH_PATH, source)) == {"SIM101"}

    def test_unparsable_file_reports_meta_finding(self):
        findings = lint_source("broken.py", "def oops(:\n")
        assert [f.rule for f in findings] == [META_RULE]
        assert "does not parse" in findings[0].message


# -- the CLI ------------------------------------------------------------------

def _run_cli(*args):
    src_dir = Path(repro.__file__).parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + env.get("PYTHONPATH", "").split(os.pathsep))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env, timeout=120)


class TestCli:
    def test_lint_bad_fixture_exits_nonzero(self):
        proc = _run_cli("lint", str(FIXTURES / "sim101_bad.py"))
        assert proc.returncode == 1
        assert "SIM101" in proc.stdout

    def test_lint_good_fixture_exits_zero(self):
        proc = _run_cli("lint", str(FIXTURES / "sim101_good.py"))
        assert proc.returncode == 0
        assert "clean" in proc.stderr

    def test_lint_json_output_parses(self):
        proc = _run_cli("lint", "--json", str(FIXTURES / "sim107_bad.py"))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["schema"] == "repro.analysis/1"
        assert any(f["rule"] == "SIM107" for f in doc["findings"])
        assert doc["summary"]["exit_code"] == 1

    def test_rules_subcommand_lists_catalog(self):
        proc = _run_cli("rules")
        assert proc.returncode == 0
        for rule_id in FIXTURE_RULES + ("SIM108",) + PROJECT_FIXTURE_RULES:
            assert rule_id in proc.stdout


# -- lint_paths over the fixture tree -----------------------------------------

def test_lint_paths_walks_directories():
    result = lint_paths([str(FIXTURES)])
    rules_hit = {f.rule for f in result.unsuppressed}
    assert set(FIXTURE_RULES) <= rules_hit
    assert result.exit_code() == 1

"""Pinned performance harness (see docs/PERFORMANCE.md).

Two entry points over the scenarios in :mod:`repro.bench.scenarios`:

* ``python -m benchmarks.perf`` — record a ``BENCH_<date>.json``
  trajectory point (optionally comparing against a prior file);
* ``pytest benchmarks/perf --benchmark-only`` — the pytest-benchmark
  view of the same scenarios at smoke sizes (used by the CI smoke job).
"""

"""Figure 10: block-size sweep validation."""

from repro.experiments import fig10_blocksize as experiment

from benchmarks.conftest import run_experiment


def test_fig10_blocksize(benchmark):
    result = run_experiment(benchmark, experiment)
    for device, per_pattern in result["devices"].items():
        # bandwidth must grow with block size for sequential reads
        curve = per_pattern["seqread"]
        sizes = sorted(curve)
        assert curve[sizes[-1]]["bandwidth_mbps"] > \
            curve[sizes[0]]["bandwidth_mbps"], device
    # paper: mean error stays in a reasonable range (≈6-14%); we allow a
    # wider but still bounded band for the reproduction
    for device, summary in result["error_summary"].items():
        assert summary["mean_error"] < 0.45, (
            f"{device}: mean error {summary['mean_error']:.2f}")

"""SIM201 fixture: every unit meets its own kind."""

from repro.common.units import US, transfer_ns


def total_latency_ns(lat_ns, nbytes, bandwidth):
    return lat_ns + transfer_ns(nbytes, bandwidth)


def queue_depth_check(depth_pages, span_pages):
    return depth_pages < span_pages


def scaled_wait_ns(wait_us, pad_ns):
    return wait_us * US + pad_ns

"""Latency and bandwidth measurement recorders."""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.common.units import MB, SEC


class LatencyRecorder:
    """Collects per-request latencies (ns) and summarizes them."""

    def __init__(self) -> None:
        self._samples: List[int] = []

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError("negative latency")
        self._samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def mean_us(self) -> float:
        return self.mean() / 1000.0

    def percentile(self, p: float) -> int:
        if not self._samples:
            return 0
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._samples)
        rank = (p / 100.0) * (len(ordered) - 1)
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            return ordered[lower]
        frac = rank - lower
        return round(ordered[lower] * (1 - frac) + ordered[upper] * frac)

    def max(self) -> int:
        return max(self._samples) if self._samples else 0

    def min(self) -> int:
        return min(self._samples) if self._samples else 0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean_us(),
            "p50_us": self.percentile(50) / 1000.0,
            "p99_us": self.percentile(99) / 1000.0,
            "max_us": self.max() / 1000.0,
        }


class BandwidthRecorder:
    """Counts bytes moved; reports MB/s over a window.

    ``warmup_ns`` excludes the initial transient (cache fill, queue ramp)
    from steady-state bandwidth, mirroring how FIO reports after ramp time.
    """

    def __init__(self, warmup_ns: int = 0) -> None:
        self.warmup_ns = warmup_ns
        self._bytes = 0
        self._warm_bytes = 0
        self._first_ns: Optional[int] = None
        self._last_ns: Optional[int] = None

    def record(self, nbytes: int, now_ns: int) -> None:
        if self._first_ns is None:
            self._first_ns = now_ns
        self._bytes += nbytes
        if now_ns - self._first_ns >= self.warmup_ns:
            if self._warm_bytes == 0:
                self._warm_start = now_ns
            self._warm_bytes += nbytes
        self._last_ns = now_ns

    @property
    def total_bytes(self) -> int:
        return self._bytes

    def mbps(self) -> float:
        """Steady-state bandwidth in MB/s."""
        if self._warm_bytes and self._last_ns is not None:
            span = self._last_ns - self._warm_start
            if span > 0:
                return (self._warm_bytes / MB) / (span / SEC)
        if self._first_ns is None or self._last_ns is None:
            return 0.0
        span = self._last_ns - self._first_ns
        return (self._bytes / MB) / (span / SEC) if span > 0 else 0.0

"""Figure 11: over-provisioning sweep under steady-state random writes."""

from repro.experiments import fig11_overprovision as experiment

from benchmarks.conftest import run_experiment


def test_fig11_overprovision(benchmark):
    result = run_experiment(benchmark, experiment)
    normalized = result["normalized"]
    sizes = result["sizes"]
    kb = sizes[0] // 1024
    # monotone: less over-provisioning -> lower normalized bandwidth
    assert normalized[0.20][kb] >= normalized[0.10][kb] >= normalized[0.05][kb]
    # the paper reports significant drops at 5% OP
    assert normalized[0.05][kb] < 0.9
    # GC must actually have run in the stressed configurations
    assert result["bandwidth"][0.05][kb]["gc_runs"] > 0
    # write amplification grows as OP shrinks
    assert (result["bandwidth"][0.05][kb]["write_amplification"]
            >= result["bandwidth"][0.20][kb]["write_amplification"])

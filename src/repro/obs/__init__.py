"""``repro.obs`` — end-to-end observability for the simulated stack.

Two substrates, documented in detail in ``docs/OBSERVABILITY.md``:

* **Tracing** (:mod:`repro.obs.tracer`): nested spans in *simulated*
  time, keyed by I/O request id, opened and closed at every layer of
  the stack (``io.submit`` -> ``os.blocklayer`` -> ``nvme.sq`` /
  ``ahci`` / ``ufs.utp`` / ``ocssd.pblk`` -> ``hil`` -> ``icl`` ->
  ``ftl`` -> ``flash``), exportable as a Chrome ``trace_event`` JSON.
* **Metrics** (:mod:`repro.obs.metrics`): one hierarchical namespace
  (``ssd.channel0.util``) unifying the previously ad-hoc counters,
  ``TimeAverage`` and ``UtilizationTracker`` instruments, exportable
  as CSV.

Tracing is off by default and zero-cost when off: simulators carry the
shared :data:`NULL_TRACER` until :func:`repro.obs.runtime.enable_tracing`
is called (e.g. by ``python -m repro.experiments <fig> --trace out.json``).
"""

from repro.obs.export import (
    chrome_trace,
    format_breakdown,
    latency_breakdown,
    write_chrome_trace,
    write_metrics_csv,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, ScopedRegistry
from repro.obs.runtime import (
    collect_metrics,
    disable_tracing,
    enable_tracing,
    label_latest_tracer,
    metric_snapshots,
    tracer_for,
    tracers,
    tracing_enabled,
)
from repro.obs.tracer import (
    NULL_SPAN_CONTEXT,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    merge_spans,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "ScopedRegistry",
    "NullTracer",
    "NULL_SPAN_CONTEXT",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "merge_spans",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_csv",
    "latency_breakdown",
    "format_breakdown",
    "collect_metrics",
    "disable_tracing",
    "enable_tracing",
    "label_latest_tracer",
    "metric_snapshots",
    "tracer_for",
    "tracers",
    "tracing_enabled",
]

"""SIM104 fixture: discarded wait primitives and a yield-less process."""


def worker(sim, gate, mailbox):
    sim.timeout(5)
    gate.acquire()
    mailbox.get()
    yield sim.timeout(1)


def silent_worker(sim):
    sim.counter = 1


def boot(sim):
    sim.process(silent_worker(sim))

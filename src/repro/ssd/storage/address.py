"""Physical flash addressing.

A physical page is identified either structurally (channel, way, plane,
block, page) or by a flat physical page number (PPN).  The *parallel
unit* — one plane of one die — is the grain of program/read parallelism
and the grain at which the FTL keeps write pointers.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.ssd.config import FlashGeometry


class PPA(NamedTuple):
    """Structured physical page address."""

    channel: int
    way: int          # package*dies_per_package + die within the channel
    plane: int
    block: int
    page: int


class AddressMapper:
    """Converts between PPNs, PPAs and parallel-unit indices."""

    def __init__(self, geometry: FlashGeometry) -> None:
        self.geometry = geometry
        self._pages_per_unit = geometry.pages_per_plane
        self._units = geometry.parallel_units

    @property
    def total_units(self) -> int:
        return self._units

    @property
    def pages_per_unit(self) -> int:
        return self._pages_per_unit

    def unit_index(self, channel: int, way: int, plane: int) -> int:
        geom = self.geometry
        if not (0 <= channel < geom.channels):
            raise ValueError(f"channel {channel} out of range")
        if not (0 <= way < geom.ways_per_channel):
            raise ValueError(f"way {way} out of range")
        if not (0 <= plane < geom.planes_per_die):
            raise ValueError(f"plane {plane} out of range")
        return (channel * geom.ways_per_channel + way) * geom.planes_per_die + plane

    def unit_to_cwp(self, unit: int):
        geom = self.geometry
        plane = unit % geom.planes_per_die
        die = unit // geom.planes_per_die
        way = die % geom.ways_per_channel
        channel = die // geom.ways_per_channel
        return channel, way, plane

    def die_of_unit(self, unit: int) -> int:
        return unit // self.geometry.planes_per_die

    def channel_of_unit(self, unit: int) -> int:
        return unit // (self.geometry.planes_per_die * self.geometry.ways_per_channel)

    def ppn(self, ppa: PPA) -> int:
        geom = self.geometry
        unit = self.unit_index(ppa.channel, ppa.way, ppa.plane)
        if not (0 <= ppa.block < geom.blocks_per_plane):
            raise ValueError(f"block {ppa.block} out of range")
        if not (0 <= ppa.page < geom.pages_per_block):
            raise ValueError(f"page {ppa.page} out of range")
        return (unit * self._pages_per_unit
                + ppa.block * geom.pages_per_block + ppa.page)

    def ppn_from_unit(self, unit: int, block: int, page: int) -> int:
        geom = self.geometry
        return unit * self._pages_per_unit + block * geom.pages_per_block + page

    def ppa(self, ppn: int) -> PPA:
        geom = self.geometry
        if not (0 <= ppn < geom.total_physical_pages):
            raise ValueError(f"ppn {ppn} out of range")
        unit, offset = divmod(ppn, self._pages_per_unit)
        block, page = divmod(offset, geom.pages_per_block)
        channel, way, plane = self.unit_to_cwp(unit)
        return PPA(channel, way, plane, block, page)

    def unit_of_ppn(self, ppn: int) -> int:
        return ppn // self._pages_per_unit

    def block_of_ppn(self, ppn: int) -> int:
        return (ppn % self._pages_per_unit) // self.geometry.pages_per_block

    def page_of_ppn(self, ppn: int) -> int:
        return ppn % self.geometry.pages_per_block

"""Exporters for traces and metrics.

Three output shapes:

* :func:`write_chrome_trace` — Chrome ``trace_event`` JSON, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Each
  simulator becomes a *process* row and each request id a *thread* row,
  so one horizontal lane shows a request's full hostos -> interface ->
  firmware -> flash lifetime.
* :func:`latency_breakdown` / :func:`format_breakdown` — per-span-kind
  count and p50/p95/p99 table, the "where did the time go" summary.
* metrics CSV via :meth:`repro.obs.metrics.MetricsRegistry.to_csv` and
  :func:`write_metrics_csv` for merged multi-system snapshots.

Simulated time is integer nanoseconds; the Chrome format counts in
microseconds, so timestamps are exported as fractional µs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.stats import percentile_sorted
from repro.obs.histogram import LogHistogram
from repro.obs.tracer import Span, Tracer


def chrome_trace_events(spans: Iterable[Span], pid: int = 0) -> List[dict]:
    """Convert spans to Chrome ``trace_event`` "complete" (``X``) events."""
    events = []
    for span in spans:
        end = span.t_end if span.t_end is not None else span.t_start
        event = {
            "name": span.kind,
            "cat": span.kind.split(".", 1)[0],
            "ph": "X",
            "ts": span.t_start / 1000.0,
            "dur": (end - span.t_start) / 1000.0,
            "pid": pid,
            "tid": span.track,
        }
        if span.args:
            event["args"] = {k: str(v) for k, v in span.args.items()}
        events.append(event)
    return events


def chrome_trace(tracers: Sequence[Tracer]) -> dict:
    """Build the top-level Chrome trace object for several tracers.

    Each tracer (one per simulated system) gets its own ``pid`` plus a
    metadata record naming it, so multi-system experiment sweeps stay
    navigable in the viewer.
    """
    events: List[dict] = []
    for pid, tracer in enumerate(tracers):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": getattr(tracer, "label", f"system{pid}")},
        })
        events.extend(chrome_trace_events(tracer.spans, pid=pid))
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(path: str, tracers: Sequence[Tracer]) -> int:
    """Write a Chrome trace JSON file; returns the number of span events."""
    trace = chrome_trace(tracers)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return sum(1 for ev in trace["traceEvents"] if ev["ph"] == "X")


def latency_breakdown(spans: Iterable[Span]) -> Dict[str, Dict[str, float]]:
    """Per-span-kind latency summary (durations in µs).

    Returns ``{kind: {count, mean_us, p50_us, p95_us, p99_us, max_us}}``
    over every *closed* span, sorted by kind.  Each kind's durations are
    sorted exactly once; every percentile is read off that one ordered
    list through the shared :func:`~repro.common.stats.percentile_sorted`
    helper.
    """
    by_kind: Dict[str, List[int]] = {}
    for span in spans:
        if span.t_end is not None and span.kind != "null":
            by_kind.setdefault(span.kind, []).append(span.duration)
    out: Dict[str, Dict[str, float]] = {}
    for kind in sorted(by_kind):
        durations = sorted(by_kind[kind])
        out[kind] = {
            "count": len(durations),
            "mean_us": sum(durations) / len(durations) / 1000.0,
            "p50_us": percentile_sorted(durations, 50) / 1000.0,
            "p95_us": percentile_sorted(durations, 95) / 1000.0,
            "p99_us": percentile_sorted(durations, 99) / 1000.0,
            "max_us": durations[-1] / 1000.0,
        }
    return out


def span_histograms(spans: Iterable[Span],
                    subbuckets: int = 16) -> Dict[str, LogHistogram]:
    """Per-span-kind streaming histograms over closed-span durations.

    The report generator renders these as per-layer latency histograms;
    unlike :func:`latency_breakdown` the result is mergeable and keeps
    no raw samples.
    """
    by_kind: Dict[str, LogHistogram] = {}
    for span in spans:
        if span.t_end is not None and span.kind != "null":
            hist = by_kind.get(span.kind)
            if hist is None:
                hist = by_kind[span.kind] = LogHistogram(subbuckets)
            hist.record(span.duration)
    return by_kind


def format_breakdown(breakdown: Dict[str, Dict[str, float]]) -> str:
    """Render :func:`latency_breakdown` as an aligned text table."""
    headers = ["span", "count", "mean_us", "p50_us", "p95_us", "p99_us",
               "max_us"]
    rows = [[kind, f"{s['count']:.0f}", f"{s['mean_us']:.1f}",
             f"{s['p50_us']:.1f}", f"{s['p95_us']:.1f}",
             f"{s['p99_us']:.1f}", f"{s['max_us']:.1f}"]
            for kind, s in breakdown.items()]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def write_metrics_csv(path: str,
                      snapshots: Sequence[Tuple[str, Dict[str, float]]]) -> int:
    """Write labelled metric snapshots as ``system,metric,value`` CSV.

    ``snapshots`` is a sequence of ``(label, snapshot_dict)`` pairs, one
    per simulated system; returns the number of rows written.
    """
    rows = 0
    with open(path, "w") as fh:
        fh.write("system,metric,value\n")
        for label, snapshot in snapshots:
            for name in sorted(snapshot):
                fh.write(f"{label},{name},{snapshot[name]:.10g}\n")
                rows += 1
    return rows

"""Embedded ARMv8 cores executing the flash firmware.

Each firmware component is pinned to a core (HIL -> core 0, ICL -> core 1,
FTL/FIL -> core 2, wrapping if fewer cores are configured).  Executing an
:class:`~repro.common.instructions.InstructionMix` occupies the core for
``cycles / frequency`` and feeds the instruction counters (Fig 13c) and the
McPAT-style power model (Fig 13b).
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.instructions import DEFAULT_CPI, InstructionMix, InstructionStats
from repro.common.units import SEC, cycles_to_ns
from repro.sim import Resource
from repro.ssd.config import CoreConfig

FIRMWARE_ROLES = ("hil", "icl", "ftl", "fil")


class EmbeddedCore:
    """One in-order ARMv8 core with per-class CPI timing."""

    def __init__(self, sim, index: int, config: CoreConfig) -> None:
        self.sim = sim
        self.index = index
        self.config = config
        self.frequency = config.frequency
        self.cpi: Dict[str, float] = dict(DEFAULT_CPI)
        self.cpi.update(config.cpi)
        self.resource = Resource(sim, 1, name=f"emb-core{index}")
        self.stats = InstructionStats()
        self._dynamic_energy = 0.0
        self._origin = sim.now
        # exec_ns memo: firmware reuses a small set of frozen mixes on
        # every I/O; cpi/frequency are fixed after construction.
        self._exec_ns_cache: Dict[InstructionMix, int] = {}

    def execute(self, mix: InstructionMix):
        """Process generator: run the mix to completion on this core."""
        yield self.resource.acquire()
        try:
            yield self.sim.timeout(self.exec_ns(mix))
        finally:
            self.resource.release()
        self.stats.record(mix)
        self._dynamic_energy += mix.total * self.config.energy_per_instruction

    def exec_ns(self, mix: InstructionMix) -> int:
        try:
            return self._exec_ns_cache[mix]
        except KeyError:
            ns = cycles_to_ns(mix.cycles(self.cpi), self.frequency)
            self._exec_ns_cache[mix] = ns
            return ns

    def utilization(self) -> float:
        return self.resource.utilization()

    def cpi_achieved(self) -> float:
        """Observed cycles-per-instruction (busy cycles / instructions)."""
        if self.stats.total == 0:
            return 0.0
        busy_cycles = self.resource.busy_time() * self.frequency / SEC
        return busy_cycles / self.stats.total

    def energy(self) -> float:
        elapsed_s = (self.sim.now - self._origin) / SEC
        return self._dynamic_energy + self.config.leakage_per_core * elapsed_s

    def average_power(self) -> float:
        elapsed_s = (self.sim.now - self._origin) / SEC
        return self.energy() / elapsed_s if elapsed_s > 0 else 0.0


class CpuComplex:
    """The SSD's multi-core firmware processor."""

    def __init__(self, sim, config: CoreConfig) -> None:
        if config.n_cores < 1:
            raise ValueError("need at least one embedded core")
        self.sim = sim
        self.config = config
        self.cores: List[EmbeddedCore] = [
            EmbeddedCore(sim, i, config) for i in range(config.n_cores)]
        self._role_map = {
            role: self.cores[i % config.n_cores]
            for i, role in enumerate(FIRMWARE_ROLES)}
        # FIL shares the FTL core, matching SimpleSSD's 3-core layout.
        if config.n_cores >= 3:
            self._role_map["fil"] = self.cores[2]

    def core_for(self, role: str) -> EmbeddedCore:
        try:
            return self._role_map[role]
        except KeyError:
            raise ValueError(f"unknown firmware role {role!r}") from None

    def execute(self, role: str, mix: InstructionMix):
        return self.core_for(role).execute(mix)

    def instruction_stats(self) -> InstructionStats:
        merged = InstructionStats()
        for core in self.cores:
            merged = merged.merged(core.stats)
        return merged

    def total_instructions(self) -> int:
        return self.instruction_stats().total

    def average_power(self) -> float:
        return sum(core.average_power() for core in self.cores)

    def total_energy(self) -> float:
        return sum(core.energy() for core in self.cores)

    def utilizations(self) -> List[float]:
        return [core.utilization() for core in self.cores]

"""Direct units for the analysis support modules: findings /
suppression parsing, ASCII table rendering, and the Table IV feature
matrix (docs/ANALYSIS.md).
"""

import textwrap

from repro.analysis.featurematrix import (
    FEATURES,
    SIMULATOR_FEATURES,
    amber_feature_count,
    feature_headers,
    feature_table,
)
from repro.analysis.findings import (
    Finding,
    FindingSet,
    Suppression,
    parse_suppressions,
)
from repro.analysis.tables import format_series, format_table


# -- parse_suppressions -------------------------------------------------------

class TestParseSuppressions:
    def test_single_rule_with_reason(self):
        got = parse_suppressions(
            "x = 1  # simlint: disable=SIM101 -- timing the linter\n")
        assert got == {1: Suppression(1, ("SIM101",),
                                      "timing the linter")}

    def test_multi_rule_disable_covers_each_listed_rule(self):
        got = parse_suppressions(
            "x = 1  # simlint: disable=SIM101, sim110 -- one reason\n")
        sup = got[1]
        assert sup.rules == ("SIM101", "SIM110")  # normalized upper
        assert sup.covers("SIM101") and sup.covers("SIM110")
        assert not sup.covers("SIM102")

    def test_all_sentinel_covers_everything(self):
        got = parse_suppressions(
            "x = 1  # simlint: disable=ALL -- generated file\n")
        assert got[1].covers("SIM999")

    def test_missing_reason_yields_empty_reason(self):
        # the registry turns this into SIM100; the parser just records it
        got = parse_suppressions("x = 1  # simlint: disable=SIM101\n")
        assert got[1].reason == ""

    def test_docstring_directive_is_not_a_suppression(self):
        source = textwrap.dedent('''
            def f():
                """Write # simlint: disable=SIM101 -- like this."""
                return 1
        ''')
        assert parse_suppressions(source) == {}

    def test_directive_adjacent_to_docstring_line_still_counts(self):
        source = ('"""Module doc."""  '
                  "# simlint: disable=SIM103 -- module-level directive\n")
        got = parse_suppressions(source)
        assert got[1].rules == ("SIM103",)

    def test_unrelated_comments_are_ignored(self):
        assert parse_suppressions("x = 1  # simlint is great\n") == {}
        assert parse_suppressions("x = 1  # plain comment\n") == {}

    def test_non_tokenizing_source_falls_back_to_line_scan(self):
        source = ("def broken(:\n"
                  "    x = 1  # simlint: disable=SIM105 -- half-edited\n")
        got = parse_suppressions(source)
        assert got[2].rules == ("SIM105",)

    def test_lines_are_one_indexed_and_per_line(self):
        source = ("a = 1  # simlint: disable=SIM101 -- first\n"
                  "b = 2\n"
                  "c = 3  # simlint: disable=SIM102 -- third\n")
        got = parse_suppressions(source)
        assert sorted(got) == [1, 3]
        assert got[3].reason == "third"


# -- Finding / FindingSet -----------------------------------------------------

class TestFindingSet:
    def test_format_includes_location_rule_and_witness(self):
        finding = Finding(rule="SIM210", path="a.py", line=4, col=2,
                          message="wall-clock reaches state",
                          witness=("read at a.py:1", "stored at a.py:4"))
        text = finding.format()
        assert text.startswith("a.py:4:2: SIM210 ")
        assert "\n    witness: read at a.py:1" in text
        assert "\n    witness: stored at a.py:4" in text

    def test_suppressed_format_shows_reason(self):
        finding = Finding(rule="SIM101", path="a.py", line=1, col=0,
                          message="m", suppressed=True, reason="bench")
        assert "[suppressed: bench]" in finding.format()

    def test_summary_counts_and_exit_code(self):
        fs = FindingSet()
        fs.add(Finding("SIM101", "a.py", 1, 0, "m"))
        fs.extend([Finding("SIM101", "a.py", 2, 0, "m"),
                   Finding("SIM106", "b.py", 3, 0, "m",
                           suppressed=True, reason="r")])
        assert fs.by_rule() == {"SIM101": 2}
        assert len(fs.suppressed) == 1
        assert fs.exit_code() == 1
        assert FindingSet().exit_code() == 0


# -- tables -------------------------------------------------------------------

class TestTables:
    def test_format_table_aligns_columns(self):
        text = format_table(["name", "ns"],
                            [["read", 1234.0], ["gc", 7.5]],
                            title="latency")
        lines = text.splitlines()
        assert lines[0] == "latency"
        assert lines[1].split(" | ")[0].strip() == "name"
        assert set(lines[2]) <= {"-", "+"}
        # every row renders to the same width
        assert len({len(line) for line in lines[1:]}) == 1
        assert "1234" in text and "7.5" in text

    def test_float_formatting_scales_precision(self):
        text = format_table(["v"], [[0.0], [0.1234], [1.26], [512.7]])
        assert "0.123" in text     # small: 3 decimals
        assert "1.3" in text       # mid: 1 decimal
        assert "513" in text       # large: integral
        assert "\n0 " in text or text.splitlines()[2].strip() == "0"

    def test_format_series_merges_x_axis(self):
        text = format_series(
            {"amber": {1: 10.0, 4: 40.0}, "mqsim": {1: 11.0, 2: 22.0}},
            x_label="qd")
        lines = text.splitlines()
        assert lines[0].split(" | ")[0].strip() == "qd"
        xs = [line.split(" | ")[0].strip() for line in lines[2:]]
        assert xs == ["1", "2", "4"]
        # missing points render empty, not crash
        assert [c.strip() for c in lines[3].split(" | ")] == \
            ["2", "", "22.0"]


# -- feature matrix -----------------------------------------------------------

class TestFeatureMatrix:
    def test_amber_implements_every_feature(self):
        assert amber_feature_count() == len(FEATURES)

    def test_known_sims_claim_only_known_features(self):
        keys = {key for key, _label, _mod in FEATURES}
        for sim, claimed in SIMULATOR_FEATURES.items():
            assert claimed <= keys, sim

    def test_table_shape_matches_headers(self):
        headers = feature_headers()
        rows = feature_table()
        assert len(rows) == len(FEATURES)
        for row in rows:
            assert len(row) == len(headers)
        # Amber's column (after the Feature label) is all "yes"
        amber_col = headers.index("Amber")
        assert all(row[amber_col] == "yes" for row in rows)
        # every Amber cell names the implementing repro module
        assert all(row[-1].startswith("repro.") for row in rows)

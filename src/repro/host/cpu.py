"""Host CPU models.

gem5 offers functional (AtomicSimple) and timing (TimingSimple, Minor,
HPI, DerivO3) CPUs; Amber must work with all of them because the DMA and
storage-stack emulation interacts differently with each (Section III-B).
Here:

* ``atomic`` — functional: software executes in zero simulated time, and
  the DMA engine aggregates each request's data movement into one task;
* ``timing`` — in-order timing: per-class CPI near 1.3;
* ``minor`` / ``hpi`` — tuned in-order pipelines;
* ``o3`` — out-of-order: effective CPI scaled down.

Kernel and user execution are tracked separately per core so kernel CPU
utilization (Fig 15b) can be reported.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.common.instructions import DEFAULT_CPI, InstructionMix, InstructionStats
from repro.common.units import SEC, cycles_to_ns
from repro.sim import Resource, UtilizationTracker


class CpuModel(enum.Enum):
    ATOMIC = "atomic"
    TIMING = "timing"
    MINOR = "minor"
    HPI = "hpi"
    O3 = "o3"

    @property
    def is_functional(self) -> bool:
        return self is CpuModel.ATOMIC


# Effective scaling of the baseline CPI table per CPU model.
_MODEL_CPI_FACTOR = {
    CpuModel.ATOMIC: 0.0,
    CpuModel.TIMING: 1.3,
    CpuModel.MINOR: 1.1,
    CpuModel.HPI: 0.95,
    CpuModel.O3: 0.62,
}


class _Core:
    __slots__ = ("resource", "kernel_util", "user_util", "stats")

    def __init__(self, sim, index: int) -> None:
        self.resource = Resource(sim, 1, name=f"host-core{index}")
        self.kernel_util = UtilizationTracker(sim)
        self.user_util = UtilizationTracker(sim)
        self.stats = InstructionStats()


class HostCpu:
    """A cluster of host cores with a selectable CPU model."""

    def __init__(self, sim, n_cores: int, frequency: int,
                 model: CpuModel = CpuModel.O3,
                 cpi_scale: float = 1.0) -> None:
        if n_cores < 1:
            raise ValueError("need at least one host core")
        self.sim = sim
        self.n_cores = n_cores
        self.frequency = frequency
        self.model = model
        self._functional = model.is_functional
        self.cpi_scale = cpi_scale
        self._cores: List[_Core] = [_Core(sim, i) for i in range(n_cores)]
        # exec_ns memo: InstructionMix is frozen/hashable and workloads
        # reuse a handful of mixes millions of times.
        self._exec_ns_cache: dict = {}

    def set_frequency(self, frequency: int) -> None:
        self.frequency = frequency
        self._exec_ns_cache.clear()

    def exec_ns(self, mix: InstructionMix) -> int:
        try:
            return self._exec_ns_cache[mix]
        except KeyError:
            pass
        factor = _MODEL_CPI_FACTOR[self.model] * self.cpi_scale
        if factor == 0.0:
            ns = 0
        else:
            ns = cycles_to_ns(mix.cycles(DEFAULT_CPI) * factor, self.frequency)
        self._exec_ns_cache[mix] = ns
        return ns

    def execute(self, mix: InstructionMix, core: Optional[int] = None,
                kernel: bool = True):
        """Process generator: run ``mix`` on a core.

        With the atomic (functional) model this costs no simulated time —
        exactly gem5's AtomicSimpleCPU behaviour for the storage stack.
        """
        if self._functional:
            return
            yield  # pragma: no cover
        chosen = self._cores[self._pick(core)]
        tracker = chosen.kernel_util if kernel else chosen.user_util
        yield chosen.resource.acquire()
        tracker.begin()
        try:
            yield self.sim.timeout(self.exec_ns(mix))
        finally:
            tracker.end()
            chosen.resource.release()
        chosen.stats.record(mix)

    def _pick(self, core: Optional[int]) -> int:
        if core is not None:
            return core % self.n_cores
        # least-loaded: shortest grant queue (manual loop — this runs per
        # software stage per I/O and min(range, key=lambda) is 3x slower)
        best = 0
        best_load = None
        for i, c in enumerate(self._cores):
            res = c.resource
            load = res.in_use + res.queued
            if best_load is None or load < best_load:
                best, best_load = i, load
                if load == 0:
                    break
        return best

    # -- reporting -----------------------------------------------------------

    def kernel_utilization(self) -> float:
        """Mean kernel-mode utilization across cores (Fig 15b)."""
        return sum(c.kernel_util.utilization() for c in self._cores) / self.n_cores

    def total_utilization(self) -> float:
        return sum(c.kernel_util.utilization() + c.user_util.utilization()
                   for c in self._cores) / self.n_cores

    def mark_utilization(self) -> None:
        for core in self._cores:
            core.kernel_util.mark()

    def kernel_utilization_timeline(self):
        """Averaged per-interval kernel utilization across cores."""
        per_core = [core.kernel_util.interval_utilization()
                    for core in self._cores]
        if not per_core[0]:
            return []
        return [(per_core[0][i][0],
                 sum(track[i][1] for track in per_core) / self.n_cores)
                for i in range(len(per_core[0]))]

    def instruction_total(self) -> int:
        return sum(core.stats.total for core in self._cores)

    def register_metrics(self, registry, prefix: str = "host.cpu") -> None:
        """Expose per-core utilization instruments under ``prefix``."""
        scope = registry.scoped(prefix)
        for i, core in enumerate(self._cores):
            scope.register(f"core{i}.kernel.util", core.kernel_util.utilization)
            scope.register(f"core{i}.user.util", core.user_util.utilization)
        scope.register("kernel.util", self.kernel_utilization)
        scope.register("instructions", lambda: float(self.instruction_total()))

"""Flash Interface Layer: schedules flash transactions onto the backend.

The FIL charges per-transaction firmware cost on its core, groups
same-die programs into multi-plane operations when page offsets align,
and spreads job issue according to the configured parallelism order.

Every transaction opens a ``flash.*`` span on the originating request's
trace track (``track=0`` marks background work such as GC migration),
so a trace shows exactly which flash operations a host I/O paid for.
``ctx`` optionally overrides the blame label the backend's owner
registries record for causal forensics (``gc:<run>`` for GC migration
traffic, ``flush`` for cache write-back); it is dropped untouched when
tracing is off.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.common.instructions import InstructionMix
from repro.sim import AllOf
from repro.ssd.computation.cores import CpuComplex
from repro.ssd.config import SSDConfig
from repro.ssd.storage.backend import FlashBackend


class FlashInterfaceLayer:
    def __init__(self, sim, config: SSDConfig, cores: CpuComplex,
                 backend: FlashBackend) -> None:
        self.sim = sim
        self.config = config
        self.cores = cores
        self.backend = backend
        self._issue_mix = InstructionMix.typical(config.costs.fil_issue)
        self.transactions = 0

    def _charge(self):
        self.transactions += 1
        return self.cores.execute("fil", self._issue_mix)

    def read(self, ppn: int, nbytes: int = 0, track: int = 0,
             ctx: Optional[str] = None):
        """Process generator: one timed page read."""
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span("flash.read", track, ppn=ppn):
                yield from self._charge()
                yield from self.backend.read_page(ppn, nbytes, track=track,
                                                  ctx=ctx)
        else:
            yield from self._charge()
            yield from self.backend.read_page(ppn, nbytes)

    def program(self, ppn: int, track: int = 0, ctx: Optional[str] = None):
        """Process generator: one timed page program."""
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span("flash.program", track, ppn=ppn):
                yield from self._charge()
                yield from self.backend.program_page(ppn, track=track,
                                                     ctx=ctx)
        else:
            yield from self._charge()
            yield from self.backend.program_page(ppn)

    def erase(self, unit: int, block: int, track: int = 0,
              ctx: Optional[str] = None):
        """Process generator: one timed block erase; returns success."""
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span("flash.erase", track, unit=unit, block=block):
                yield from self._charge()
                ok = yield from self.backend.erase_block(unit, block,
                                                         track=track, ctx=ctx)
        else:
            yield from self._charge()
            ok = yield from self.backend.erase_block(unit, block)
        return ok

    def read_group(self, ppns: Sequence[int], nbytes_each: int = 0,
                   track: int = 0, ctx: Optional[str] = None):
        """Read several pages concurrently (they stripe across dies)."""
        if not ppns:
            return
        events = [self.sim.process(self.read(ppn, nbytes_each, track=track,
                                             ctx=ctx))
                  for ppn in ppns]
        yield AllOf(self.sim, events)

    def program_group(self, ppns: Sequence[int], track: int = 0,
                      ctx: Optional[str] = None):
        """Program several pages concurrently with multi-plane merging.

        PPNs on the same die with identical page offsets fuse into one
        multi-plane program; the rest issue as separate transactions.
        """
        if not ppns:
            return
        mapper = self.backend.mapper
        by_die: Dict[int, List[int]] = defaultdict(list)
        for ppn in ppns:
            by_die[mapper.die_of_unit(mapper.unit_of_ppn(ppn))].append(ppn)

        events = []
        for die_ppns in by_die.values():
            units = {mapper.unit_of_ppn(p) for p in die_ppns}
            if len(die_ppns) > 1 and len(units) == len(die_ppns):
                # one page per plane: a single multi-plane program pulse
                events.append(self.sim.process(
                    self._multiplane(die_ppns, track, ctx)))
            else:
                events.extend(self.sim.process(self.program(p, track=track,
                                                            ctx=ctx))
                              for p in die_ppns)
        yield AllOf(self.sim, events)

    def _multiplane(self, ppns: List[int], track: int = 0,
                    ctx: Optional[str] = None):
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span("flash.program", track, planes=len(ppns)):
                yield from self._charge()
                yield from self.backend.program_multiplane(ppns, track=track,
                                                           ctx=ctx)
        else:
            yield from self._charge()
            yield from self.backend.program_multiplane(ppns)

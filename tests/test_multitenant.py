"""Multi-tenant machinery: namespaces, arrivals, the engine, rollups.

Covers the plumbing the noisy-neighbor suite stands on:

* namespace provisioning and per-request translation in the NVMe driver;
* the open-loop arrival processes and the Zipfian hotspot generator
  (deterministic under a seed, correctly shaped);
* the :class:`MultiTenantEngine` end-to-end on a tiny device — per-tenant
  accounting, live ``tenantN.*`` gauges, arbiter grant bookkeeping;
* seeded determinism of full runs for every arrival process;
* the exact-merge contract: per-tenant latency histograms folded with
  :meth:`LogHistogram.merge` reproduce the device-wide histogram
  bucket-for-bucket.
"""

import random

import pytest

from repro.common.recorders import LatencyRecorder
from repro.common.stats import jain_fairness
from repro.core.system import FullSystem
from repro.core.tenants import (
    MultiTenantEngine,
    MultiTenantJob,
    TenantSpec,
    tenant_sizes,
)
from repro.experiments.golden import digest
from repro.interfaces.nvme.structures import Namespace
from repro.obs.histogram import LogHistogram
from repro.workloads.synthetic import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    ZipfianHotspot,
    arrival_from_spec,
)

from tests.conftest import tiny_ssd_config


def _tiny_system(**hil_overrides):
    from dataclasses import replace
    from repro.ssd.config import HILConfig
    config = tiny_ssd_config()
    if hil_overrides:
        config = config.with_overrides(hil=HILConfig(**hil_overrides))
    return FullSystem(device=config, interface="nvme")


# -- namespaces ---------------------------------------------------------------


class TestNamespaces:

    def test_translate_offsets_into_device_space(self):
        ns = Namespace(nsid=2, start_sector=1000, n_sectors=500)
        assert ns.translate(0, 8) == 1000
        assert ns.translate(492, 8) == 1492

    def test_translate_rejects_out_of_range(self):
        ns = Namespace(nsid=1, start_sector=0, n_sectors=100)
        with pytest.raises(ValueError, match="outside namespace"):
            ns.translate(96, 8)

    def test_provision_partitions_back_to_back(self):
        system = _tiny_system()
        total = system.device_sectors
        sizes = [total // 2, total // 4]
        created = system.adapter.provision_namespaces(sizes)
        assert [ns.nsid for ns in created] == [1, 2]
        assert created[0].start_sector == 0
        assert created[1].start_sector == total // 2
        assert sorted(system.adapter.namespaces) == [1, 2]

    def test_provision_rejects_oversubscription(self):
        system = _tiny_system()
        total = system.device_sectors
        with pytest.raises(ValueError, match="sectors"):
            system.adapter.provision_namespaces([total, 8])

    def test_delete_namespace(self):
        system = _tiny_system()
        system.adapter.provision_namespaces([system.device_sectors // 2])
        system.adapter.delete_namespace(1)
        assert not system.adapter.namespaces
        with pytest.raises(ValueError, match="does not exist"):
            system.adapter.delete_namespace(1)

    def test_tenant_sizes_split_and_align(self):
        tenants = [TenantSpec(name="a", size_fraction=0.5),
                   TenantSpec(name="b"), TenantSpec(name="c")]
        sizes = tenant_sizes(1000, tenants, align_sectors=16)
        assert sizes[0] == 496                 # 500 floored to 16
        assert sizes[1] == sizes[2] == 240     # 250 floored to 16
        with pytest.raises(ValueError, match="too small"):
            tenant_sizes(64, tenants, align_sectors=64)

    def test_tenant_sizes_reject_over_allocation(self):
        tenants = [TenantSpec(size_fraction=0.7),
                   TenantSpec(size_fraction=0.7)]
        with pytest.raises(ValueError, match="exceed"):
            tenant_sizes(1000, tenants, align_sectors=1)


# -- arrival processes and hotspot addressing ---------------------------------


class TestArrivals:

    def test_registry_and_spec_dispatch(self):
        assert set(ARRIVAL_KINDS) == {"poisson", "bursty", "diurnal"}
        arrival = arrival_from_spec({"kind": "poisson", "rate_iops": 5000})
        assert isinstance(arrival, PoissonArrivals)
        with pytest.raises(ValueError, match="unknown arrival"):
            arrival_from_spec({"kind": "warp"})

    def test_poisson_gaps_are_seeded_and_positive(self):
        arrival = PoissonArrivals(rate_iops=10_000)
        gaps_a = [arrival.next_gap_ns(random.Random(7), 0)
                  for _ in range(50)]
        gaps_b = [arrival.next_gap_ns(random.Random(7), 0)
                  for _ in range(50)]
        assert gaps_a == gaps_b
        assert all(gap >= 1 for gap in gaps_a)
        rng = random.Random(7)
        mean = sum(arrival.next_gap_ns(rng, 0)
                   for _ in range(4000)) / 4000
        assert mean == pytest.approx(100_000, rel=0.1)  # 10k IOPS -> 100us

    def test_bursty_defers_arrivals_past_off_windows(self):
        arrival = BurstyArrivals(rate_iops=100_000, period_ns=1_000_000,
                                 duty_cycle=0.2)
        rng = random.Random(3)
        # from inside the OFF region, the next arrival must land in
        # (or after the start of) an ON window, never earlier
        now = 500_000                       # OFF (ON is [0, 200_000))
        for _ in range(50):
            gap = arrival.next_gap_ns(rng, now)
            landing = (now + gap) % arrival.period_ns
            assert landing <= int(arrival.period_ns * arrival.duty_cycle)

    def test_diurnal_rate_swings_between_peak_and_trough(self):
        arrival = DiurnalArrivals(peak_iops=10_000, period_ns=1_000_000_000,
                                  trough_fraction=0.1)
        rng = random.Random(11)
        # near the peak of the cycle, gaps average ~1/peak_iops
        peak_now = 500_000_000
        peak_mean = sum(arrival.next_gap_ns(rng, peak_now)
                        for _ in range(2000)) / 2000
        trough_mean = sum(arrival.next_gap_ns(rng, 0)
                          for _ in range(500)) / 500
        assert peak_mean < trough_mean / 3
        assert peak_mean == pytest.approx(100_000, rel=0.25)

    def test_zipf_is_seeded_and_skewed(self):
        zipf = ZipfianHotspot(1000, theta=0.99)
        draws_a = [zipf.item(random.Random(5)) for _ in range(20)]
        draws_b = [zipf.item(random.Random(5)) for _ in range(20)]
        assert draws_a == draws_b
        rng = random.Random(5)
        ranks = [zipf.rank(rng) for _ in range(4000)]
        top = sum(1 for r in ranks if r < 10)
        assert top > 1000, "zipf(0.99): top-1% items should dominate"
        assert all(0 <= r < 1000 for r in ranks)

    def test_zipf_scramble_spreads_hot_ranks(self):
        zipf = ZipfianHotspot(1024, theta=0.9)
        rng = random.Random(1)
        items = {zipf.item(rng) for _ in range(200)}
        # scrambling must not leave the hot set clustered at the origin
        assert max(items) > 256


# -- the engine ---------------------------------------------------------------


def _run_closed_loop(seed=99, arbitration="rr", weights=()):
    system = _tiny_system(arbitration=arbitration, qos_weights=weights)
    job = MultiTenantJob(
        tenants=(TenantSpec(name="a", rw="randread", bs=2048, iodepth=4,
                            total_ios=120),
                 TenantSpec(name="b", rw="randwrite", bs=2048, iodepth=2,
                            total_ios=60)),
        seed=seed)
    return system, system.run_multi_tenant(job)


class TestMultiTenantEngine:

    def test_requires_nvme(self):
        config = tiny_ssd_config()
        system = FullSystem(device=config, interface="sata")
        with pytest.raises(ValueError, match="NVMe"):
            MultiTenantEngine(system)

    def test_two_tenants_complete_and_account(self):
        system, result = _run_closed_loop()
        assert [t.completed for t in result.tenants] == [120, 60]
        assert result.total_ios == 180
        assert result.total_bytes == 180 * 2048
        assert result.latency.count == sum(t.latency.count
                                           for t in result.tenants)
        assert 0.0 < result.fairness <= 1.0
        assert result.arbitration == "rr"

    def test_tenant_gauges_live_in_metrics_registry(self):
        system, result = _run_closed_loop()
        for index in (0, 1):
            snap = system.metrics.snapshot(f"tenant{index}")
            assert snap[f"tenant{index}.issued"] == \
                result.tenants[index].issued
            assert snap[f"tenant{index}.completed"] == \
                result.tenants[index].completed
            assert snap[f"tenant{index}.outstanding"] == 0.0
            assert snap[f"tenant{index}.grants"] > 0

    def test_grants_attribute_to_tenant_queues(self):
        system, result = _run_closed_loop()
        # tenant i submits on qid i+1; both queues must have been granted
        assert set(result.grants) == {1, 2}
        assert result.grants[1] > 0 and result.grants[2] > 0
        hil_grants = system.ssd.hil.arbiter.grants
        assert result.grants == hil_grants

    def test_namespaces_isolate_address_spaces(self):
        system, result = _run_closed_loop()
        namespaces = system.adapter.namespaces
        assert sorted(namespaces) == [1, 2]
        spans = sorted((ns.start_sector, ns.start_sector + ns.n_sectors)
                       for ns in namespaces.values())
        assert spans[0][1] <= spans[1][0], "namespaces overlap"

    @pytest.mark.parametrize("arrival", [
        {"kind": "poisson", "rate_iops": 30_000},
        {"kind": "bursty", "rate_iops": 60_000, "period_ns": 2_000_000,
         "duty_cycle": 0.5},
        {"kind": "diurnal", "peak_iops": 60_000, "period_ns": 4_000_000},
    ])
    def test_open_loop_runs_are_seed_deterministic(self, arrival):
        def run():
            system = _tiny_system(arbitration="wfq", qos_weights=(2, 1))
            job = MultiTenantJob(
                tenants=(TenantSpec(name="open", rw="randread", bs=2048,
                                    arrival=dict(arrival), zipf_theta=0.8),
                         TenantSpec(name="bg", rw="randwrite", bs=2048,
                                    iodepth=2)),
                runtime_ns=3_000_000, seed=4321)
            result = system.run_multi_tenant(job)
            return {
                "completed": [t.completed for t in result.tenants],
                "issued": [t.issued for t in result.tenants],
                "hist": result.latency.histogram.to_dict(),
                "grants": sorted(result.grants.items()),
                "fairness": result.fairness,
            }
        first, second = run(), run()
        assert digest(first) == digest(second)
        assert first["completed"][0] > 0

    def test_different_seeds_differ(self):
        _, a = _run_closed_loop(seed=1)
        _, b = _run_closed_loop(seed=2)
        assert a.latency.histogram.to_dict() != b.latency.histogram.to_dict()


# -- rollup exactness ---------------------------------------------------------


class TestRollups:

    def test_histogram_merge_is_exact(self):
        direct = LogHistogram()
        parts = [LogHistogram() for _ in range(3)]
        rng = random.Random(13)
        for _ in range(3000):
            part = rng.randrange(3)
            value = rng.randrange(1, 10_000_000)
            parts[part].record(value)
            direct.record(value)
        merged = LogHistogram()
        for part in parts:
            merged.merge(part)
        assert merged.to_dict() == direct.to_dict()

    def test_latency_recorder_merge_delegates(self):
        a, b, direct = LatencyRecorder(), LatencyRecorder(), LatencyRecorder()
        rng = random.Random(17)
        for _ in range(500):
            value = rng.randrange(100, 1_000_000)
            (a if rng.random() < 0.5 else b).record(value)
            direct.record(value)
        a.merge(b)
        assert a.count == direct.count == 500
        assert a.histogram.to_dict() == direct.histogram.to_dict()
        for p in (50, 90, 99):
            assert a.percentile(p) == direct.percentile(p)

    def test_engine_rollup_reproduces_device_wide_histogram(self):
        _, result = _run_closed_loop()
        merged = LogHistogram()
        for tenant in result.tenants:
            merged.merge(tenant.latency.histogram)
        assert merged.to_dict() == result.latency.histogram.to_dict()

    def test_jain_fairness_bounds(self):
        assert jain_fairness([10, 10, 10]) == pytest.approx(1.0)
        assert jain_fairness([1, 0, 0]) == pytest.approx(1 / 3)
        assert jain_fairness([]) == 0.0
        assert jain_fairness([0, 0]) == 0.0

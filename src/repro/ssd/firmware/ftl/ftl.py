"""FTL orchestration: translation, allocation, GC and wear-leveling.

The FTL runs on its own embedded core; every translation touches the
mapping table in internal DRAM.  Writes allocate striped physical pages
across the superpage's parallel units; when a unit runs low on erased
blocks the FTL garbage-collects it inline (holding that unit's lock, so
host writes to the same unit stall — the realistic GC interference the
over-provisioning experiment measures).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.instructions import InstructionMix
from repro.obs.tracer import NULL_SPAN_CONTEXT
from repro.sim import Resource
from repro.ssd.computation.cores import CpuComplex
from repro.ssd.computation.dram import InternalDram
from repro.ssd.config import SSDConfig
from repro.ssd.content import ContentStore
from repro.ssd.firmware.fil import FlashInterfaceLayer
from repro.ssd.firmware.ftl.allocator import PageAllocator
from repro.ssd.firmware.ftl.gc import select_victim, wear_leveling_swap_needed
from repro.ssd.firmware.ftl.mapping import (
    UNMAPPED,
    BlockMapping,
    HybridMapping,
    PageMapping,
    make_mapping,
)
from repro.ssd.storage.array import FlashArray, PageState

_MAP_ENTRY_BYTES = 8


class FlashTranslationLayer:
    def __init__(self, sim, config: SSDConfig, cores: CpuComplex,
                 dram: InternalDram, fil: FlashInterfaceLayer,
                 array: FlashArray, content: ContentStore) -> None:
        self.sim = sim
        self.config = config
        self.cores = cores
        self.dram = dram
        self.fil = fil
        self.array = array
        self.content = content
        self.mapping = make_mapping(config)
        self.allocator = PageAllocator(config, array)
        self._unit_locks = [Resource(sim, 1, name=f"unit{i}")
                            for i in range(config.geometry.parallel_units)]
        # Last holder of each unit lock, for causal blame edges
        # (maintained only while tracing is on; see _lock_unit).
        self._unit_owner: Dict[int, str] = {}
        self._translate_mix = InstructionMix.typical(config.costs.ftl_translate)
        self._gc_page_mix = InstructionMix.typical(config.costs.ftl_gc_per_page)
        self._map_base = 0  # mapping table occupies the bottom of DRAM
        # statistics
        self.host_pages_written = 0
        self.gc_pages_migrated = 0
        self.gc_runs = 0
        self.gc_active = 0  # collections in flight (telemetry gauge)
        self.wl_swaps = 0
        self.trimmed_pages = 0
        self.retired_blocks = 0

    # -- address helpers ---------------------------------------------------

    def line_lpn(self, line_id: int, slot: int) -> int:
        return line_id * self.allocator.slots_per_line + slot

    def _map_address(self, lpn: int) -> int:
        return self._map_base + lpn * _MAP_ENTRY_BYTES

    def write_amplification(self) -> float:
        if self.host_pages_written == 0:
            return 0.0
        return (self.host_pages_written + self.gc_pages_migrated) / \
            self.host_pages_written

    # -- translation (reads) -------------------------------------------------

    def translate(self, line_id: int, slots: Sequence[int], track: int = 0):
        """Process: translate line slots to PPNs.

        Returns ``{slot: ppn}`` with UNMAPPED for never-written pages.
        Charges FTL core time plus one mapping-table DRAM reference per
        page (plus a hashmap probe when the partial-update optimisation
        is active).  ``track`` attributes the ``ftl.translate`` span to
        the originating host request.
        """
        result: Dict[int, int] = {}
        probe_hashmap = (isinstance(self.mapping, PageMapping)
                         and self.config.ftl.partial_update_hashmap)
        tracer = self.sim.tracer
        with (tracer.span("ftl.translate", track, line=line_id)
              if tracer.enabled else NULL_SPAN_CONTEXT):
            for slot in slots:
                lpn = self.line_lpn(line_id, slot)
                yield from self.cores.execute("ftl", self._translate_mix)
                yield from self.dram.access(self._map_address(lpn),
                                            _MAP_ENTRY_BYTES)
                if probe_hashmap and self.mapping.is_partial(lpn):
                    yield from self.dram.access(
                        self._map_address(lpn) + 4096, _MAP_ENTRY_BYTES)
                result[slot] = self.mapping.lookup(lpn)
        return result

    # -- write path ------------------------------------------------------------

    def service_line_write(self, line_id: int, slot_data: Dict[int, Optional[bytes]],
                           partial: bool = False, track: int = 0):
        """Process: persist the given slots of a line to flash.

        ``slot_data`` maps slot index to full-page payload (or None when
        timing-only).  ``partial`` marks a sub-superpage flush surviving
        thanks to the hashmap optimisation; it charges the extra hashmap
        maintenance cost.  ``track`` attributes the ``ftl.write`` span
        (and the flash programs beneath it) to a host request; cache
        flushes leave it 0, the background lane.
        """
        tracer = self.sim.tracer
        with (tracer.span("ftl.write", track, line=line_id)
              if tracer.enabled else NULL_SPAN_CONTEXT):
            if isinstance(self.mapping, PageMapping):
                yield from self._write_page_mapped(line_id, slot_data, partial,
                                                   track)
            elif isinstance(self.mapping, BlockMapping):
                yield from self._write_block_mapped(line_id, slot_data, track)
            else:
                yield from self._write_hybrid(line_id, slot_data, track)

    def _write_page_mapped(self, line_id: int,
                           slot_data: Dict[int, Optional[bytes]],
                           partial: bool, track: int = 0):
        units = self.allocator.line_units(line_id)
        # Group slots by die and allocate each die's planes atomically
        # (both unit locks held): sibling planes stay in page-offset
        # lockstep, so the FIL can fuse them into one multi-plane program
        # whose fast/slow ISPP timing matches across planes.
        die_of = self.array.mapper.die_of_unit
        groups: Dict[int, List[int]] = {}
        for slot in sorted(slot_data):
            groups.setdefault(die_of(units[slot]), []).append(slot)

        new_ppns: List[int] = []
        for _die, group in sorted(groups.items()):
            for slot in group:
                yield from self.cores.execute("ftl", self._translate_mix)
                yield from self._gc_if_needed(units[slot], track)
            group_units = sorted({units[slot] for slot in group})
            for unit in group_units:
                yield from self._lock_unit(unit, track)
            try:
                allocated = {slot: self.allocator.allocate(units[slot],
                                                           self.sim.now)
                             for slot in group}
            finally:
                for unit in reversed(group_units):
                    self._unit_locks[unit].release()
            for slot in group:
                lpn = self.line_lpn(line_id, slot)
                ppn = allocated[slot]
                old = self.mapping.bind(lpn, ppn)
                if old is not None:
                    self.array.invalidate_ppn(old)
                if partial:
                    self.mapping.mark_partial(lpn, ppn)
                    # hashmap insert: one extra metadata reference
                    yield from self.dram.access(
                        self._map_address(lpn) + 4096, _MAP_ENTRY_BYTES,
                        write=True)
                else:
                    self.mapping.partial_hashmap.pop(lpn, None)
                yield from self.dram.access(
                    self._map_address(lpn), _MAP_ENTRY_BYTES, write=True)
                self.content.write(ppn, slot_data[slot])
                new_ppns.append(ppn)
                self.host_pages_written += 1
        yield from self.fil.program_group(new_ppns, track=track)

    # -- reads (data) ------------------------------------------------------------

    def service_line_reads(self, line_id: int, slots: Sequence[int],
                           track: int = 0):
        """Process: read the given slots from flash.

        Returns ``{slot: bytes|None}``; unmapped slots read as None
        (zero-fill semantics are applied by the ICL).
        """
        ppns = yield from self.translate(line_id, slots, track=track)
        mapped = [(slot, ppn) for slot, ppn in ppns.items() if ppn != UNMAPPED]
        payload = (0 if self.config.fil.transfer_whole_page
                   else self.config.geometry.page_size)
        yield from self.fil.read_group([ppn for _slot, ppn in mapped], payload,
                                       track=track)
        result: Dict[int, Optional[bytes]] = {slot: None for slot in slots}
        for slot, ppn in mapped:
            result[slot] = self.content.read(ppn)
        return result

    # -- trim / deallocate -----------------------------------------------------

    def trim(self, line_id: int, slots: Sequence[int], track: int = 0):
        """Process: deallocate logical pages (TRIM / NVMe DSM).

        Invalidates the backing physical pages so GC can reclaim them
        without migration; subsequent reads return unmapped (zeroes).
        """
        del track  # TRIM charges no flash work worth a span of its own
        if not isinstance(self.mapping, PageMapping):
            raise NotImplementedError("trim requires page mapping")
        for slot in slots:
            lpn = self.line_lpn(line_id, slot)
            yield from self.cores.execute("ftl", self._translate_mix)
            old = self.mapping.unbind(lpn)
            if old is not None:
                self.array.invalidate_ppn(old)
                self.trimmed_pages += 1
            yield from self.dram.access(
                self._map_address(lpn), _MAP_ENTRY_BYTES, write=True)

    # -- unit locking (with causal blame) ----------------------------------------

    def _lock_unit(self, unit: int, track: int = 0,
                   ctx: Optional[str] = None):
        """Process: acquire a unit lock, recording contention for blame.

        When tracing is on and the lock is already held, the wait is
        captured as an ``ftl.unit_wait`` span carrying ``holder=`` — the
        label of the current holder (``gc:<run>`` when a collection has
        the unit, else the owning request/namespace) — which the causal
        layer folds into the ``gc_stall`` component.  When tracing is
        off this is exactly the bare ``acquire()`` of the pre-forensics
        code.
        """
        lock = self._unit_locks[unit]
        tracer = self.sim.tracer
        if not tracer.enabled:
            yield lock.acquire()  # simlint: disable=SIM106 -- acquire-only helper; every caller releases in its own try/finally
            return
        if lock.in_use >= lock.capacity:
            span = tracer.begin("ftl.unit_wait", track, unit=unit,
                                holder=self._unit_owner.get(unit, "?"))
            yield lock.acquire()  # simlint: disable=SIM106 -- acquire-only helper; every caller releases in its own try/finally
            tracer.end(span)
        else:
            yield lock.acquire()  # simlint: disable=SIM106 -- acquire-only helper; every caller releases in its own try/finally
        self._unit_owner[unit] = ctx if ctx is not None \
            else tracer.owner_label(track)

    # -- garbage collection --------------------------------------------------------

    def _gc_if_needed(self, unit: int, track: int = 0):
        """Process: collect ``unit`` until it has breathing room again.

        On a host track the whole inline-GC episode is wrapped in one
        ``ftl.gc_stall`` span: the collection itself traces on the
        background lane (track 0), so without this span the host
        request's causal record would show an unexplained gap exactly
        where GC blocked it.  ``holder=gc:<run>`` names the collection
        about to run.
        """
        if not self.allocator.needs_gc(unit):
            return
        tracer = self.sim.tracer
        span = None
        if tracer.enabled and track:
            span = tracer.begin("ftl.gc_stall", track, unit=unit,
                                holder=f"gc:{self.gc_runs + 1}")
        while self.allocator.needs_gc(unit):
            progressed = yield from self._collect_unit(unit)
            if not progressed:
                break
        if span is not None:
            tracer.end(span)

    def _collect_unit(self, unit: int):
        """Process: one GC pass on a unit. Returns True if a block was freed."""
        yield from self._lock_unit(unit, 0, ctx=f"gc:{self.gc_runs + 1}"
                                   if self.sim.tracer.enabled else None)
        try:
            candidates = self.allocator.gc_candidates(unit)
            victim = select_victim(self.config, self.array, unit,
                                   candidates, self.sim.now)
            if victim is None:
                full = [b for b in self.allocator.filled_blocks(unit)]
                swap = wear_leveling_swap_needed(self.config, self.array,
                                                 unit, full)
                if swap is None:
                    return False
                victim = swap
                self.wl_swaps += 1
            self.gc_runs += 1
            self.gc_active += 1
            tracer = self.sim.tracer
            ctx = f"gc:{self.gc_runs}" if tracer.enabled else None
            try:
                # GC always traces on the background lane (track 0): the host
                # write that tripped it stalls on the unit lock, visible as a
                # gap in its own spans overlapping this one
                with tracer.span("ftl.gc", 0, unit=unit, block=victim,
                                 run=self.gc_runs):
                    yield from self._migrate_and_erase(unit, victim, ctx=ctx)
            finally:
                self.gc_active -= 1
            return True
        finally:
            self._unit_locks[unit].release()

    def _migrate_and_erase(self, unit: int, victim: int,
                           ctx: Optional[str] = None):
        block = self.array.block(unit, victim)
        geom = self.config.geometry
        for page in list(block.valid_pages()):
            old_ppn = self.array.mapper.ppn_from_unit(unit, victim, page)
            yield from self.cores.execute("ftl", self._gc_page_mix)
            yield from self.fil.read(old_ppn, geom.page_size, ctx=ctx)
            if not self.allocator.can_allocate(unit):
                raise RuntimeError(
                    f"GC on unit {unit} cannot migrate: no free block "
                    "(over-provisioning too small for workload)")
            # Only this unit is locked, so during the timed read a host
            # write/trim on another unit may have remapped or discarded
            # this LPN (its bind/unbind invalidated old_ppn).  Re-check
            # and resolve the owner atomically with the rebind — binding
            # a stale copy would orphan the host's newer page.
            if self.array.page_state(old_ppn) is not PageState.VALID:
                continue
            lpn = self.mapping.reverse(old_ppn)
            new_ppn = self.allocator.allocate(unit, self.sim.now)
            self.content.move(old_ppn, new_ppn)
            if lpn != UNMAPPED:
                self.mapping.bind(lpn, new_ppn)
            else:
                # valid page with no logical owner: drop the fresh copy
                self.array.invalidate_ppn(new_ppn)
            self.array.invalidate_ppn(old_ppn)
            yield from self.fil.program(new_ppn, ctx=ctx)
            yield from self.dram.access(
                self._map_address(max(lpn, 0)), _MAP_ENTRY_BYTES, write=True)
            self.gc_pages_migrated += 1
        ok = yield from self.fil.erase(unit, victim, ctx=ctx)
        if not ok:
            # permanent erase failure: retire the block (its pages stay
            # invalid; capacity shrinks by one block)
            self.allocator.retire_block(unit, victim)
            self.retired_blocks += 1
            return
        self.content.erase_block(self.array.mapper, unit, victim,
                                 geom.pages_per_block)
        self.array.erase_block(unit, victim)
        self.allocator.reclaim(unit, victim)

    # -- block / hybrid mapping write paths -------------------------------------

    def _unit_for_lbn(self, lbn: int) -> int:
        return lbn % self.config.geometry.parallel_units

    def _write_block_mapped(self, line_id: int,
                            slot_data: Dict[int, Optional[bytes]],
                            track: int = 0):
        """Block-level mapping: every overwrite migrates the whole block."""
        mapping: BlockMapping = self.mapping
        ppb = mapping.pages_per_block
        by_lbn: Dict[int, Dict[int, Optional[bytes]]] = {}
        for slot in sorted(slot_data):
            lpn = self.line_lpn(line_id, slot)
            by_lbn.setdefault(lpn // ppb, {})[lpn % ppb] = slot_data[slot]

        for lbn, updates in by_lbn.items():
            unit = self._unit_for_lbn(lbn)
            yield from self.cores.execute("ftl", self._translate_mix)
            yield from self._gc_if_needed(unit, track)
            old_base = mapping.block_base(lbn)
            # gather surviving old data
            old_data: Dict[int, Optional[bytes]] = {}
            if old_base != UNMAPPED:
                for off in range(ppb):
                    old_ppn = old_base + off
                    if off not in updates and \
                            self.array.page_state(old_ppn).name == "VALID":
                        yield from self.fil.read(old_ppn,
                                                 self.config.geometry.page_size)
                        old_data[off] = self.content.read(old_ppn)
            # allocate a whole fresh block and program every page in order
            yield from self._lock_unit(unit, track)
            try:
                new_ppns = [self.allocator.allocate(unit, self.sim.now)
                            for _ in range(ppb)]
            finally:
                self._unit_locks[unit].release()
            for off in range(ppb):
                data = updates.get(off, old_data.get(off))
                self.content.write(new_ppns[off], data)
                if off not in updates and off not in old_data:
                    # padding page: programmed but holds no logical data
                    self.array.invalidate_ppn(new_ppns[off])
            if old_base != UNMAPPED:
                for off in range(ppb):
                    old_ppn = old_base + off
                    if self.array.page_state(old_ppn).name == "VALID":
                        self.array.invalidate_ppn(old_ppn)
            mapping.bind_block(lbn, new_ppns[0])
            self.host_pages_written += len(updates)
            self.gc_pages_migrated += len(old_data)
            yield from self.fil.program_group(new_ppns, track=track)

    def _write_hybrid(self, line_id: int,
                      slot_data: Dict[int, Optional[bytes]],
                      track: int = 0):
        """Hybrid mapping: updates land in page-mapped log space."""
        mapping: HybridMapping = self.mapping
        for slot in sorted(slot_data):
            lpn = self.line_lpn(line_id, slot)
            unit = self._unit_for_lbn(lpn // mapping.block_map.pages_per_block)
            yield from self.cores.execute("ftl", self._translate_mix)
            if mapping.log_full():
                yield from self._merge_log(track)
            yield from self._gc_if_needed(unit, track)
            yield from self._lock_unit(unit, track)
            try:
                ppn = self.allocator.allocate(unit, self.sim.now)
            finally:
                self._unit_locks[unit].release()
            old = mapping.bind_log(lpn, ppn)
            if old is not None:
                self.array.invalidate_ppn(old)
            self.content.write(ppn, slot_data[slot])
            self.host_pages_written += 1
            yield from self.fil.program(ppn, track=track)

    def _merge_log(self, track: int = 0):
        """Full merge: rewrite every logged page into fresh log space.

        A simplified switch-merge model: drained entries stay page-mapped
        (re-bound), but the merge pays the migration traffic a real
        hybrid FTL would.  ``track`` attributes GC stalls the merge trips
        to the host request paying for it.
        """
        mapping: HybridMapping = self.mapping
        drained = mapping.drain_log()
        for lpn, ppn in drained.items():
            unit = self._unit_for_lbn(lpn // mapping.block_map.pages_per_block)
            yield from self.cores.execute("ftl", self._gc_page_mix)
            yield from self.fil.read(ppn, self.config.geometry.page_size)
            yield from self._gc_if_needed(unit, track)
            yield from self._lock_unit(unit, track)
            try:
                new_ppn = self.allocator.allocate(unit, self.sim.now)
            finally:
                self._unit_locks[unit].release()
            self.content.move(ppn, new_ppn)
            self.array.invalidate_ppn(ppn)
            mapping.bind_log(lpn, new_ppn)
            self.gc_pages_migrated += 1
            yield from self.fil.program(new_ppn)

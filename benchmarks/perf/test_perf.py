"""pytest-benchmark view of the pinned perf scenarios.

Smoke-sized by default so the CI benchmark job finishes in seconds; set
``REPRO_BENCH_FULL=1`` for trajectory-sized runs.  Each test also
asserts the scenario's deterministic facts are self-consistent, so a
benchmark run doubles as a cheap determinism check.
"""

import os

from repro.bench.scenarios import kernel_churn, randread_nvme, write_storm_gc

PROFILE = "full" if os.environ.get("REPRO_BENCH_FULL", "0") == "1" else "smoke"


def _run(benchmark, scenario):
    result = benchmark.pedantic(lambda: scenario(PROFILE),
                                rounds=1, iterations=1)
    assert result.events > 0
    assert result.sim_ns > 0
    assert result.wall_seconds > 0
    return result


def test_kernel_churn(benchmark):
    result = _run(benchmark, kernel_churn)
    # the micro scenario is kernel-only: plenty of events, no I/O extras
    assert result.extra == {}


def test_randread_nvme(benchmark):
    result = _run(benchmark, randread_nvme)
    assert result.extra["iops"] > 0


def test_write_storm_gc(benchmark):
    result = _run(benchmark, write_storm_gc)
    # the storm must actually trigger garbage collection
    assert result.extra["gc_runs"] > 0
    assert result.extra["write_amplification"] > 1.0

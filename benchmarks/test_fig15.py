"""Figure 15: passive (OCSSD/pblk) vs active (NVMe) storage."""

from repro.experiments import fig15_passive_active as experiment

from benchmarks.conftest import run_experiment


def test_fig15_passive_vs_active(benchmark):
    result = run_experiment(benchmark, experiment)
    summary = result["summary"]
    # (a) OCSSD wins small I/O (paper ~1.3x), NVMe wins large (paper ~1.2x)
    assert summary["ocssd_advantage_4k"] > 1.0
    # (b) the passive architecture burns far more kernel CPU
    assert summary["kernel_cpu"]["ocssd"] > 2 * summary["kernel_cpu"]["nvme"]
    assert summary["kernel_cpu"]["ocssd"] > 0.10
    # (c) pblk's buffer shows up as host memory the NVMe path doesn't pay
    # in the driver column; both timelines are non-trivial
    for interface in ("nvme", "ocssd"):
        assert result["phases"][interface]["memory_peak_mb"] > 1
    assert len(result["phases"]["ocssd"]["cpu_timeline"]) >= 2

"""Span-based tracing in simulated time.

A :class:`Tracer` records nested spans — named intervals of simulated
time such as ``io.submit`` or ``flash.read`` — keyed by a *track*
(normally the :class:`~repro.common.iorequest.IORequest` id; track 0 is
reserved for background work like GC and cache flushing).  Spans never
consume simulated time, so enabling tracing cannot perturb results.

When tracing is off (the default) every component sees
:data:`NULL_TRACER`, whose operations are no-ops returning shared
singletons, so the instrumented hot paths cost one attribute lookup and
one trivially-inlined call.  Span-creation sites therefore read::

    with self.sim.tracer.span("ftl.translate", track):
        yield from ...          # simulated work being measured

or, for spans that close in a different process, the explicit form::

    tr = self.sim.tracer
    if tr.enabled:
        span = tr.begin("os.blocklayer", req.req_id)
        done_event.add_callback(lambda _ev: tr.end(span))
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class Span:
    """One named interval of simulated time on a track.

    ``t_end`` is ``None`` while the span is still open; ``parent`` links
    to the innermost span open on the same track when this one began.
    """

    __slots__ = ("kind", "track", "t_start", "t_end", "parent", "args")

    def __init__(self, kind: str, track: int, t_start: int,
                 parent: Optional["Span"] = None,
                 args: Optional[dict] = None) -> None:
        self.kind = kind
        self.track = track
        self.t_start = t_start
        self.t_end: Optional[int] = None
        self.parent = parent
        self.args = args

    @property
    def duration(self) -> int:
        """Span length in simulated ns (0 while the span is open)."""
        return (self.t_end - self.t_start) if self.t_end is not None else 0

    @property
    def depth(self) -> int:
        """Nesting depth on the span's track (0 = top level)."""
        depth, node = 0, self.parent
        while node is not None:
            depth, node = depth + 1, node.parent
        return depth

    def __repr__(self) -> str:
        end = self.t_end if self.t_end is not None else "…"
        return f"Span({self.kind} track={self.track} [{self.t_start}, {end}))"


class _SpanContext:
    """Context manager that opens a span on entry and closes it on exit."""

    __slots__ = ("_tracer", "_kind", "_track", "_args", "_span")

    def __init__(self, tracer: "Tracer", kind: str, track: int,
                 args: Optional[dict]) -> None:
        self._tracer = tracer
        self._kind = kind
        self._track = track
        self._args = args
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.begin(self._kind, self._track,
                                        **(self._args or {}))
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.end(self._span)
        return False


class Tracer:
    """Records spans against a simulated clock.

    The clock is any object with a ``now`` attribute (in practice the
    :class:`~repro.sim.Simulator` the tracer is attached to).  Parent
    attribution uses a per-track stack of open spans, which is exact for
    the common sequential request path and a best-effort approximation
    when concurrent sub-operations of one request interleave.
    """

    enabled = True

    def __init__(self, clock=None) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self._open: Dict[int, List[Span]] = {}
        self._track_ctx: Dict[int, str] = {}

    # -- recording --------------------------------------------------------

    def _now(self) -> int:
        return self.clock.now if self.clock is not None else 0

    def begin(self, kind: str, track: int = 0, **args) -> Span:
        """Open a span; it nests under the track's innermost open span."""
        stack = self._open.setdefault(track, [])
        span = Span(kind, track, self._now(),
                    parent=stack[-1] if stack else None,
                    args=args or None)
        stack.append(span)
        self.spans.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close a span at the current simulated time.

        Closing is **idempotent**: a second ``end()`` on an already-closed
        span is a no-op (the pinned choice — re-stamping ``t_end`` would
        let a stray completion callback silently rewrite history, see
        ``tests/test_obs_tracing.py``).  The common LIFO close pops the
        track stack in O(1); only the rare out-of-order close (a parent
        ended before its child) pays the O(n) middle removal.
        """
        if span.t_end is not None:
            return
        span.t_end = self._now()
        stack = self._open.get(span.track)
        if not stack:
            return
        if stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)

    def span(self, kind: str, track: int = 0, **args) -> _SpanContext:
        """Context manager wrapping :meth:`begin`/:meth:`end`."""
        return _SpanContext(self, kind, track, args or None)

    # -- blame context -----------------------------------------------------

    def annotate_track(self, track: int, ctx: str) -> None:
        """Attach a context label to a track (e.g. ``ns:2`` for an NVMe
        namespace), used by wait-span blame edges instead of the bare
        request id.  Call sites guard on :attr:`enabled`."""
        self._track_ctx[track] = ctx

    def owner_label(self, track: int) -> str:
        """Blame label for work running on ``track``: the annotation set
        by :meth:`annotate_track`, else ``req:<track>``, else ``bg`` for
        the background lane (track 0)."""
        ctx = self._track_ctx.get(track)
        if ctx is not None:
            return ctx
        return f"req:{track}" if track else "bg"

    # -- queries ----------------------------------------------------------

    def kinds(self) -> List[str]:
        """Distinct span kinds recorded so far, sorted."""
        return sorted({span.kind for span in self.spans})

    def by_track(self, track: int) -> List[Span]:
        """All spans on one track, in begin order."""
        return [span for span in self.spans if span.track == track]

    def by_kind(self, kind: str) -> List[Span]:
        """All spans of one kind, in begin order."""
        return [span for span in self.spans if span.kind == kind]

    def durations(self, kind: str) -> List[int]:
        """Durations (ns) of every closed span of ``kind``."""
        return [span.duration for span in self.spans
                if span.kind == kind and span.t_end is not None]


class _NullSpanContext:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing per call."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=None)

    def begin(self, kind: str, track: int = 0, **args) -> Span:
        """No-op; returns the shared null span."""
        return NULL_SPAN

    def end(self, span: Span) -> None:
        """No-op."""

    def span(self, kind: str, track: int = 0, **args) -> _NullSpanContext:
        """No-op; returns the shared null context manager."""
        return _NULL_CONTEXT


#: Shared placeholder span handed out by the disabled tracer.
NULL_SPAN = Span("null", 0, 0)
NULL_SPAN.t_end = 0

_NULL_CONTEXT = _NullSpanContext()

#: Public no-op context for hot-path ``tracer.enabled`` guards:
#: ``with tracer.span(...) if tracer.enabled else NULL_SPAN_CONTEXT:``
#: skips even the kwargs construction of the span() call when disabled.
NULL_SPAN_CONTEXT = _NULL_CONTEXT

#: The process-wide disabled tracer every Simulator starts with.
NULL_TRACER = NullTracer()


def merge_spans(tracers: Iterable[Tracer]) -> List[Span]:
    """Flatten the spans of several tracers into one list."""
    merged: List[Span] = []
    for tracer in tracers:
        merged.extend(tracer.spans)
    return merged

"""The live run journal: streaming NDJSON events beside a result store.

Fleet sweeps (:mod:`repro.fleet`) are deterministic and resumable, but
until a job's result lands in the content-addressed store the sweep is
a black box: a crashed worker looks identical to one that never
started.  The journal fixes that.  Each worker appends one JSON line
per lifecycle event to ``<store>/journal.ndjson``:

* ``job_started``   — worker picked the job up (wall time, pid);
* ``heartbeat``     — worker still alive (rate-limited by wall clock);
* ``epoch_sampled`` — simulated-time progress (sim ns, events, epochs);
* ``job_completed`` — result stored (wall duration, deterministic facts);
* ``job_failed``    — the error, plus any flight-recorder post-mortems.

Every line carries **both clocks**: ``wall_ts`` (host seconds, for
liveness/ETA) and, where a simulator is in flight, ``sim_ns``.  The
journal is therefore *deliberately wall-clock-tainted* — it is a side
artifact for ``python -m repro.fleet watch``/``status``, **never** part
of the byte-identical store contract: result payloads stay bit-identical
with the journal on or off, and store diffs exclude ``journal.ndjson``
by design (``docs/FLEET.md``).

Heartbeats piggyback on the telemetry epoch hook
(:func:`repro.obs.telemetry.set_epoch_listener`): while a job context is
active, every crossed epoch boundary gives the journal a chance to emit,
throttled to one ``heartbeat``/``epoch_sampled`` pair per
``heartbeat_s`` of wall time, so journaling cost is bounded no matter
how fast simulated time advances.

This module is one of simlint's *designated wall-clock modules*
(SIM110): :func:`wall_now` is the blessed accessor that display-only
code (the fleet watcher, ETA rendering) uses instead of reading
``time.time`` directly.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs import telemetry as _telemetry

#: file name the fleet runner journals into, at the store root
JOURNAL_NAME = "journal.ndjson"


def wall_now() -> float:
    """Host wall clock in seconds — the blessed read for display code.

    Journal stamps, heartbeat ages and ETA math all flow through this
    single accessor; simulated logic must keep deriving timestamps from
    ``sim.now`` (simlint SIM101/SIM110 enforce the split).
    """
    return time.time()  # simlint: disable=SIM101 -- the journal is the designated wall-clock artifact; stamps never enter stored results


def journal_path_for(store_root: Union[str, Path]) -> Path:
    """Where the journal for a result store lives."""
    return Path(store_root) / JOURNAL_NAME


class RunJournal:
    """Append-only NDJSON event log, safe for concurrent workers.

    Each :meth:`append` is a single ``O_APPEND`` write of one line, so
    concurrent worker processes interleave whole events, never bytes.
    Readers (:meth:`events`) skip a torn trailing line defensively.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, kind: str, **fields) -> Dict:
        """Append one event line; returns the document that was written."""
        doc = dict(fields)
        doc["event"] = kind
        doc["wall_ts"] = round(wall_now(), 6)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return doc

    def events(self) -> List[Dict]:
        """Every parseable event, in append order; [] when absent."""
        if not self.path.is_file():
            return []
        out: List[Dict] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue        # torn write from a killed worker
                if isinstance(doc, dict) and "event" in doc:
                    out.append(doc)
        return out

    def __repr__(self) -> str:
        return f"RunJournal({str(self.path)!r})"


# -- the per-job worker context ----------------------------------------------
#
# Workers execute scenarios that build their own Simulators internally,
# so the journal cannot be threaded as an argument; like tracing and
# telemetry, the active job is process-global state.

class _JobContext:
    """Process-global state while one journaled job is executing."""

    __slots__ = ("journal", "job_hash", "heartbeat_s", "started",
                 "last_beat")

    def __init__(self, journal: RunJournal, job_hash: str,
                 heartbeat_s: float) -> None:
        self.journal = journal
        self.job_hash = job_hash
        self.heartbeat_s = heartbeat_s
        self.started = wall_now()
        self.last_beat = float("-inf")


_context: Optional[_JobContext] = None


def _on_epoch(probe, t_ns: int) -> None:
    """Telemetry epoch listener: emit a throttled heartbeat pair.

    Called by :class:`~repro.obs.telemetry.TelemetryProbe` once per
    crossed epoch boundary; cheap no-op unless ``heartbeat_s`` of wall
    time has passed since the last emission.
    """
    ctx = _context
    if ctx is None:
        return
    now = wall_now()
    if now - ctx.last_beat < ctx.heartbeat_s:
        return
    ctx.last_beat = now
    sim = probe.sim
    ctx.journal.append("heartbeat", job=ctx.job_hash, pid=os.getpid(),
                       sim_ns=sim.now, events=sim.events_processed)
    ctx.journal.append("epoch_sampled", job=ctx.job_hash, sim_ns=t_ns,
                       epochs=probe.epochs_sampled,
                       events=sim.events_processed)


def begin_job(journal: RunJournal, job_hash: str,
              heartbeat_s: float = 2.0) -> None:
    """Open a job context: write ``job_started`` and arm heartbeats."""
    global _context
    _context = _JobContext(journal, job_hash, heartbeat_s)
    journal.append("job_started", job=job_hash, pid=os.getpid(), sim_ns=0)
    _telemetry.set_epoch_listener(_on_epoch)


def end_job(kind: str, **fields) -> Optional[Dict]:
    """Close the job context with a terminal event (or None if none open).

    ``kind`` is ``"job_completed"`` or ``"job_failed"``; the event gets
    the job hash and total wall duration attached automatically.
    """
    global _context
    ctx = _context
    _context = None
    _telemetry.set_epoch_listener(None)
    if ctx is None:
        return None
    return ctx.journal.append(
        kind, job=ctx.job_hash, pid=os.getpid(),
        wall_duration_s=round(wall_now() - ctx.started, 6), **fields)


def active_job() -> Optional[str]:
    """Config hash of the journaled job in flight, or None."""
    return _context.job_hash if _context is not None else None

"""A unified, hierarchically-named metric namespace.

Before this module every component kept ad-hoc instruments — a
``TimeAverage`` here, a ``UtilizationTracker`` there, loose integer
counters everywhere — each reachable only by knowing the private
attribute that held it.  The :class:`MetricsRegistry` puts them all
behind one namespace of dot-separated names with hierarchical prefixes
(``ssd.channel0.util``, ``host.cpu.core1.kernel.util``,
``os.block.merged``), so exporters and tests can enumerate everything a
system measures without touching component internals.

The registry does not replace the instruments: components keep their
existing objects and *register* them (or a zero-argument callable) under
a name.  Reading a metric is lazy — values are pulled at
:meth:`MetricsRegistry.snapshot` time, so registration costs one dict
insert and steady-state simulation pays nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, delta: float = 1.0) -> None:
        """Increment by ``delta`` (must be non-negative)."""
        if delta < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += delta


class Gauge:
    """A named point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Adjust the gauge's value by ``delta``."""
        self.value += delta


#: Anything the registry can read a float from at snapshot time.
MetricSource = Union[Counter, Gauge, Callable[[], float], object]


def _read(source: MetricSource) -> float:
    """Resolve a registered source to a float, by duck type."""
    if isinstance(source, (Counter, Gauge)):
        return float(source.value)
    if callable(source):
        return float(source())
    if hasattr(source, "utilization"):
        return float(source.utilization())
    if hasattr(source, "mean"):
        return float(source.mean())
    if hasattr(source, "value"):
        return float(source.value)
    raise TypeError(f"cannot read a metric from {type(source).__name__}")


class MetricsRegistry:
    """Name -> instrument registry with hierarchical dot-prefixes."""

    def __init__(self) -> None:
        self._sources: Dict[str, MetricSource] = {}

    # -- registration -----------------------------------------------------

    def register(self, name: str, source: MetricSource) -> None:
        """Adopt an existing instrument (or callable) under ``name``.

        Valid sources: :class:`Counter`, :class:`Gauge`, a zero-argument
        callable returning a number, or any object exposing one of
        ``utilization()`` / ``mean()`` / ``.value`` (which covers
        ``UtilizationTracker``, ``TimeAverage`` and ``Resource``).
        """
        if name in self._sources:
            raise ValueError(f"metric {name!r} already registered")
        _ = _read(source) if not callable(source) else None  # validate early
        self._sources[name] = source

    def counter(self, name: str) -> Counter:
        """Create (or return the existing) counter named ``name``."""
        existing = self._sources.get(name)
        if existing is not None:
            if not isinstance(existing, Counter):
                raise ValueError(f"metric {name!r} is not a counter")
            return existing
        counter = Counter(name)
        self._sources[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        """Create (or return the existing) gauge named ``name``."""
        existing = self._sources.get(name)
        if existing is not None:
            if not isinstance(existing, Gauge):
                raise ValueError(f"metric {name!r} is not a gauge")
            return existing
        gauge = Gauge(name)
        self._sources[name] = gauge
        return gauge

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A view that prepends ``prefix + '.'`` to every name."""
        return ScopedRegistry(self, prefix)

    # -- reading ----------------------------------------------------------

    def names(self, prefix: str = "") -> List[str]:
        """Sorted metric names, optionally filtered by a dot-prefix."""
        if not prefix:
            return sorted(self._sources)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(name for name in self._sources
                      if name == prefix[:-1] or name.startswith(dotted)
                      or name.startswith(prefix))

    def read(self, name: str) -> float:
        """Current value of one metric."""
        return _read(self._sources[name])

    def snapshot(self, prefix: str = "") -> Dict[str, float]:
        """Read every metric (under ``prefix``) into a plain dict."""
        return {name: _read(self._sources[name])
                for name in self.names(prefix)}

    def readers(self) -> List[tuple]:
        """Stable ``(name, read_callable)`` pairs, sorted by name.

        Periodic samplers (the telemetry epoch probe) bind this list
        once instead of re-sorting names and re-dispatching by duck
        type on every epoch.
        """
        return [(name, (lambda source=source: _read(source)))
                for name, source in sorted(self._sources.items())]

    def to_csv(self, prefix: str = "") -> str:
        """Render a snapshot as ``metric,value`` CSV text."""
        lines = ["metric,value"]
        for name, value in self.snapshot(prefix).items():
            lines.append(f"{name},{value:.10g}")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, name: str) -> bool:
        return name in self._sources


class ScopedRegistry:
    """A prefixing facade over a :class:`MetricsRegistry`.

    Components take a scope so they can name metrics relative to
    themselves (``core0.kernel.util``) while the system decides where
    the subtree mounts (``host.cpu.``).
    """

    __slots__ = ("_base", "_prefix")

    def __init__(self, base: MetricsRegistry, prefix: str) -> None:
        self._base = base
        self._prefix = prefix.rstrip(".")

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def register(self, name: str, source: MetricSource) -> None:
        """Register under the scope's prefix."""
        self._base.register(self._qualify(name), source)

    def counter(self, name: str) -> Counter:
        """Counter under the scope's prefix."""
        return self._base.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        """Gauge under the scope's prefix."""
        return self._base.gauge(self._qualify(name))

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """Nest a further prefix under this scope."""
        return ScopedRegistry(self._base, self._qualify(prefix))

"""Device-side SATA controller.

Parses Register H2D FISes from the HBA, exchanges DMA Setup / Data FISes
for payload movement (emulated through the DMA engine, which performs the
HBA's PRDT walk), drives the SSD's HIL with a single FIFO queue, and
notifies completions with Set Device Bits FISes.
"""

from __future__ import annotations

from repro.common.instructions import InstructionMix
from repro.common.iorequest import IOKind, IORequest
from repro.host.dma import DmaEngine, PointerList
from repro.interfaces.sata.ahci import AhciHba
from repro.interfaces.sata.fis import FIS_SIZES, AhciCommand, FisType
from repro.ssd.device import SSD
from repro.ssd.firmware.requests import DeviceCommand


class SataDeviceController:
    def __init__(self, sim, ssd: SSD, dma: DmaEngine, hba: AhciHba) -> None:
        self.sim = sim
        self.ssd = ssd
        self.dma = dma
        self.hba = hba
        hba.attach_controller(self)
        self._parse_mix = InstructionMix.typical(400)
        self.commands_served = 0

    def command_arrived(self, cmd: AhciCommand, req: IORequest) -> None:
        self.sim.process(self._execute(cmd, req))

    def _execute(self, cmd: AhciCommand, req: IORequest):
        with self.sim.tracer.span("sata.cmd", req.req_id,
                                  ncq_tag=cmd.ncq_tag):
            # device controller parses the FIS, builds an internal command
            yield from self.ssd.cores.execute("hil", self._parse_mix)
            pointers = PointerList([(e.address, e.nbytes) for e in cmd.prdt])
            payload = None
            req.t_device = self.sim.now

            if req.kind == IOKind.FLUSH:
                done = self.ssd.submit(DeviceCommand(IOKind.FLUSH, 0, 0))
                yield done
            elif cmd.is_write:
                # DMA Setup handshake, then the HBA streams data FISes while
                # the DMA engine performs the PRDT walk / double copy
                yield from self.dma.control_to_device(
                    FIS_SIZES[FisType.DMA_SETUP])
                yield from self.dma.to_device(pointers, track=req.req_id)
                device_cmd = DeviceCommand(IOKind.WRITE, cmd.slba,
                                           cmd.nsectors,
                                           queue_id=0, data=req.data,
                                           host_request=req)
                yield self.ssd.submit(device_cmd)
            else:
                device_cmd = DeviceCommand(IOKind.READ, cmd.slba,
                                           cmd.nsectors,
                                           queue_id=0, host_request=req)
                payload = yield self.ssd.submit(device_cmd)
                yield from self.dma.control_to_host(
                    FIS_SIZES[FisType.DMA_SETUP])
                yield from self.dma.to_host(pointers, track=req.req_id)

            req.t_backend_done = self.sim.now
        self.commands_served += 1
        yield from self.hba.command_done(cmd.ncq_tag, payload)

"""The simulation-safety lint rules (docs/ANALYSIS.md has the catalog).

Each rule encodes one invariant the simulator's determinism or resource
accounting depends on.  They are deliberately pragmatic AST checks — a
finding means "this pattern has bitten us or trivially could", not a
proof of a bug; genuinely intentional sites carry a
``# simlint: disable=RULE -- reason`` suppression where they live.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis import clones
from repro.analysis.registry import Site, SourceFile, rule

# -- shared AST helpers -------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted thing they import.

    ``import time as _time`` -> ``{"_time": "time"}``;
    ``from random import randint`` -> ``{"randint": "random.randint"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name != "*":
                    aliases[name.asname or name.name] = \
                        f"{node.module}.{name.name}"
    return aliases


def _resolve_call(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted name of a call target, alias-expanded."""
    dotted = _dotted(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expansion = aliases.get(head)
    if expansion is not None:
        return f"{expansion}.{rest}" if rest else expansion
    return dotted


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _has_own_yield(func: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _own_nodes(func))


# -- SIM101: wall-clock reads -------------------------------------------------

_WALLCLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@rule("SIM101", "wall-clock",
      "Host wall-clock reads are nondeterministic; simulated logic must "
      "derive every timestamp from `sim.now`. Measuring simulator *speed* "
      "is the one legitimate use — those sites are suppressed with the "
      "reason, and their outputs live in golden VOLATILE_KEYS.")
def check_wallclock(src: SourceFile) -> Iterator[Site]:
    aliases = _import_aliases(src.tree)
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            target = _resolve_call(node.func, aliases)
            if target in _WALLCLOCK:
                yield node, node.col_offset, \
                    f"wall-clock read `{target}()` in simulation code"


# -- SIM110: wall-clock containment -------------------------------------------

#: path fragments of the modules designated to read the wall clock:
#: benchmarking, the self-profiler, the run journal, worker lifecycle
#: stamps and trace replay.  Checked against "/"-normalized paths.
_WALLCLOCK_MODULES = (
    "repro/bench/",
    "repro/obs/profiler",
    "repro/obs/journal",
    "repro/fleet/runner",
    "repro/baselines/replay",
)


def _in_wallclock_module(path: str) -> bool:
    """Whether ``path`` is one of the designated wall-clock modules."""
    normalized = path.replace(os.sep, "/")
    return any(marker in normalized for marker in _WALLCLOCK_MODULES)


@rule("SIM110", "wall-clock-containment",
      "Wall-clock reads are only legal in the designated profiling "
      "modules (repro.bench, repro.obs.profiler, repro.obs.journal, "
      "repro.fleet.runner, repro.baselines.replay), whose outputs are "
      "declared wall-clock-tainted side artifacts. Anywhere else, even "
      "a *suppressed* SIM101 read is a containment leak: route it "
      "through repro.obs.journal.wall_now or move the code into a "
      "designated module, so `grep` over five files audits every clock "
      "in the tree.")
def check_wallclock_containment(src: SourceFile) -> Iterator[Site]:
    if _in_wallclock_module(src.path):
        return
    aliases = _import_aliases(src.tree)
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            target = _resolve_call(node.func, aliases)
            if target in _WALLCLOCK:
                yield node, node.col_offset, \
                    f"wall-clock read `{target}()` outside the designated " \
                    "profiling modules"


# -- SIM102: unseeded randomness ----------------------------------------------

_GLOBAL_RNG_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "expovariate", "betavariate", "paretovariate", "vonmisesvariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes", "seed",
}


@rule("SIM102", "unseeded-random",
      "The module-level `random.*` functions share one process-global, "
      "wall-clock-seeded RNG; any draw from it makes runs irreproducible. "
      "Construct `random.Random(seed)` and thread it explicitly.")
def check_unseeded_random(src: SourceFile) -> Iterator[Site]:
    aliases = _import_aliases(src.tree)
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _resolve_call(node.func, aliases)
        if target is None:
            continue
        if target.startswith("random.") and \
                target.split(".", 1)[1] in _GLOBAL_RNG_FNS:
            yield node, node.col_offset, \
                f"`{target}()` draws from the process-global RNG"
        elif target == "random.Random" and not node.args and not node.keywords:
            yield node, node.col_offset, \
                "`random.Random()` without a seed falls back to wall-clock " \
                "entropy"
        elif target.startswith("numpy.random.") or \
                target.startswith("np.random."):
            yield node, node.col_offset, \
                f"`{target}()` uses numpy's global RNG state; pass a " \
                "`numpy.random.Generator` seeded explicitly"


# -- SIM103: unordered iteration ----------------------------------------------


def _is_setish(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _dotted(node.func) in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_setish(node.left, set_names) or \
            _is_setish(node.right, set_names)
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _scopes(src: SourceFile) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """(scope node, its own statements) for the module and each function."""
    yield src.tree, list(_own_nodes_module(src.tree))
    for func in src.functions():
        yield func, list(_own_nodes(func))


def _own_nodes_module(tree: ast.Module) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(tree))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


@rule("SIM103", "unordered-iteration",
      "Iterating a set visits elements in hash order, which changes "
      "between interpreter runs under string-hash randomization; anything "
      "it feeds — event scheduling, float accumulation, victim selection — "
      "silently loses bit-reproducibility. Wrap the iterable in sorted().")
def check_unordered_iteration(src: SourceFile) -> Iterator[Site]:
    for _scope, nodes in _scopes(src):
        assigns: List[Tuple[int, str, bool]] = []
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                assigns.append((node.lineno, node.targets[0].id,
                                _is_setish(node.value, set())))

        def latest_is_set(name: str, before: int) -> bool:
            prior = [is_set for line, n, is_set in assigns
                     if n == name and line <= before]
            return bool(prior) and prior[-1]

        for node in nodes:
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                set_names = {name for line, name, is_set in assigns if is_set}
                direct = _is_setish(it, set())
                via_name = isinstance(it, ast.Name) and \
                    it.id in set_names and \
                    latest_is_set(it.id, node.lineno)
                if direct or via_name:
                    yield node, node.col_offset, \
                        "iteration over a set is hash-ordered and not " \
                        "reproducible across runs; use sorted(...)"


# -- SIM104: discarded waits / processes that never yield ---------------------

_EVENT_MAKERS = {"timeout", "acquire", "all_of", "any_of"}


@rule("SIM104", "discarded-event",
      "A wait primitive used as a bare statement is a silent no-op wait: "
      "the event is still created (and a Timeout still *schedules* itself, "
      "perturbing events_processed) but nobody resumes on it. Either "
      "`yield` it or don't create it. Also flags generator functions "
      "handed to `sim.process(...)` that contain no yield at all.")
def check_discarded_event(src: SourceFile) -> Iterator[Site]:
    # (a) expression statements that create-and-drop a wait
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.Expr) and
                isinstance(node.value, ast.Call)):
            continue
        call = node.value
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _EVENT_MAKERS:
                yield node, node.col_offset, \
                    f"result of `.{func.attr}(...)` is discarded; the " \
                    "wait never happens"
            elif func.attr == "get" and not call.args and not call.keywords:
                yield node, node.col_offset, \
                    "result of `.get()` is discarded; the item (or the " \
                    "wait for it) is lost"
        else:
            dotted = _dotted(func)
            if dotted is not None and dotted.split(".")[-1] == "Timeout":
                yield node, node.col_offset, \
                    "Timeout(...) is discarded; it still schedules an event"

    # (b) local functions driven as processes but containing no yield
    defs: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(src.tree):
        if isinstance(node, ast.FunctionDef):
            defs.setdefault(node.name, []).append(node)
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        name = None
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in {"process", "run_process"}:
            if node.args and isinstance(node.args[0], ast.Call):
                inner = node.args[0].func
                name = inner.attr if isinstance(inner, ast.Attribute) else \
                    (inner.id if isinstance(inner, ast.Name) else None)
        if name and name in defs and \
                all(not _has_own_yield(d) for d in defs[name]):
            yield node, node.col_offset, \
                f"`{name}` is driven as a process but never yields; " \
                "`process()` requires a generator function"


# -- SIM105: leaked timeouts --------------------------------------------------


@rule("SIM105", "timeout-leak",
      "A Timeout bound to a name that is never used again still fires: "
      "it sits in the heap, advances nothing, and inflates the schedule. "
      "Yield it, cancel() it, or stop creating it.")
def check_timeout_leak(src: SourceFile) -> Iterator[Site]:
    for func in src.functions():
        nodes = list(_own_nodes(func))
        loads: Dict[str, int] = {}
        for node in nodes:
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loads[node.id] = loads.get(node.id, 0) + 1
        for node in nodes:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                continue
            call_func = node.value.func
            is_timeout = (isinstance(call_func, ast.Attribute)
                          and call_func.attr == "timeout")
            if not is_timeout:
                dotted = _dotted(call_func)
                is_timeout = dotted is not None and \
                    dotted.split(".")[-1] == "Timeout"
            if is_timeout and not loads.get(node.targets[0].id):
                yield node, node.col_offset, \
                    f"timeout bound to `{node.targets[0].id}` is never " \
                    "yielded, cancelled or passed on — it still fires"


# -- SIM106: acquire/release pairing ------------------------------------------


def _finally_ranges(func: ast.AST) -> List[Tuple[int, int]]:
    ranges = []
    for node in _own_nodes(func):
        if isinstance(node, ast.Try) and node.finalbody:
            start = node.finalbody[0].lineno
            end = max(getattr(stmt, "end_lineno", stmt.lineno)
                      for stmt in node.finalbody)
            ranges.append((start, end))
    return ranges


@rule("SIM106", "acquire-release",
      "Every `Resource.acquire()` needs a `release()` on *all* exit paths "
      "of the same function: an exception (Interrupt, model error) thrown "
      "into the process between the two leaks the token and deadlocks "
      "every later waiter. Put the release in a try/finally when any "
      "yield sits between them.")
def check_acquire_release(src: SourceFile) -> Iterator[Site]:
    for func in src.functions():
        nodes = list(_own_nodes(func))
        acquires: List[Tuple[ast.Call, str]] = []
        releases: List[Tuple[ast.Call, str]] = []
        for node in nodes:
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                if node.func.attr == "acquire":
                    acquires.append((node, ast.unparse(node.func.value)))
                elif node.func.attr == "release":
                    releases.append((node, ast.unparse(node.func.value)))
        if not acquires:
            continue
        protected = _finally_ranges(func)
        yield_lines = sorted(n.lineno for n in nodes
                             if isinstance(n, (ast.Yield, ast.YieldFrom)))
        for call, recv in acquires:
            matching = [(n, any(lo <= n.lineno <= hi for lo, hi in protected))
                        for n, r in releases if r == recv]
            if not matching:
                yield call, call.col_offset, \
                    f"`{recv}.acquire()` has no matching " \
                    f"`{recv}.release()` in this function"
                continue
            after = [n.lineno for n, _p in matching if n.lineno > call.lineno]
            first_release = min(after) if after else max(
                n.lineno for n, _p in matching)
            crosses_yield = any(call.lineno < line < first_release
                                for line in yield_lines)
            if crosses_yield and not any(p for _n, p in matching):
                yield call, call.col_offset, \
                    f"`{recv}` is held across a yield but released " \
                    "outside try/finally; an exception leaks the token"


# -- SIM107: mutable default arguments ----------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque",
                  "defaultdict", "OrderedDict", "Counter"}


@rule("SIM107", "mutable-default",
      "A mutable default argument is shared across every call and every "
      "simulator instance — state leaks between supposedly independent "
      "runs, the classic cross-run determinism bug. Default to None.")
def check_mutable_default(src: SourceFile) -> Iterator[Site]:
    for func in src.functions():
        args = func.args
        for default in list(args.defaults) + \
                [d for d in args.kw_defaults if d is not None]:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                       ast.ListComp, ast.DictComp,
                                       ast.SetComp))
            if not bad and isinstance(default, ast.Call):
                dotted = _dotted(default.func)
                bad = dotted is not None and \
                    dotted.split(".")[-1] in _MUTABLE_CALLS
            if bad:
                yield default, default.col_offset, \
                    f"mutable default argument in `{func.name}()` is " \
                    "shared between calls"


# -- SIM109: fleet worker seeding ---------------------------------------------

#: substrings marking a function as a per-job/worker execution entry point
_WORKER_NAME_MARKERS = ("worker", "_job", "job_", "run_job")

#: names that, appearing anywhere in a seed expression, prove derivation
#: from the job's identity (config hash or a seed threaded from one)
_SEED_SOURCE_MARKERS = ("hash", "seed")

#: seed sources that vary with scheduling/host state, never with config
_FORBIDDEN_SEED_CALLS = {"os.getpid", "os.getppid", "os.urandom",
                         "uuid.uuid4", "id"}


def _seed_expr_verdict(expr: ast.AST,
                       aliases: Dict[str, str]) -> Optional[str]:
    """Why a worker seed expression is unacceptable, or None if fine."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            target = _resolve_call(node.func, aliases)
            if target in _FORBIDDEN_SEED_CALLS:
                return f"seeded from `{target}()`, which varies with " \
                       "scheduling, not with the job's configuration"
    mentions: List[str] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            mentions.append(node.id.lower())
        elif isinstance(node, ast.Attribute):
            mentions.append(node.attr.lower())
    derived = any(marker in name
                  for name in mentions
                  for marker in _SEED_SOURCE_MARKERS)
    if not derived:
        if not mentions:
            return "seeded from a constant: every job draws the same " \
                   "stream, so a fleet of 'independent' configs is N " \
                   "copies of one"
        return "seed does not derive from the job's config hash (no " \
               "`*hash*`/`*seed*` name in the expression)"
    return None


@rule("SIM109", "fleet-seed",
      "A worker-process RNG must be seeded from the job's config hash "
      "(repro.fleet.spec.derive_seed) — never from a constant, a pid, or "
      "the clock. A constant collapses the fleet onto one stream; "
      "pid/clock seeds make results depend on which worker ran the job, "
      "breaking the 1-worker == N-worker determinism guarantee and "
      "poisoning the content-addressed result cache.")
def check_fleet_seed(src: SourceFile) -> Iterator[Site]:
    aliases = _import_aliases(src.tree)
    for func in src.functions():
        name = func.name.lower()
        if not any(marker in name for marker in _WORKER_NAME_MARKERS):
            continue
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call(node.func, aliases)
            seed_args: List[ast.AST] = []
            if target == "random.Random" and node.args:
                seed_args.append(node.args[0])
            elif isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "seed" and node.args:
                seed_args.append(node.args[0])
            for arg in seed_args:
                verdict = _seed_expr_verdict(arg, aliases)
                if verdict is not None:
                    yield node, node.col_offset, \
                        f"worker `{func.name}` {verdict}"


# -- SIM108: engine clone consistency -----------------------------------------


@rule("SIM108", "clone-consistency",
      "The engine intentionally inlines its pop-and-process body three "
      "times (step/run/run_process) for speed; the copies must stay "
      "semantically identical to each other and to Event._process, or "
      "the three drift apart and identical workloads diverge depending "
      "on which entry point drove them.")
def check_clone_consistency(src: SourceFile) -> Iterator[Site]:
    basename = os.path.basename(src.path)
    if basename != "engine.py" or "class Simulator" not in src.source:
        return
    events_path = os.path.join(os.path.dirname(src.path), "events.py")
    if not os.path.exists(events_path):
        return
    with open(events_path, encoding="utf-8") as handle:
        events_source = handle.read()
    for divergence in clones.compare_clones(src.source, events_source):
        yield divergence.lineno, 0, \
            f"clone drift in `{divergence.method}`: {divergence.message}"

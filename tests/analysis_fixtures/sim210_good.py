"""SIM210 fixture: state derives from sim.now and sorted sequences."""


class Gauge:
    def _sample(self, sim):
        return sim.now

    def record(self, sim):
        self.last_sample = self._sample(sim)

    def _ordered_tags(self):
        return sorted({"read", "program", "erase"})

    def snapshot(self):
        self.order = self._ordered_tags()

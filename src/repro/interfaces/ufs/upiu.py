"""UFS protocol information units (UPIU) and transfer request descriptors.

UFS layers SCSI-flavoured command/response UPIUs over the UTP transport;
each UTP Transfer Request Descriptor (UTRD) in the 32-entry command list
references a command UPIU, a response UPIU and a PRDT — structurally a
close cousin of SATA/AHCI's NCQ machinery (Section IV-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import List

from repro.interfaces.sata.fis import PrdtEntry, prdt_for


class UpiuType(enum.Enum):
    NOP_OUT = 0x00
    COMMAND = 0x01
    DATA_OUT = 0x02
    TASK_MANAGEMENT = 0x04
    NOP_IN = 0x20
    RESPONSE = 0x21
    DATA_IN = 0x22
    READY_TO_TRANSFER = 0x31
    QUERY_RESPONSE = 0x36
    REJECT = 0x3F


UPIU_SIZES = {
    UpiuType.NOP_OUT: 32,
    UpiuType.COMMAND: 32,
    UpiuType.DATA_OUT: 32 + 8192,
    UpiuType.TASK_MANAGEMENT: 32,
    UpiuType.NOP_IN: 32,
    UpiuType.RESPONSE: 32,
    UpiuType.DATA_IN: 32 + 8192,
    UpiuType.READY_TO_TRANSFER: 32,
    UpiuType.QUERY_RESPONSE: 288,
    UpiuType.REJECT: 32,
}

#: data segment carried per DATA_IN/DATA_OUT UPIU
UPIU_DATA_PAYLOAD = 8192

UTRD_SLOTS = 32

_SEQ = count(1)


@dataclass
class Utrd:
    """UTP Transfer Request Descriptor: one command-list entry."""

    slot: int
    is_write: bool
    slba: int
    nsectors: int
    prdt: List[PrdtEntry] = field(default_factory=list)
    seq: int = field(default_factory=lambda: next(_SEQ))

    @property
    def nbytes(self) -> int:
        return self.nsectors * 512


def utrd_for(slot: int, is_write: bool, slba: int, nsectors: int,
             buffer_addr: int) -> Utrd:
    return Utrd(slot=slot, is_write=is_write, slba=slba, nsectors=nsectors,
                prdt=prdt_for(buffer_addr, nsectors * 512))

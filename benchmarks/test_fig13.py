"""Figure 13: handheld (UFS) vs general computing (NVMe)."""

from repro.experiments import fig13_mobile as experiment

from benchmarks.conftest import run_experiment


def test_fig13_mobile_vs_pc(benchmark):
    result = run_experiment(benchmark, experiment)
    summary = result["summary"]
    # (a) NVMe beats UFS overall (paper: 1.81x)
    assert 1.2 < summary["nvme_over_ufs"] < 3.0
    # (b) the embedded CPU is the most power-hungry SSD component
    for interface, power in result["power"].items():
        assert power["cpu"] >= power["dram"], interface
        assert power["cpu"] > 0 and power["nand"] > 0
    # UFS total power sits around the ~2 W the paper reports
    assert 0.5 < result["power"]["ufs"]["total"] < 4.0
    # (c) loads+stores dominate (~60%) and NVMe runs several times more
    # instructions per second than UFS (paper: 5.45x)
    for fraction in summary["load_store_fraction"].values():
        assert 0.45 < fraction < 0.75
    assert summary["instr_rate_ratio"] > 2.0

"""SIM202 fixture: scale changes go through the units constants."""

from repro.common.units import US, transfer_ns


def relabel_ns(nbytes, bandwidth):
    lat_ns = transfer_ns(nbytes, bandwidth)
    return lat_ns


def wait(sim, delay_ns):
    yield sim.timeout(delay_ns)


def caller(sim, delay_us):
    yield from wait(sim, delay_us * US)

"""Host system memory: timing for DMA/page traffic plus a usage ledger.

The ledger tracks who holds how much system memory (FIO buffers, NVMe
protocol structures, pblk caches...) over time — the source of the
Fig 15c DRAM-usage timelines.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.units import transfer_ns
from repro.sim import Resource, TimeAverage


class HostMemory:
    def __init__(self, sim, size: int, bandwidth: float,
                 access_latency: int = 60) -> None:
        """``bandwidth`` in bytes/s aggregate; ``access_latency`` ns per op."""
        self.sim = sim
        self.size = size
        self.bandwidth = bandwidth
        self.access_latency = access_latency
        self._bus = Resource(sim, 1, name="host-dram")
        # the usage ledger feeds the Fig 15c timelines, so it keeps its
        # (capped) change-point history
        self._usage = TimeAverage(sim, 0.0, keep_timeline=True)
        self._holders: Dict[str, int] = {}
        self.bytes_moved = 0

    # -- timing ---------------------------------------------------------------

    def access(self, nbytes: int, write: bool = False):
        """Process generator: one memory transaction of ``nbytes``."""
        del write  # symmetric timing; kept for call-site clarity
        if nbytes <= 0:
            return
        yield self._bus.acquire()
        try:
            yield self.sim.timeout(
                self.access_latency + transfer_ns(nbytes, self.bandwidth))
        finally:
            self._bus.release()
        self.bytes_moved += nbytes

    # -- footprint ledger --------------------------------------------------------

    def allocate(self, tag: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        used = self._usage.value
        if used + nbytes > self.size:
            raise MemoryError(
                f"host memory exhausted: {used + nbytes} > {self.size}")
        self._holders[tag] = self._holders.get(tag, 0) + nbytes
        self._usage.add(nbytes)

    def free(self, tag: str, nbytes: int = None) -> None:
        held = self._holders.get(tag, 0)
        release = held if nbytes is None else min(nbytes, held)
        if release == 0:
            return
        self._holders[tag] = held - release
        if self._holders[tag] == 0:
            del self._holders[tag]
        self._usage.add(-release)

    @property
    def used_bytes(self) -> int:
        return int(self._usage.value)

    def usage_of(self, tag: str) -> int:
        return self._holders.get(tag, 0)

    def usage_timeline(self) -> List[Tuple[int, float]]:
        return self._usage.timeline()

    def utilization(self) -> float:
        return self._bus.utilization()

    def register_metrics(self, registry, prefix: str = "host.mem") -> None:
        """Expose the footprint and bus instruments under ``prefix``."""
        scope = registry.scoped(prefix)
        scope.register("used_bytes", lambda: float(self._usage.value))
        scope.register("used_bytes.mean", self._usage.mean)
        scope.register("bus.util", self._bus.utilization)
        scope.register("bytes_moved", lambda: float(self.bytes_moved))

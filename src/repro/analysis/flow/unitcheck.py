"""Unit-of-measure inference and the SIM201-SIM203 rule family.

The simulator's contract is "integer nanoseconds and integer bytes
everywhere" (``repro/common/units.py``).  This pass infers a unit fact
for every expression from three sources and checks their composition:

* **name suffixes** — ``lat_ns`` is ns, ``nbytes`` is bytes, ``_lba``
  is sectors, ``_ppn``/``_lpn`` is pages, ``freq_hz`` is hz, and
  ``_us``/``_ms`` declare *sub-scale* time values that must be
  converted before they meet ns arithmetic;
* **``repro.common.units`` constants** — ``US``/``MS``/``SEC`` are
  ns-denominated conversion factors (``3 * US`` *is* 3 us expressed in
  ns), ``KB``/``MB``/``GB`` are byte quantities, ``MHZ``/``GHZ`` hz;
* **call summaries** — a function named ``*_ns`` returns ns; otherwise
  the callee's return expressions are inferred through the call graph
  (bounded depth, cycle-safe).

The algebra is deliberately small.  Quantities carry a base unit
(``ns us ms s bytes sectors pages hz``); conversion factors carry a
ratio (``US`` is ns-per-us).  Multiplying a us quantity by ``US``
yields ns; multiplying it by the *wrong* factor — or by another time
quantity — is a finding.  Adding, subtracting or comparing two
different base units is a finding.  Anything the pass cannot prove is
``unknown`` and stays silent: a finding means two *proven* facts
collided, never that inference gave up.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.flow.project import (
    FunctionInfo,
    Project,
    dotted_name,
    expand_alias,
    ordered_body,
)
from repro.analysis.registry import ProjectSite, project_rule

# -- the unit lattice ---------------------------------------------------------

#: base units a quantity can carry
TIME_UNITS = ("ns", "us", "ms", "s")
BASE_UNITS = TIME_UNITS + ("bytes", "sectors", "pages", "hz")


@dataclass(frozen=True)
class Unit:
    """A unit fact: a base quantity, or a num/den conversion ratio.

    ``Unit("ns")`` is a nanosecond quantity; ``Unit("ns", "us")`` is a
    ns-per-us conversion factor; ``Unit("ns", "byte")`` is what
    :func:`repro.common.units.ns_per_byte` returns.
    """

    num: str
    den: Optional[str] = None

    def __str__(self) -> str:
        return self.num if self.den is None else f"{self.num}/{self.den}"

    @property
    def is_ratio(self) -> bool:
        return self.den is not None


#: units of the repro.common.units constants, by dotted name
_CONSTANT_UNITS: Dict[str, Unit] = {
    "NS": Unit("ns"),
    "US": Unit("ns", "us"),
    "MS": Unit("ns", "ms"),
    "SEC": Unit("ns", "s"),
    "KB": Unit("bytes"),
    "MB": Unit("bytes"),
    "GB": Unit("bytes"),
    "MHZ": Unit("hz"),
    "GHZ": Unit("hz"),
}

#: functions in repro.common.units with known return units
_HELPER_RETURNS: Dict[str, Unit] = {
    "transfer_ns": Unit("ns"),
    "cycles_to_ns": Unit("ns"),
    "ns_per_byte": Unit("ns", "bytes"),
}

#: the sanctioned byte->time conversion helpers (SIM203)
_SANCTIONED_CONVERTERS = ("transfer_ns", "ns_per_byte", "cycles_to_ns")

#: name-suffix table; checked longest-suffix-first on the lowercased name
_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_ns", "ns"), ("_us", "us"), ("_ms", "ms"),
    ("bytes", "bytes"), ("_lba", "sectors"), ("_slba", "sectors"),
    ("_ppn", "pages"), ("_lpn", "pages"), ("_hz", "hz"),
)

#: exact lowercased names with units (too short for suffix matching)
_EXACT_UNITS: Dict[str, str] = {
    "ns": "ns", "lba": "sectors", "slba": "sectors",
    "ppn": "pages", "lpn": "pages", "hz": "hz", "nbytes": "bytes",
}

#: calls that return a unitless count / preserve nothing
_SCALAR_CALLS = {"len", "range", "enumerate", "id", "hash", "ord"}

#: calls that preserve the unit of their (first) argument
_PRESERVING_CALLS = {"abs", "round", "int", "float", "min", "max"}

#: singular/plural word -> base unit, for `X_per_Y` ratio names
_UNIT_WORDS: Dict[str, str] = {
    "ns": "ns", "us": "us", "ms": "ms", "s": "s", "sec": "s",
    "byte": "bytes", "bytes": "bytes",
    "sector": "sectors", "sectors": "sectors", "lba": "sectors",
    "page": "pages", "pages": "pages", "ppn": "pages", "lpn": "pages",
    "hz": "hz",
}


def unit_of_identifier(name: str) -> Optional[Unit]:
    """The unit a bare identifier declares through its (suffix) name.

    ``X_per_Y`` names declare conversion ratios when both sides name a
    unit: ``sectors_per_page`` is sectors/pages, so dividing a sector
    count by it is understood as a pages result.
    """
    lowered = name.lower()
    if "_per_" in lowered:
        left, _, right = lowered.rpartition("_per_")
        num = _UNIT_WORDS.get(left.rpartition("_")[2])
        den = _UNIT_WORDS.get(right)
        if num is not None and den is not None:
            return Unit(num, den)
        return None
    exact = _EXACT_UNITS.get(lowered)
    if exact is not None:
        return Unit(exact)
    for suffix, base in _SUFFIX_UNITS:
        if lowered.endswith(suffix):
            return Unit(base)
    return None


# -- inference ----------------------------------------------------------------

@dataclass
class _UnitViolation:
    rule: str
    node: ast.AST
    message: str
    witness: Tuple[str, ...]


class _FunctionUnits:
    """One pass over a function: infer units, record violations."""

    def __init__(self, checker: "UnitChecker", func: FunctionInfo) -> None:
        self.checker = checker
        self.func = func
        self.env: Dict[str, Tuple[Unit, str]] = {}   # name -> (unit, origin)
        self.violations: List[_UnitViolation] = []
        self._quiet = 0      # >0: re-examining an expression; no reports
        for param in func.params:
            declared = unit_of_identifier(param)
            if declared is not None:
                self.env[param] = (declared, f"parameter `{param}`")

    def report(self, violation: _UnitViolation) -> None:
        if not self._quiet:
            self.violations.append(violation)

    def infer_quiet(self, node: ast.expr) -> Optional[Tuple[Unit, str]]:
        """Infer without reporting (for re-examined subexpressions)."""
        self._quiet += 1
        try:
            return self.infer(node)
        finally:
            self._quiet -= 1

    # -- entry -------------------------------------------------------------

    def run(self) -> List[_UnitViolation]:
        declared_return = unit_of_identifier(self.func.name)
        for stmt in ordered_body(self.func.node):
            self.visit_stmt(stmt, declared_return)
        return self.violations

    # -- statements --------------------------------------------------------

    def visit_stmt(self, stmt: ast.stmt,
                   declared_return: Optional[Unit]) -> None:
        if isinstance(stmt, ast.Assign):
            fact = self.infer(stmt.value)
            for target in stmt.targets:
                self.check_binding(target, stmt.value, fact)
                if isinstance(target, ast.Name):
                    self.bind(target.id, stmt.value, fact)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            fact = self.infer(stmt.value)
            self.check_binding(stmt.target, stmt.value, fact)
            if isinstance(stmt.target, ast.Name):
                self.bind(stmt.target.id, stmt.value, fact)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                left = self.fact_of_target(stmt.target)
                right = self.infer(stmt.value)
                self.check_additive(stmt, left, right)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            fact = self.infer(stmt.value)
            if declared_return is not None:
                self.check_flow(
                    stmt.value, fact, declared_return,
                    f"return from `{self.func.name}()` "
                    f"(declared {declared_return} by its name)")
        else:
            for expr in self._stmt_exprs(stmt):
                self.infer(expr)

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
        for field_name in ("value", "test", "iter"):
            value = getattr(stmt, field_name, None)
            if isinstance(value, ast.expr):
                yield value

    def bind(self, name: str, value: ast.expr,
             fact: Optional[Tuple[Unit, str]]) -> None:
        declared = unit_of_identifier(name)
        if fact is not None:
            self.env[name] = fact
        elif declared is not None:
            self.env[name] = (declared, f"name `{name}`")

    def fact_of_target(self, target: ast.expr) -> Optional[Tuple[Unit, str]]:
        if isinstance(target, ast.Name):
            if target.id in self.env:
                return self.env[target.id]
            declared = unit_of_identifier(target.id)
            if declared is not None:
                return declared, f"name `{target.id}`"
        elif isinstance(target, ast.Attribute):
            declared = unit_of_identifier(target.attr)
            if declared is not None:
                return declared, f"attribute `.{target.attr}`"
        return None

    # -- checks ------------------------------------------------------------

    def check_binding(self, target: ast.expr, value: ast.expr,
                      fact: Optional[Tuple[Unit, str]]) -> None:
        declared = self.fact_of_target(target)
        if declared is None:
            return
        name = ast.unparse(target)
        self.check_flow(value, fact, declared[0], f"assignment to `{name}`")
        if declared[0] == Unit("ns"):
            self.check_raw_byte_math(value, f"assignment to `{name}`")

    def check_flow(self, node: ast.expr, fact: Optional[Tuple[Unit, str]],
                   expected: Unit, context: str) -> None:
        """A value flowing into a context that declares ``expected``."""
        if fact is None or fact[0].is_ratio:
            return
        actual = fact[0]
        if actual == expected or actual.num not in BASE_UNITS:
            return
        if expected.num in TIME_UNITS and actual.num in TIME_UNITS:
            self.report(_UnitViolation(
                "SIM202", node,
                f"{context} mixes time scales: value is {actual} "
                f"({fact[1]}) but the target declares {expected}; "
                f"convert with the units constants "
                f"(`x_{actual.num} * {actual.num.upper()}`)",
                witness=(f"value: {actual} via {fact[1]}",
                         f"target: {expected} via {context}")))
        else:
            self.report(_UnitViolation(
                "SIM202", node,
                f"{context} changes units: value is {actual} ({fact[1]}) "
                f"but the target declares {expected}",
                witness=(f"value: {actual} via {fact[1]}",
                         f"target: {expected} via {context}")))

    def check_additive(self, node: ast.AST,
                       left: Optional[Tuple[Unit, str]],
                       right: Optional[Tuple[Unit, str]]) -> None:
        if left is None or right is None:
            return
        lu, ru = left[0], right[0]
        if lu.is_ratio or ru.is_ratio or lu == ru:
            return
        if lu.num in BASE_UNITS and ru.num in BASE_UNITS:
            self.report(_UnitViolation(
                "SIM201", node,
                f"mixed-unit arithmetic: {lu} ({left[1]}) and {ru} "
                f"({right[1]}) cannot be added/compared",
                witness=(f"left: {lu} via {left[1]}",
                         f"right: {ru} via {right[1]}")))

    def check_raw_byte_math(self, expr: ast.expr, context: str) -> None:
        """SIM203: bytes scaled by a raw literal reaching a time target."""
        if any(isinstance(n, ast.Call)
               and self._call_leaf(n) in _SANCTIONED_CONVERTERS
               for n in ast.walk(expr)):
            return
        for node in ast.walk(expr):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Mult, ast.Div))):
                continue
            sides = [(node.left, node.right), (node.right, node.left)]
            for unit_side, literal_side in sides:
                fact = self.infer_quiet(unit_side)
                if fact is None or fact[0] != Unit("bytes"):
                    continue
                if isinstance(literal_side, ast.Constant) and \
                        isinstance(literal_side.value, (int, float)):
                    self.report(_UnitViolation(
                        "SIM203", node,
                        f"raw-literal time math in {context}: bytes "
                        f"({fact[1]}) scaled by the bare literal "
                        f"{literal_side.value!r}; route byte->time "
                        "conversions through transfer_ns()/ns_per_byte()",
                        witness=(f"bytes operand via {fact[1]}",
                                 f"bare literal {literal_side.value!r}")))

    def _call_leaf(self, call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        return dotted.split(".")[-1] if dotted else None

    # -- expression inference ----------------------------------------------

    def infer(self, node: ast.expr) -> Optional[Tuple[Unit, str]]:
        """The (unit, origin) fact for an expression, or None."""
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            const = self._constant_unit(node)
            if const is not None:
                return const
            declared = unit_of_identifier(node.id)
            if declared is not None:
                return declared, f"name `{node.id}`"
            return None
        if isinstance(node, ast.Attribute):
            const = self._constant_unit(node)
            if const is not None:
                return const
            declared = unit_of_identifier(node.attr)
            if declared is not None:
                return declared, f"attribute `.{node.attr}`"
            return None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Compare):
            left_fact = self.infer(node.left)
            for comparator in node.comparators:
                self.check_additive(node, left_fact, self.infer(comparator))
            return None
        if isinstance(node, ast.IfExp):
            return self.infer(node.body) or self.infer(node.orelse)
        if isinstance(node, ast.Subscript):
            return self.infer(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)) and \
                node.value is not None:
            self.infer(node.value)
            return None
        return None

    def _constant_unit(self, node: ast.expr) -> Optional[Tuple[Unit, str]]:
        dotted = dotted_name(node)
        if dotted is None:
            return None
        expanded = expand_alias(dotted, self.func.module.aliases)
        leaf = expanded.split(".")[-1]
        if leaf in _CONSTANT_UNITS and (
                expanded == leaf or "units" in expanded
                or "common" in expanded):
            return _CONSTANT_UNITS[leaf], f"constant `{leaf}`"
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[Tuple[Unit, str]]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self.check_additive(node, left, right)
            return left or right
        if isinstance(node.op, ast.Mult):
            return self._infer_mult(node, left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return self._infer_div(node, left, right)
        if isinstance(node.op, ast.Mod):
            return left
        return None

    def _infer_mult(self, node: ast.BinOp, left, right):
        if left is None and right is None:
            return None
        if left is None or right is None:       # scalar * U -> U
            return left or right
        lu, ru = left[0], right[0]
        for qty, factor in ((left, right), (right, left)):
            if not qty[0].is_ratio and factor[0].is_ratio:
                if qty[0].num == factor[0].den:      # us * ns/us -> ns
                    return (Unit(factor[0].num),
                            f"{qty[1]} converted by {factor[1]}")
                if qty[0].num in TIME_UNITS and \
                        factor[0].den in TIME_UNITS:
                    self.report(_UnitViolation(
                        "SIM202", node,
                        f"wrong conversion constant: {qty[0]} value "
                        f"({qty[1]}) scaled by {factor[0]} ({factor[1]}); "
                        f"a {qty[0]} value converts to ns with "
                        f"`{qty[0].num.upper()}`",
                        witness=(f"value: {qty[0]} via {qty[1]}",
                                 f"factor: {factor[0]} via {factor[1]}")))
                    return None
                if qty[0].num == "bytes" and factor[0].den == "byte":
                    return Unit(factor[0].num), \
                        f"{qty[1]} converted by {factor[1]}"
                return None
        if not lu.is_ratio and not ru.is_ratio and \
                lu.num in TIME_UNITS and ru.num in TIME_UNITS:
            self.report(_UnitViolation(
                "SIM201", node,
                f"time*time multiplication: {lu} ({left[1]}) * {ru} "
                f"({right[1]}) is never a duration; one operand needs "
                "a units conversion constant",
                witness=(f"left: {lu} via {left[1]}",
                         f"right: {ru} via {right[1]}")))
        return None

    def _infer_div(self, node: ast.BinOp, left, right):
        if left is None:
            return None
        if right is None:                        # U / scalar -> U
            return left
        lu, ru = left[0], right[0]
        if lu == ru:
            return None                          # U / U -> scalar
        if ru.is_ratio and not lu.is_ratio and lu.num == ru.num:
            return Unit(ru.den), f"{left[1]} divided by {right[1]}"
        return None

    def _infer_call(self, node: ast.Call) -> Optional[Tuple[Unit, str]]:
        leaf = self._call_leaf(node)
        arg_facts = [self.infer(arg) for arg in node.args]
        for kw in node.keywords:
            self.infer(kw.value)
        if leaf in _SCALAR_CALLS:
            return None
        if leaf in _PRESERVING_CALLS:
            for arg_pair in zip(arg_facts, arg_facts[1:]):
                self.check_additive(node, arg_pair[0], arg_pair[1])
            known = [f for f in arg_facts if f is not None]
            return known[0] if known else None
        if leaf in _HELPER_RETURNS:
            return _HELPER_RETURNS[leaf], f"call `{leaf}()`"
        # timeout(x): the canonical ns context
        if leaf == "timeout" and node.args:
            self.check_flow(node.args[0], arg_facts[0], Unit("ns"),
                            "`timeout()` argument (simulated-time ns)")
            self.check_raw_byte_math(node.args[0], "`timeout()` argument")
        self._check_call_args(node, arg_facts)
        summary = self.checker.return_unit_of_call(self.func, node)
        if summary is not None:
            return summary
        if leaf is not None:
            declared = unit_of_identifier(leaf)
            if declared is not None:
                return declared, f"call `{leaf}()` (name suffix)"
        return None

    def _check_call_args(self, node: ast.Call,
                         arg_facts: List[Optional[Tuple[Unit, str]]]) -> None:
        """Argument units must match suffix-declared parameter units."""
        targets = self.checker.project.resolve_call(self.func, node)
        if len(targets) != 1:
            return
        callee = targets[0]
        params = callee.params
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        for index, arg in enumerate(node.args):
            if index >= len(params):
                break
            declared = unit_of_identifier(params[index])
            if declared is None:
                continue
            fact = arg_facts[index]
            if fact is not None:
                self.check_flow(
                    arg, fact, declared,
                    f"argument `{params[index]}` of "
                    f"`{callee.name}()`")


class UnitChecker:
    """Project-wide unit inference with memoized call summaries."""

    #: recursion depth cap for return-unit inference through calls
    MAX_DEPTH = 3

    def __init__(self, project: Project) -> None:
        self.project = project
        self._return_units: Dict[str, Optional[Tuple[Unit, str]]] = {}
        self._in_flight: set = set()

    def return_unit_of_call(self, caller: FunctionInfo,
                            call: ast.Call) -> Optional[Tuple[Unit, str]]:
        """The (unit, origin) a resolvable call returns, if known."""
        targets = self.project.resolve_call(caller, call)
        if len(targets) != 1:
            return None
        return self.return_unit(targets[0])

    def return_unit(self, func: FunctionInfo,
                    depth: int = 0) -> Optional[Tuple[Unit, str]]:
        """The unit ``func`` returns: name suffix first, else inferred."""
        declared = unit_of_identifier(func.name)
        if declared is not None:
            return declared, f"call `{func.name}()` (name suffix)"
        if func.qualname in self._return_units:
            return self._return_units[func.qualname]
        if depth >= self.MAX_DEPTH or func.qualname in self._in_flight:
            return None
        self._in_flight.add(func.qualname)
        try:
            walker = _FunctionUnits(self, func)
            units: List[Unit] = []
            origin = ""
            for stmt in ordered_body(func.node):
                if isinstance(stmt, ast.Assign) and \
                        len(stmt.targets) == 1 and \
                        isinstance(stmt.targets[0], ast.Name):
                    fact = walker.infer(stmt.value)
                    walker.bind(stmt.targets[0].id, stmt.value, fact)
                elif isinstance(stmt, ast.Return) and stmt.value is not None:
                    fact = walker.infer(stmt.value)
                    if fact is None:
                        self._return_units[func.qualname] = None
                        return None
                    units.append(fact[0])
                    origin = fact[1]
            result = None
            if units and all(u == units[0] for u in units):
                result = (units[0],
                          f"return of `{func.name}()` ({origin})")
            self._return_units[func.qualname] = result
            return result
        finally:
            self._in_flight.discard(func.qualname)


# -- the registered rules -----------------------------------------------------

def _run_units(project: Project,
               rule_id: str) -> Iterator[ProjectSite]:
    # the three SIM20x wrappers share one analysis, cached per project
    cache = getattr(project, "_unit_violations", None)
    if cache is None:
        checker = UnitChecker(project)
        cache = [(func, violation)
                 for func in project.all_functions()
                 for violation in _FunctionUnits(checker, func).run()]
        project._unit_violations = cache  # type: ignore[attr-defined]
    for func, violation in cache:
        if violation.rule != rule_id:
            continue
        node = violation.node
        yield ProjectSite(
            path=func.module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=violation.message,
            witness=violation.witness)


@project_rule("SIM201", "mixed-unit-arithmetic",
              "Adding, subtracting or comparing two different measured "
              "units (ns + bytes, pages < sectors, a time*time product) "
              "is meaningless and almost always a lost conversion. Units "
              "are inferred from name suffixes (`lat_ns`, `nbytes`, "
              "`_lba`, `_ppn`, `_hz`), the repro.common.units constants, "
              "and callee return summaries through the call graph; only "
              "two *proven* facts ever collide, so a finding is evidence, "
              "not a guess.")
def check_mixed_units(project: Project) -> Iterator[ProjectSite]:
    yield from _run_units(project, "SIM201")


@project_rule("SIM202", "unit-changing-assignment",
              "A value with a proven unit flowing into a target that "
              "declares a different one — `lat_ns = nbytes`, a us value "
              "passed for a `_ns` parameter, a `*_us` quantity entering "
              "ns arithmetic unconverted, or a value scaled by the wrong "
              "units constant. The integer-ns contract only holds if "
              "every scale change goes through the units constants.")
def check_unit_assignment(project: Project) -> Iterator[ProjectSite]:
    yield from _run_units(project, "SIM202")


@project_rule("SIM203", "raw-literal-time-math",
              "A bytes quantity scaled by a bare numeric literal on its "
              "way into a time context (a `_ns` target or a `timeout()` "
              "argument) is a hand-rolled bandwidth conversion; it skips "
              "the rounding and minimum-latency rules of transfer_ns()/"
              "ns_per_byte() and silently drifts from every other "
              "transfer in the model.")
def check_raw_literal_time(project: Project) -> Iterator[ProjectSite]:
    yield from _run_units(project, "SIM203")

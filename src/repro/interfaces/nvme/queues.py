"""NVMe queue pairs: submission/completion rings with doorbell semantics.

The OS driver owns the tail of each submission queue and the head of each
completion queue; the controller owns the opposite ends.  Both sides
synchronize exclusively through doorbell registers (driver -> device) and
completion entries + MSI-X (device -> driver) — the rich-queue mechanism
that lets s-type storage scale to 65536 queues of 65536 entries.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.interfaces.nvme.structures import CompletionEntry, SubmissionEntry


class SubmissionQueue:
    def __init__(self, qid: int, depth: int) -> None:
        if depth < 2:
            raise ValueError("queue depth must be >= 2")
        self.qid = qid
        self.depth = depth
        self._ring: Deque[SubmissionEntry] = deque()
        self.tail = 0           # driver-written (via doorbell)
        self.head = 0           # device-consumed

    @property
    def occupancy(self) -> int:
        return len(self._ring)

    @property
    def is_full(self) -> bool:
        # one slot is kept open to disambiguate full from empty
        return self.occupancy >= self.depth - 1

    def push(self, entry: SubmissionEntry) -> None:
        if self.is_full:
            raise RuntimeError(f"SQ {self.qid} overflow")
        entry.queue_id = self.qid
        self._ring.append(entry)
        self.tail = (self.tail + 1) % self.depth

    def pop(self) -> Optional[SubmissionEntry]:
        if not self._ring:
            return None
        self.head = (self.head + 1) % self.depth
        return self._ring.popleft()


class CompletionQueue:
    def __init__(self, qid: int, depth: int) -> None:
        self.qid = qid
        self.depth = depth
        self._ring: Deque[CompletionEntry] = deque()
        self.tail = 0
        self.head = 0

    def post(self, entry: CompletionEntry) -> None:
        if len(self._ring) >= self.depth:
            raise RuntimeError(f"CQ {self.qid} overflow")
        self._ring.append(entry)
        self.tail = (self.tail + 1) % self.depth

    def reap(self) -> Optional[CompletionEntry]:
        if not self._ring:
            return None
        self.head = (self.head + 1) % self.depth
        return self._ring.popleft()


class QueuePair:
    """An SQ/CQ couple plus its doorbell state."""

    def __init__(self, qid: int, depth: int) -> None:
        self.qid = qid
        self.sq = SubmissionQueue(qid, depth)
        self.cq = CompletionQueue(qid, depth)
        # doorbell "registers": last tail/head values written
        self.sq_tail_doorbell = 0
        self.cq_head_doorbell = 0

    def ring_sq_doorbell(self) -> None:
        self.sq_tail_doorbell = self.sq.tail

    def ring_cq_doorbell(self) -> None:
        self.cq_head_doorbell = self.cq.head

    @property
    def device_work_pending(self) -> bool:
        return self.sq.occupancy > 0

"""Behavioural reimplementations of prior SSD simulators + real-device
reference curves.

Figures 3 and 4 contrast a real Intel 750 with MQSim, SSDSim, the SSD
Extension for DiskSim, and FlashSim.  Each baseline here reproduces the
*modeling scope* of its namesake — what it does and does not simulate —
because those omissions (no computation complex, no protocol, no host
initiator) are precisely what produce the trend classes the paper shows:
linear, constant, or non-saturating curves.
"""

from repro.baselines.models import (
    FlashSimModel,
    MQSimModel,
    SSDExtensionModel,
    SSDSimModel,
)
from repro.baselines.replay import ClosedLoopReplayer, ReplayResult
from repro.baselines.reference import REAL_DEVICES, reference_curve

__all__ = [
    "FlashSimModel",
    "SSDSimModel",
    "SSDExtensionModel",
    "MQSimModel",
    "ClosedLoopReplayer",
    "ReplayResult",
    "REAL_DEVICES",
    "reference_curve",
]

#!/usr/bin/env python3
"""Design-space exploration: what to spend silicon on.

Sweeps three axes of the SSD configuration — channel count, embedded
core frequency, and over-provisioning — and measures where each one
stops paying.  This is the kind of study the paper positions Amber for:
the bottleneck migrates between the storage complex, the computation
complex and GC depending on the design point.
"""

from repro.core import FioJob, FullSystem, presets
from repro.ssd.config import CoreConfig, FlashGeometry


def measure(device, rw="randread", depth=32, n_ios=1200):
    system = FullSystem(device=device, interface="nvme")
    system.precondition()
    result = system.run_fio(FioJob(rw=rw, bs=4096, iodepth=depth,
                                   total_ios=n_ios))
    return result.bandwidth_mbps


def sweep_channels():
    print("\nChannel count (4K random read, QD32)")
    base = presets.intel750()
    for channels in (2, 4, 8, 12):
        geometry = FlashGeometry(
            channels=channels, packages_per_channel=5, dies_per_package=1,
            planes_per_die=2, blocks_per_plane=16, pages_per_block=256,
            page_size=4096)
        device = base.with_overrides(geometry=geometry)
        print(f"  {channels:>2} channels: {measure(device):7.0f} MB/s")


def sweep_core_frequency():
    print("\nEmbedded core frequency (4K random read, QD32)")
    base = presets.intel750()
    for mhz in (200, 400, 800, 1600):
        cores = CoreConfig(n_cores=3, frequency=mhz * 1_000_000,
                           energy_per_instruction=400e-12,
                           leakage_per_core=0.55)
        device = base.with_overrides(cores=cores)
        print(f"  {mhz:>4} MHz: {measure(device):7.0f} MB/s")


def sweep_embedded_cores():
    print("\nEmbedded core count (4K random read, QD32)")
    base = presets.intel750()
    for n in (1, 2, 3):
        cores = CoreConfig(n_cores=n, frequency=800_000_000,
                           energy_per_instruction=400e-12,
                           leakage_per_core=0.55)
        device = base.with_overrides(cores=cores)
        print(f"  {n} core(s): {measure(device):7.0f} MB/s")


def main() -> None:
    print("SSD design-space exploration (Intel 750 baseline)")
    print("=" * 56)
    sweep_channels()
    sweep_core_frequency()
    sweep_embedded_cores()
    print("\nReading: channels feed bandwidth only while the computation")
    print("complex keeps up; once the firmware cores saturate, frequency")
    print("and core count become the levers — exactly why Amber models")
    print("the computation complex at all.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration: what to spend silicon on — as a fleet sweep.

Sweeps three axes of the SSD configuration — channel count, embedded
core frequency, and embedded core count — and measures where each one
stops paying.  This is the kind of study the paper positions Amber for:
the bottleneck migrates between the storage complex, the computation
complex and GC depending on the design point.

Each axis used to be a hand-rolled loop simulating one config at a
time in this process.  It is now *data*: three declarative
``SweepSpec``s (the same built-ins ``python -m repro.fleet`` exposes)
executed by the fleet runner, which fans jobs out over worker
processes, skips configurations already in the result store, and
merges per-job telemetry into one report.  Re-running this script is
therefore incremental, and ``--jobs N`` changes nothing but wall-clock
time — per-job seeds derive from config hashes, so the merged numbers
are byte-identical at any worker count (``docs/FLEET.md``).
"""

import argparse
import tempfile

from repro.fleet import (
    ResultStore,
    builtin_specs,
    merge_results,
    run_sweep,
)

AXES = ("design_space_channels", "design_space_frequency",
        "design_space_cores")
AXIS_UNITS = {"channels": "channels", "core_mhz": "MHz", "n_cores": "core(s)"}


def explore(store_dir: str, jobs: int) -> None:
    """Run the three design-space sweeps and print the merged curves."""
    store = ResultStore(store_dir)
    specs = builtin_specs()
    for name in AXES:
        spec = specs[name]
        summary = run_sweep(spec, store, jobs=jobs, resume=True)
        doc = merge_results(spec, store)
        axis = next(iter(spec.axes))
        fresh = f", {len(summary.executed)} newly simulated" \
            if summary.executed else " (all cached)"
        print(f"\n{axis} (4K random read, QD32){fresh}")
        for group in doc["groups"]:
            latency = group.get("latency", {})
            print(f"  {group['value']:>5} {AXIS_UNITS[axis]:<10}"
                  f"{group['mean_bandwidth_mbps']:7.0f} MB/s   "
                  f"p99 {latency.get('p99', 0.0):7.1f} us")


def main() -> None:
    """CLI wrapper: pick a result store and a worker count."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result store (default: a temp dir; pass a "
                             "real path to make reruns incremental)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="worker processes (default 2)")
    args = parser.parse_args()

    print("SSD design-space exploration (Intel 750 baseline)")
    print("=" * 56)
    if args.store:
        explore(args.store, args.jobs)
    else:
        with tempfile.TemporaryDirectory(prefix="fleet-dse-") as tmp:
            explore(tmp, args.jobs)
    print("\nReading: channels feed bandwidth only while the computation")
    print("complex keeps up; once the firmware cores saturate, frequency")
    print("and core count become the levers — exactly why Amber models")
    print("the computation complex at all.")


if __name__ == "__main__":
    main()

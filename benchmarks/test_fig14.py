"""Figure 14: host CPU frequency sweep on the fastest SSD."""

from repro.experiments import fig14_frequency as experiment

from benchmarks.conftest import run_experiment


def test_fig14_frequency_sweep(benchmark):
    result = run_experiment(benchmark, experiment)
    freqs = result["frequencies_ghz"]
    user = result["user_level_mbps"]
    device = result["device_level_mbps"]
    interface = result["interface_level_mbps"]
    # ordering: device capability > interface-level > user-level at low GHz
    assert device > interface
    assert interface >= user[freqs[0]]
    # user-level improves with host frequency...
    assert user[freqs[-1]] > user[freqs[0]]
    # ...but never reaches device-level (paper: still -29% at 8 GHz)
    assert user[freqs[-1]] < device
    # loss at the lowest frequency is substantial (paper: 41% at 2 GHz)
    assert result["degradation"][freqs[0]] > 0.25

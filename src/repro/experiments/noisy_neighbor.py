"""Noisy neighbor: tenant interference and what QoS mechanisms recover.

A latency-sensitive *victim* (open-loop Poisson random reads with a
Zipfian hotspot) shares one SSD with a write-storm *aggressor*
(closed-loop large sequential-ish random writes that keep GC hot).
Four variants isolate where the victim's tail latency goes and which
mechanism buys it back:

* ``isolated`` — the victim alone on the device: the baseline tail.
* ``rr``       — co-located, plain round-robin arbitration: the
  aggressor's large writes and the GC they trigger inflate victim p99.
* ``wfq``      — co-located, weighted fair queueing with the victim
  weighted 8:1: the HIL stops letting the write backlog starve reads
  (arbitration-level recovery; shared-GC interference remains).
* ``banded``   — co-located, banded line placement with ample command
  slots: each namespace maps to its own channel+die band, so the
  aggressor's programs and the GC they trigger never touch the victim's
  path.  This attacks the *other* bottleneck: where WFQ reorders fetch
  at a scarce in-flight window, banding removes die/GC contention
  outright (no fair queueing needed — plain ``rr`` with an unbounded
  window), at the cost of halving each tenant's peak parallelism.
  Recovery is near-total: victim p99 lands within ~2x of ``isolated``.

The device runs its data cache write-through: a shared write-back
cache couples tenants through dirty-line eviction (a read miss can
wait on a flush stuck behind the aggressor's GC), which would mask
both mechanisms under test.  Cache partitioning is its own mechanism,
out of scope here.

The assertions pinned by ``tests/test_multitenant_differential.py``:
victim p99 under ``rr`` strictly exceeds ``isolated``, and both ``wfq``
and ``banded`` measurably recover from ``rr``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import format_series
from repro.common.units import KB
from repro.core.system import FullSystem
from repro.core.tenants import MultiTenantJob, TenantSpec
from repro.ssd.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    FILConfig,
    FlashGeometry,
    FlashTiming,
    FTLConfig,
    HILConfig,
    SSDConfig,
)

VARIANTS = ("isolated", "rr", "wfq", "banded")

#: WFQ weight for the victim (aggressor gets 1)
VICTIM_WEIGHT = 8


def _device(arbitration: str, placement: str, inflight_limit: int,
            quick: bool) -> SSDConfig:
    """A small shared device that backs up under a write storm.

    ``superpage_channels=1`` keeps one channel per band, so ``banded``
    placement gives each tenant private channels *and* private dies;
    a finite ``inflight_limit`` makes commands queue at the HIL, where
    the arbiter — not arrival order — decides who waits.
    """
    geometry = FlashGeometry(
        channels=2, packages_per_channel=2 if quick else 4,
        dies_per_package=1, planes_per_die=2, blocks_per_plane=32,
        pages_per_block=16 if quick else 32, page_size=4 * KB)
    return SSDConfig(
        name=f"noisy-{arbitration}-{placement}",
        geometry=geometry,
        timing=FlashTiming(
            t_read_fast=57_000, t_read_slow=94_000,
            t_prog_fast=413_000, t_prog_slow=1_800_000,
            t_erase=3_000_000, bits_per_cell=2, channel_bus_mhz=333),
        dram=DramConfig(size=8 << 20),
        cores=CoreConfig(n_cores=3, frequency=500_000_000),
        cache=CacheConfig(enabled=False),
        ftl=FTLConfig(overprovision=0.10, gc_threshold_free_blocks=1),
        hil=HILConfig(arbitration=arbitration,
                      qos_weights=(VICTIM_WEIGHT, 1),
                      inflight_limit=inflight_limit),
        fil=FILConfig(placement=placement),
        superpage_channels=1, superpage_ways=1,
    )


def _tenants(variant: str, quick: bool) -> List[TenantSpec]:
    """The victim (and, unless isolated, the aggressor) for a variant."""
    victim = TenantSpec(
        name="victim", rw="randread", bs=4 * KB,
        arrival={"kind": "poisson", "rate_iops": 6_000 if quick else 10_000},
        zipf_theta=0.9, weight=VICTIM_WEIGHT, priority=0,
        size_fraction=0.5)
    if variant == "isolated":
        return [victim]
    aggressor = TenantSpec(
        name="aggressor", rw="randwrite", bs=8 * KB,
        iodepth=32, weight=1, priority=2, size_fraction=0.5)
    return [victim, aggressor]


def _variant_config(variant: str) -> Dict:
    """Device knobs per variant (isolated runs the rr baseline device).

    ``inflight_limit`` is part of each mechanism's configuration: the
    arbitration variants keep a scarce in-flight window (8 slots) so
    the arbiter's fetch order is what shapes the tail; the banding
    variant runs an unbounded window so die isolation — not slot
    scheduling — is the mechanism under test.
    """
    return {
        "isolated": {"arbitration": "rr", "placement": "rotate",
                     "inflight_limit": 8},
        "rr": {"arbitration": "rr", "placement": "rotate",
               "inflight_limit": 8},
        "wfq": {"arbitration": "wfq", "placement": "rotate",
                "inflight_limit": 8},
        "banded": {"arbitration": "rr", "placement": "banded",
                   "inflight_limit": 0},
    }[variant]


def run(quick: bool = True, runtime_ms: Optional[int] = None,
        variants=None, seed: int = 4242) -> Dict:
    """Run every variant; report victim tail latency and device effects."""
    runtime_ns = (runtime_ms or (60 if quick else 200)) * 1_000_000
    out: Dict = {"variants": {}, "victim_p99_us": {}}
    for variant in (variants or VARIANTS):
        knobs = _variant_config(variant)
        config = _device(knobs["arbitration"], knobs["placement"],
                         knobs["inflight_limit"], quick)
        system = FullSystem(device=config, interface="nvme")
        system.precondition()
        job = MultiTenantJob(tenants=_tenants(variant, quick),
                             runtime_ns=runtime_ns, seed=seed,
                             warmup_fraction=0.2)
        result = system.run_multi_tenant(job)
        victim = result.tenant(0)
        doc = {
            "arbitration": result.arbitration,
            "placement": knobs["placement"],
            "victim": victim.summary(),
            "fairness": result.fairness,
            "grants": {str(qid): count
                       for qid, count in sorted(result.grants.items())},
            "write_amplification":
                result.ssd_stats.get("write_amplification", 1.0),
            "gc_runs": result.ssd_stats.get("gc_runs", 0),
            "tenant_metrics": {
                f"tenant{i}": system.metrics.snapshot(f"tenant{i}")
                for i in range(len(result.tenants))},
        }
        if len(result.tenants) > 1:
            doc["aggressor"] = result.tenant(1).summary()
        out["variants"][variant] = doc
        out["victim_p99_us"][variant] = doc["victim"]["p99_latency_us"]
    out["recovery"] = _recovery(out["victim_p99_us"])
    return out


def _recovery(p99: Dict[str, float]) -> Dict[str, float]:
    """Victim p99 ratios: how bad rr got, how much each fix bought back."""
    ratios: Dict[str, float] = {}
    rr = p99.get("rr")
    isolated = p99.get("isolated")
    if rr and isolated:
        ratios["rr_vs_isolated"] = rr / isolated
    for fix in ("wfq", "banded"):
        if rr and p99.get(fix):
            ratios[f"{fix}_vs_rr"] = p99[fix] / rr
    return ratios


def render(results: Dict) -> str:
    """Victim p99 per variant plus the interference/recovery ratios."""
    table = format_series(
        {"victim p99 (µs)": {variant: round(value, 1)
                             for variant, value in
                             results["victim_p99_us"].items()}},
        "variant", "Noisy neighbor: victim tail latency")
    lines = [table, ""]
    for name, value in sorted(results["recovery"].items()):
        lines.append(f"  {name}: {value:.2f}x")
    return "\n".join(lines)

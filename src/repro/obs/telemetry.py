"""Telemetry epochs: the process-wide switch and per-simulator probe.

Like span tracing (:mod:`repro.obs.runtime`), telemetry is a
process-wide switch because experiments build a fresh ``Simulator`` per
data point.  :func:`enable_telemetry` arms it; afterwards every new
``Simulator`` asks :func:`probe_for` and receives a live
:class:`TelemetryProbe` that the engine's hot loop consults once per
processed event.  With the switch off — the default and the tier-1
state — :func:`probe_for` returns ``None`` and the engine pays exactly
one ``is not None`` test per event, scheduling nothing, so runs are
bit-identical to a build without this module.

The probe does three things, all in *observation only* — it never
schedules events, acquires resources or advances the clock, so even
**enabled** telemetry leaves ``events_processed``, simulated times and
every figure byte-identical (a pinned test holds this to any
``epoch_ns``):

* **epoch sampling** — when event processing crosses an ``epoch_ns``
  boundary, every metric of the bound
  :class:`~repro.obs.metrics.MetricsRegistry` (plus built-in engine
  gauges) is read into a bounded
  :class:`~repro.obs.timeseries.TimeSeries`;
* **flight recording** — each processed event's time and type go into a
  bounded ring (:mod:`repro.obs.flightrec`);
* **failure dumps** — when ``run_process`` raises, the engine calls
  :meth:`TelemetryProbe.on_failure` and the ring, open spans and last
  metric sample land in a ``flightrec-*.json`` post-mortem.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.flightrec import FlightRecorder
from repro.obs.timeseries import TimeSeries

#: sentinel "never fires" deadline for disabled epoch sampling
_NEVER = 1 << 62

_active = False
_epoch_ns = 100_000
_flight_events = 256
_max_points = 512
_dump_dir: Optional[str] = None
_probes: List["TelemetryProbe"] = []
_epoch_listener: Optional[Callable[["TelemetryProbe", int], None]] = None


def telemetry_enabled() -> bool:
    """True while the process-wide telemetry switch is on."""
    return _active


def enable_telemetry(epoch_ns: int = 100_000, flight_events: int = 256,
                     max_points: int = 512,
                     dump_dir: Optional[str] = None) -> None:
    """Arm telemetry for every subsequently-built simulator.

    ``epoch_ns`` is the sampling period in simulated ns; ``flight_events``
    bounds the flight-recorder ring; ``max_points`` bounds each time
    series; ``dump_dir`` is where failure post-mortems are written
    (default: the current directory).
    """
    global _active, _epoch_ns, _flight_events, _max_points, _dump_dir
    if epoch_ns < 1:
        raise ValueError("epoch_ns must be >= 1")
    _active = True
    _epoch_ns = int(epoch_ns)
    _flight_events = int(flight_events)
    _max_points = int(max_points)
    _dump_dir = dump_dir
    _probes.clear()


def disable_telemetry() -> None:
    """Turn telemetry off and drop every collected probe."""
    global _active
    _active = False
    _probes.clear()


def set_epoch_listener(
        listener: Optional[Callable[["TelemetryProbe", int], None]]) -> None:
    """Install (or clear, with None) the process-wide epoch listener.

    The listener is called as ``listener(probe, t_ns)`` each time a
    probe crosses an epoch boundary — *after* the metric sweep, still
    in observation-only territory (it must not schedule events or touch
    simulator state).  The run journal (:mod:`repro.obs.journal`) uses
    this to emit wall-clock heartbeats while a fleet job simulates.
    Costs one global read per crossed epoch when unset; nothing per
    event.
    """
    global _epoch_listener
    _epoch_listener = listener


def probe_for(sim) -> Optional["TelemetryProbe"]:
    """A live probe for a new simulator, or ``None`` when off."""
    if not _active:
        return None
    probe = TelemetryProbe(sim, epoch_ns=_epoch_ns,
                           flight_events=_flight_events,
                           max_points=_max_points, dump_dir=_dump_dir,
                           label=f"system{len(_probes)}")
    _probes.append(probe)
    return probe


def probes() -> List["TelemetryProbe"]:
    """Every probe handed out since telemetry was enabled."""
    return list(_probes)


def label_latest_probe(label: str) -> None:
    """Name the most recent probe (no-op when telemetry is off)."""
    if _probes:
        _probes[-1].label = label
        _probes[-1].flight.label = label


class TelemetryProbe:
    """Per-simulator epoch sampler + flight recorder.

    ``on_event`` is the engine hot-loop entry point: ring-append plus a
    single integer comparison against ``next_due``; the expensive
    registry sweep happens at most once per crossed epoch boundary.
    """

    __slots__ = ("sim", "epoch_ns", "next_due", "max_points", "series",
                 "flight", "label", "epochs_sampled", "_readers",
                 "_dump_dir", "_registry")

    def __init__(self, sim, epoch_ns: int, flight_events: int,
                 max_points: int, dump_dir: Optional[str],
                 label: str) -> None:
        self.sim = sim
        self.epoch_ns = epoch_ns
        self.next_due = epoch_ns
        self.max_points = max_points
        self.series: Dict[str, TimeSeries] = {}
        self.flight = FlightRecorder(flight_events, label=label)
        self.label = label
        self.epochs_sampled = 0
        self._dump_dir = dump_dir
        self._registry = None
        # built-in engine gauges, available even for bare simulators
        self._readers: List[Tuple[str, Callable[[], float]]] = [
            ("sim.events_processed", lambda: float(sim.events_processed)),
            ("sim.queue_length", lambda: float(len(sim._queue))),
        ]

    # -- wiring ------------------------------------------------------------

    def bind_registry(self, registry, label: Optional[str] = None) -> None:
        """Adopt a system's metric registry as the epoch sample source.

        Called by ``FullSystem`` after it has registered every layer's
        instruments; sampling reads each source lazily per epoch.
        """
        self._registry = registry
        self._readers = self._readers[:2] + registry.readers()
        if label:
            self.label = label
            self.flight.label = label

    # -- the engine hot-loop hook -----------------------------------------

    def on_event(self, when: int, event) -> None:
        """Record one processed event; sample when an epoch boundary passes."""
        self.flight.note_event(when, type(event).__name__)
        if when >= self.next_due:
            self._sample(when)

    def _sample(self, when: int) -> None:
        """Read every bound metric into its time series; advance the epoch."""
        due = self.next_due
        epoch = self.epoch_ns
        while due <= when:
            due += epoch
        self.next_due = due
        t = due - epoch          # the boundary that was just crossed
        self.epochs_sampled += 1
        series = self.series
        for name, reader in self._readers:
            ts = series.get(name)
            if ts is None:
                ts = series[name] = TimeSeries(name, self.max_points)
            ts.append(t, reader())
        listener = _epoch_listener
        if listener is not None:
            listener(self, t)

    # -- failure path ------------------------------------------------------

    def last_sample(self) -> Dict[str, float]:
        """The most recent value of every sampled series."""
        return {name: ts.last_value for name, ts in sorted(self.series.items())}

    def on_failure(self, error: BaseException) -> Optional[str]:
        """Dump the flight-recorder post-mortem; returns the path.

        Never raises: a broken dump must not mask the original failure.
        """
        try:
            directory = self._dump_dir or "."
            base = "".join(c if c.isalnum() or c in "-_" else "-"
                           for c in self.label) or "sim"
            path = os.path.join(directory, f"flightrec-{base}.json")
            suffix = 1
            while os.path.exists(path):
                suffix += 1
                path = os.path.join(directory,
                                    f"flightrec-{base}-{suffix}.json")
            return self.flight.dump(path, sim=self.sim, error=error,
                                    metrics=self.last_sample() or None)
        except Exception:       # pragma: no cover - defensive
            return None

"""The benchmark regression gate: ``repro.bench.record``'s events/sec
comparison table and the ``python -m benchmarks.perf --compare`` CLI
that prints it and exits nonzero past ``--regress-threshold``
(``docs/PERFORMANCE.md``)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.bench.record import (
    format_regression_table,
    regression_table,
    worst_regression_pct,
)

BASE = {"kernel_churn": {"events_per_sec": 100_000.0, "wall_seconds": 1.0},
        "randread_nvme": {"events_per_sec": 80_000.0, "wall_seconds": 1.0}}


class TestRegressionTable:
    def test_delta_signs(self):
        current = {"kernel_churn": {"events_per_sec": 120_000.0},
                   "randread_nvme": {"events_per_sec": 40_000.0}}
        rows = regression_table(BASE, current)
        by_name = {row["scenario"]: row for row in rows}
        assert by_name["kernel_churn"]["delta_pct"] == 20.0
        assert by_name["randread_nvme"]["delta_pct"] == -50.0
        assert worst_regression_pct(rows) == 50.0

    def test_unshared_or_zero_scenarios_are_skipped(self):
        current = {"kernel_churn": {"events_per_sec": 0.0},
                   "brand_new": {"events_per_sec": 10.0}}
        assert regression_table(BASE, current) == []
        assert worst_regression_pct([]) == 0.0

    def test_improvements_never_count_as_regression(self):
        rows = regression_table(
            BASE, {"kernel_churn": {"events_per_sec": 150_000.0}})
        assert worst_regression_pct(rows) == 0.0

    def test_markdown_flags_past_threshold(self):
        rows = regression_table(
            BASE, {"kernel_churn": {"events_per_sec": 70_000.0},
                   "randread_nvme": {"events_per_sec": 85_000.0}})
        text = format_regression_table(rows, threshold_pct=15.0)
        assert "REGRESSED" in text
        assert "ok (faster)" in text
        assert "`kernel_churn`" in text

    def test_markdown_with_nothing_to_compare(self):
        assert "no comparable" in format_regression_table([])


# -- the CLI gate -------------------------------------------------------------

def _run_perf(*args, cwd):
    src_dir = Path(repro.__file__).parents[1]
    repo_root = src_dir.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + env.get("PYTHONPATH", "").split(os.pathsep))
    return subprocess.run(
        [sys.executable, "-m", "benchmarks.perf", "--profile", "smoke",
         "--repeats", "1", "--scenario", "kernel_churn", *args],
        capture_output=True, text=True, env=env, timeout=600,
        cwd=str(repo_root))


def _baseline_file(tmp_path, events_per_sec, profile="smoke"):
    doc = {"schema": 2, "date": "2026-01-01", "profile": profile,
           "notes": "fixture",
           "scenarios": {"kernel_churn": {
               "events_per_sec": events_per_sec, "wall_seconds": 1.0}}}
    path = tmp_path / "BENCH_fixture.json"
    path.write_text(json.dumps(doc))
    return path


class TestCompareCli:
    def test_ok_when_faster_than_baseline(self, tmp_path):
        baseline = _baseline_file(tmp_path, events_per_sec=1.0)
        proc = _run_perf("--compare", str(baseline),
                         "--out", str(tmp_path / "out.json"), cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "regression gate ok" in proc.stderr
        assert "| scenario |" in proc.stdout

    def test_fails_past_threshold(self, tmp_path):
        baseline = _baseline_file(tmp_path, events_per_sec=1e12)
        proc = _run_perf("--compare", str(baseline),
                         "--out", str(tmp_path / "out.json"), cwd=tmp_path)
        assert proc.returncode == 1
        assert "FAIL" in proc.stderr and "exceeds" in proc.stderr
        assert "REGRESSED" in proc.stdout

    def test_cross_profile_baseline_skips_the_gate(self, tmp_path):
        # events/sec is not comparable across profile sizes: the table
        # prints, the hard gate does not fire
        baseline = _baseline_file(tmp_path, events_per_sec=1e12,
                                  profile="full")
        proc = _run_perf("--compare", str(baseline),
                         "--out", str(tmp_path / "out.json"), cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "gate skipped" in proc.stderr
        assert "| scenario |" in proc.stdout

    def test_threshold_is_tunable(self, tmp_path):
        baseline = _baseline_file(tmp_path, events_per_sec=1e12)
        proc = _run_perf("--compare", str(baseline),
                         "--regress-threshold", "1e15",
                         "--out", str(tmp_path / "out.json"), cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr

    def test_self_profile_writes_attribution_artifacts(self, tmp_path):
        base = tmp_path / "attr"
        proc = _run_perf("--self-profile", str(base),
                         "--out", str(tmp_path / "out.json"), cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        markdown = (tmp_path / "attr.md").read_text()
        assert "Top-" in markdown and "hottest layers" in markdown
        trace = json.loads((tmp_path / "attr.trace.json").read_text())
        assert trace["traceEvents"]

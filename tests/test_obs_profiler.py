"""The wall-clock self-profiler (``repro.obs.profiler``): zero cost and
zero presence when off, bit-identical simulation when on, >= 95% of
measured wall time attributed across the pinned perf scenarios, and the
Markdown/Chrome-trace exports the CI artifact is built from
(``docs/OBSERVABILITY.md``, "Live runs & profiling")."""

import json

import pytest

from repro.bench.scenarios import SCENARIOS
from repro.obs import profiler as profiler_mod
from repro.obs.profiler import (
    WallProfiler,
    attribution,
    attribution_markdown,
    chrome_profile_trace,
    disable_profiling,
    enable_profiling,
    hottest_layers,
    profiler_for,
    profilers,
    profiling_enabled,
    write_profile,
    write_profile_trace,
)
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def _profiling_off():
    """Every test starts and ends with the switch off."""
    disable_profiling()
    yield
    disable_profiling()


def _pingpong(sim, rounds=50):
    """A deterministic little workload for equivalence checks."""
    def proc():
        total = 0
        for _ in range(rounds):
            yield sim.timeout(7)
            total += sim.now
        return total
    return proc()


# -- the switch ---------------------------------------------------------------

class TestSwitch:
    def test_off_by_default(self):
        assert not profiling_enabled()
        assert Simulator().profiler is None
        assert profilers() == []

    def test_enable_arms_new_simulators(self):
        enable_profiling()
        assert profiling_enabled()
        sim = Simulator()
        assert isinstance(sim.profiler, WallProfiler)
        assert profilers() == [sim.profiler]

    def test_disable_drops_collected_profilers(self):
        enable_profiling()
        Simulator()
        disable_profiling()
        assert not profiling_enabled()
        assert profilers() == []
        assert Simulator().profiler is None

    def test_profiler_for_is_the_factory(self):
        assert profiler_for(object()) is None
        enable_profiling()
        assert isinstance(profiler_for(object()), WallProfiler)

    def test_max_slices_must_be_positive(self):
        with pytest.raises(ValueError, match="max_slices"):
            enable_profiling(max_slices=0)


# -- behavioural equivalence --------------------------------------------------

class TestBitIdentical:
    def test_run_process_identical_on_and_off(self):
        plain = Simulator()
        value_plain = plain.run_process(_pingpong(plain))
        enable_profiling()
        profiled = Simulator()
        value_profiled = profiled.run_process(_pingpong(profiled))
        assert value_profiled == value_plain
        assert profiled.now == plain.now
        assert profiled.events_processed == plain.events_processed

    def test_run_identical_on_and_off(self):
        def drive(sim):
            fired = []
            for index in range(40):
                sim.schedule(index * 3, fired.append, index)
            sim.run(until=60)
            sim.run()
            return fired

        plain = Simulator()
        fired_plain = drive(plain)
        enable_profiling()
        profiled = Simulator()
        fired_profiled = drive(profiled)
        assert fired_profiled == fired_plain
        assert profiled.now == plain.now
        assert profiled.events_processed == plain.events_processed

    def test_run_until_deadline_semantics_match(self):
        enable_profiling()
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run(until=50)
        assert sim.now == 50 and sim.events_processed == 0
        with pytest.raises(ValueError, match="past"):
            sim.run(until=10)

    def test_run_process_failure_paths_match(self):
        enable_profiling()
        sim = Simulator()

        def boom():
            yield sim.timeout(5)
            raise RuntimeError("kaput")

        with pytest.raises(RuntimeError, match="kaput"):
            sim.run_process(boom())

        stalled = Simulator()

        def forever():
            yield stalled.event()       # never succeeds

        with pytest.raises(RuntimeError, match="did not complete"):
            stalled.run_process(forever())

    def test_run_process_deadline_advances_clock(self):
        enable_profiling()
        sim = Simulator()

        def patient():
            yield sim.timeout(1000)

        with pytest.raises(RuntimeError, match="deadline"):
            sim.run_process(patient(), until=100)
        assert sim.now == 100

    def test_bench_scenario_facts_identical(self):
        """The perf scenarios produce the same deterministic facts."""
        plain = SCENARIOS["kernel_churn"]("smoke")
        enable_profiling()
        profiled = SCENARIOS["kernel_churn"]("smoke")
        assert profiled.events == plain.events
        assert profiled.sim_ns == plain.sim_ns


# -- attribution --------------------------------------------------------------

class TestAttribution:
    def test_attributes_95_percent_across_perf_scenarios(self):
        """The acceptance pin: >= 95% of measured wall time attributed,
        per scenario, for all three pinned benchmarks."""
        for name, runner in SCENARIOS.items():
            enable_profiling()
            runner("smoke")
            doc = attribution()
            assert doc["total_wall_s"] > 0, name
            assert doc["attributed_fraction"] >= 0.95, \
                f"{name}: {doc['attributed_fraction']:.3f}"
            shares = sum(e["share"] for e in doc["layers"].values())
            assert shares == pytest.approx(doc["attributed_fraction"])
            disable_profiling()

    def test_real_layers_show_up(self):
        enable_profiling()
        SCENARIOS["randread_nvme"]("smoke")
        doc = attribution()
        assert {"nvme", "icl", "sim"} <= set(doc["layers"])
        for entry in doc["layers"].values():
            assert entry["calls"] >= 0 and entry["seconds"] >= 0.0

    def test_kernel_overhead_is_booked_under_sim(self):
        prof = WallProfiler(label="x")
        prof.record([], 0.0, 0.25)
        prof.note_run(1.0)
        doc = attribution([prof])
        assert doc["kernel_wall_s"] == pytest.approx(0.75)
        assert doc["layers"]["sim"]["seconds"] == pytest.approx(1.0)
        assert doc["attributed_fraction"] == pytest.approx(1.0)

    def test_merges_across_profilers(self):
        a, b = WallProfiler(label="a"), WallProfiler(label="b")
        for prof in (a, b):
            prof.record([], 0.0, 0.5)
            prof.note_run(0.5)
        doc = attribution([a, b])
        assert doc["runs"] == 2 and doc["events"] == 2
        assert doc["total_wall_s"] == pytest.approx(1.0)

    def test_hottest_layers_orders_by_seconds(self):
        doc = {"layers": {"ftl": {"seconds": 3.0}, "sim": {"seconds": 1.0},
                          "nvme": {"seconds": 2.0}, "gc": {"seconds": 0.5}}}
        assert hottest_layers(doc) == ["ftl", "nvme", "sim"]

    def test_empty_attribution_is_harmless(self):
        doc = attribution([])
        assert doc["total_wall_s"] == 0.0
        assert doc["attributed_fraction"] == 0.0
        assert doc["label"] == "(no profilers)"
        assert "0 dispatched event(s)" in attribution_markdown([])


# -- exports ------------------------------------------------------------------

class TestExports:
    def test_markdown_names_top3_hottest_layers(self):
        enable_profiling()
        SCENARIOS["write_storm_gc"]("smoke")
        text = attribution_markdown()
        assert "Top-3 hottest layers:" in text
        assert "| layer | calls | wall ms | share |" in text
        doc = attribution()
        for name in hottest_layers(doc):
            assert f"`{name}`" in text

    def test_chrome_trace_is_valid_and_wall_scaled(self, tmp_path):
        enable_profiling()
        sim = Simulator()
        sim.run_process(_pingpong(sim))
        path = tmp_path / "prof.trace.json"
        n_events = write_profile_trace(path, profilers())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n_events > 0
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices and all(e["dur"] >= 0 for e in slices)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert "process_name" in names

    def test_trace_slices_are_bounded(self):
        enable_profiling(max_slices=4)
        sim = Simulator()
        sim.run_process(_pingpong(sim, rounds=100))
        prof = profilers()[0]
        assert len(prof.slices()) == 4
        assert prof.events > 4          # totals still cover everything

    def test_write_profile_emits_both_artifacts(self, tmp_path):
        enable_profiling()
        sim = Simulator()
        sim.run_process(_pingpong(sim))
        paths = write_profile(tmp_path / "attr")
        assert [p.split(".", 1)[-1] for p in
                [str(p)[len(str(tmp_path)) + 1:] for p in paths]] == \
            ["md", "trace.json"]
        markdown = (tmp_path / "attr.md").read_text()
        assert "Wall-clock attribution" in markdown
        json.loads((tmp_path / "attr.trace.json").read_text())

    def test_write_profile_strips_a_suffixed_base(self, tmp_path):
        enable_profiling()
        sim = Simulator()
        sim.run_process(_pingpong(sim))
        paths = write_profile(tmp_path / "attr.md")
        assert str(tmp_path / "attr.md") in paths
        assert str(tmp_path / "attr.trace.json") in paths


# -- categorization -----------------------------------------------------------

class TestCategorize:
    @pytest.mark.parametrize("path,layer", [
        ("/x/src/repro/ssd/firmware/ftl/gc.py", "gc"),
        ("/x/src/repro/ssd/firmware/ftl/mapping.py", "ftl"),
        ("/x/src/repro/ssd/firmware/icl.py", "icl"),
        ("/x/src/repro/ssd/firmware/fil.py", "fil"),
        ("/x/src/repro/ssd/firmware/hil.py", "hil"),
        ("/x/src/repro/ssd/storage/flash.py", "flash"),
        ("/x/src/repro/interfaces/nvme/queues.py", "nvme"),
        ("/x/src/repro/hostos/blocklayer.py", "hostos"),
        ("/x/src/repro/core/system.py", "host"),
        ("/x/src/repro/workloads/fio.py", "host"),
        ("/x/src/repro/baselines/replay.py", "baseline"),
        ("/x/src/repro/sim/process.py", "sim"),
        ("/somewhere/else.py", "other"),
        (None, "sim"),
    ])
    def test_path_to_layer(self, path, layer):
        assert profiler_mod._categorize(path) == layer

    def test_process_resume_attributes_to_the_generator(self):
        enable_profiling()
        sim = Simulator()
        sim.run_process(_pingpong(sim))
        doc = attribution()
        # the generator lives in this test file -> "other", not "sim"
        assert "other" in doc["layers"]
        assert any("test_obs_profiler" in name for name in doc["modules"])

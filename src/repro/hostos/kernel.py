"""Kernel storage-stack profiles.

Fig 12 contrasts Linux 4.4 (CFQ) with 4.14 (refined BFQ): the scheduler
choice changes per-request CPU work, dispatch batching and merging, which
together decide whether the kernel can generate enough I/O to saturate an
SSD.  A profile bundles those knobs plus instruction budgets for each
stage of the submission/completion path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelProfile:
    version: str
    scheduler: str               # "cfq" | "bfq" | "noop"
    # instruction budgets (ARM/x86-agnostic counts; CPI applied by HostCpu)
    syscall_submit_instr: int    # VFS + aio entry
    block_submit_instr: int      # bio creation, plugging
    sched_instr: int             # elevator work per dispatched request
    driver_submit_instr: int     # request -> protocol command
    isr_instr: int               # interrupt service routine
    complete_instr: int          # blk completion + user wakeup
    # scheduler behaviour
    dispatch_quantum: int        # requests dispatched per elevator turn
    inflight_limit: int          # scheduler-imposed outstanding cap
    dispatch_gap_ns: int         # elevator bookkeeping gap between turns
    merge: bool                  # back-merge adjacent sequential requests
    max_merge_sectors: int = 1024

    @property
    def submit_path_instr(self) -> int:
        return (self.syscall_submit_instr + self.block_submit_instr
                + self.driver_submit_instr)


def kernel_4_4() -> KernelProfile:
    """Linux 4.4: CFQ elevator; heavier per-request path, shallow dispatch."""
    return KernelProfile(
        version="4.4",
        scheduler="cfq",
        syscall_submit_instr=3200,
        block_submit_instr=3800,
        sched_instr=5200,
        driver_submit_instr=2600,
        isr_instr=2400,
        complete_instr=2200,
        dispatch_quantum=1,
        inflight_limit=16,
        dispatch_gap_ns=2500,
        merge=False,
    )


def kernel_4_14() -> KernelProfile:
    """Linux 4.14: refined BFQ with per-process queues and unified merging."""
    return KernelProfile(
        version="4.14",
        scheduler="bfq",
        syscall_submit_instr=2800,
        block_submit_instr=2600,
        sched_instr=1800,
        driver_submit_instr=2200,
        isr_instr=1900,
        complete_instr=1700,
        dispatch_quantum=16,
        inflight_limit=128,
        dispatch_gap_ns=0,
        merge=True,
    )


def kernel_by_version(version: str) -> KernelProfile:
    table = {"4.4": kernel_4_4, "4.14": kernel_4_14}
    try:
        return table[version]()
    except KeyError:
        raise ValueError(f"no kernel profile for version {version!r}") from None

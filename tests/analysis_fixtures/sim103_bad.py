"""SIM103 fixture: hash-ordered iteration feeding accumulation."""


def total_latency(samples):
    acc = 0.0
    for value in {1.5, 2.25, 3.125}:
        acc += value
    return acc


def gc_order(dirty):
    victims = set(dirty)
    order = []
    for block in victims:
        order.append(block)
    return order + [b for b in victims | {0}]

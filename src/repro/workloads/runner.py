"""Executes enterprise workloads at user level on a FullSystem.

Mirrors the FIO engine's closed loop, but draws requests from a
Table III generator instead of a fixed pattern.
"""

from __future__ import annotations

from repro.common.instructions import InstructionMix
from repro.common.iorequest import IOKind
from repro.common.recorders import BandwidthRecorder, LatencyRecorder
from repro.common.units import SEC
from repro.core.metrics import FioResult
from repro.workloads.enterprise import EnterpriseGenerator, WorkloadSpec

_USER_SUBMIT = InstructionMix.typical(700)


class EnterpriseRunner:
    def __init__(self, system, spec: WorkloadSpec, concurrency: int = 16,
                 seed: int = 11) -> None:
        self.system = system
        self.spec = spec
        self.concurrency = concurrency
        self.seed = seed

    def run(self, total_ios: int = 1500) -> FioResult:
        system = self.system
        sim = system.sim
        generator = EnterpriseGenerator(self.spec, system.device_sectors,
                                        seed=self.seed)
        latency = LatencyRecorder()
        bandwidth = BandwidthRecorder()
        read_bw = BandwidthRecorder()
        write_bw = BandwidthRecorder()
        state = {"done": 0, "issued": 0, "bytes": 0}
        warmup = total_ios // 10

        def worker(index: int):
            while state["issued"] < total_ios:
                state["issued"] += 1
                req = generator.next_request()
                if system.data_emulation and req.kind == IOKind.WRITE:
                    req.data = system.pattern_data(req.slba, req.nsectors,
                                                   self.seed)
                req.queue_id = index
                nbytes = req.nbytes   # merging may grow req.nsectors later
                yield from system.cpu.execute(_USER_SUBMIT, core=index,
                                              kernel=False)
                req.t_submit = sim.now
                event = yield from system.submit_io(req, stream_id=index,
                                                    core=index)
                yield event
                state["done"] += 1
                state["bytes"] += nbytes
                if state["done"] > warmup:
                    latency.record(sim.now - req.t_submit)
                    bandwidth.record(nbytes, sim.now)
                    (read_bw if req.kind.is_read else write_bw).record(
                        nbytes, sim.now)

        start = sim.now
        procs = [sim.process(worker(i)) for i in range(self.concurrency)]

        def waiter():
            for proc in procs:
                yield proc

        sim.run_process(waiter())
        elapsed = sim.now - start
        return FioResult(
            bandwidth_mbps=bandwidth.mbps(),
            read_bandwidth_mbps=read_bw.mbps(),
            write_bandwidth_mbps=write_bw.mbps(),
            iops=state["done"] / (elapsed / SEC) if elapsed else 0.0,
            total_ios=state["done"],
            total_bytes=state["bytes"],
            elapsed_ns=elapsed,
            latency=latency,
            host_kernel_utilization=system.cpu.kernel_utilization(),
            host_memory_used=system.memory.used_bytes,
            ssd_power=system.ssd.power_report(),
            ssd_instructions=system.ssd.instruction_report(),
            ssd_stats=system.ssd.stats_report(),
        )

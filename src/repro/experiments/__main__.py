"""Run any paper experiment from the command line.

Usage::

    python -m repro.experiments tables
    python -m repro.experiments fig08_09 --full
    python -m repro.experiments fig10 --trace out.json --metrics out.csv
    python -m repro.experiments --list

``--trace`` records a span trace of every simulated system (in
simulated time) and writes Chrome ``trace_event`` JSON loadable at
https://ui.perfetto.dev, plus a per-span-kind latency breakdown on
stdout.  ``--metrics`` dumps each system's end-of-run metric snapshot
as CSV.  ``--report`` arms telemetry epochs (and tracing) and renders
time-series, latency histograms and the span breakdown into one
self-contained HTML or Markdown artifact; ``--epoch-ns`` tunes the
sampling period.  ``--profile BASE`` arms the wall-clock self-profiler
(:mod:`repro.obs.profiler`) and writes ``BASE.md`` +
``BASE.trace.json`` showing which layer burned the host time.
``--explain OUT.md`` arms per-request causal capture
(:mod:`repro.obs.causal`) and writes the per-system component
decomposition — with worst-request causal chains and blame edges —
without perturbing the experiment's results.  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.obs import (
    causal_summary,
    disable_causal,
    disable_profiling,
    enable_causal,
    disable_telemetry,
    disable_tracing,
    enable_profiling,
    enable_telemetry,
    enable_tracing,
    format_breakdown,
    latency_breakdown,
    merge_spans,
    metric_snapshots,
    tracers,
    write_chrome_trace,
    write_metrics_csv,
    write_profile,
    write_report,
)
from repro.obs.diff import write_causal_report

EXPERIMENTS = {
    "tables": "repro.experiments.tables",
    "fig03_04": "repro.experiments.fig03_04_baselines",
    "fig08_09": "repro.experiments.fig08_09_validation",
    "fig10": "repro.experiments.fig10_blocksize",
    "fig11": "repro.experiments.fig11_overprovision",
    "fig12": "repro.experiments.fig12_os_impact",
    "fig13": "repro.experiments.fig13_mobile",
    "fig14": "repro.experiments.fig14_frequency",
    "fig15": "repro.experiments.fig15_passive_active",
    "fig16": "repro.experiments.fig16_simspeed",
    "noisy": "repro.experiments.noisy_neighbor",
}


def resolve_experiment(name: str):
    """Map a CLI name to an ``EXPERIMENTS`` key.

    Accepts the short key (``fig12``) or the module-style name
    (``fig12_os_impact``); returns ``None`` when neither matches.
    """
    if name in EXPERIMENTS:
        return name
    for key, module in EXPERIMENTS.items():
        if module.rsplit(".", 1)[-1] == name:
            return key
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure of the Amber paper.")
    parser.add_argument("experiment", nargs="?",
                        help=f"one of: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--full", action="store_true",
                        help="run the full sweep (default: quick mode)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--trace", metavar="OUT.json",
                        help="record spans and write a Chrome trace "
                             "(open at https://ui.perfetto.dev)")
    parser.add_argument("--metrics", metavar="OUT.csv",
                        help="dump per-system metric snapshots as CSV")
    parser.add_argument("--report", metavar="OUT.html",
                        help="arm telemetry epochs and write a "
                             "self-contained HTML/Markdown run report")
    parser.add_argument("--epoch-ns", type=int, default=100_000,
                        help="telemetry sampling period in simulated ns "
                             "(used with --report; default 100000)")
    parser.add_argument("--profile", metavar="BASE",
                        help="attribute wall time per layer; writes BASE.md "
                             "+ BASE.trace.json (repro.obs.profiler)")
    parser.add_argument("--explain", metavar="OUT.md",
                        help="arm causal capture and write the per-system "
                             "latency decomposition (repro.obs.causal)")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for name, module in EXPERIMENTS.items():
            print(f"{name:<10} {module}")
        return 0

    experiment = resolve_experiment(args.experiment)
    if experiment is None:
        parser.error(f"unknown experiment {args.experiment!r}; "
                     f"choose from {', '.join(EXPERIMENTS)}")
    args.experiment = experiment

    module = importlib.import_module(EXPERIMENTS[args.experiment])
    observing = bool(args.trace or args.metrics or args.report)
    if observing:
        enable_tracing()
    if args.report:
        enable_telemetry(epoch_ns=args.epoch_ns)
    if args.profile:
        enable_profiling()
    if args.explain:
        enable_causal()
    try:
        started = time.perf_counter()  # simlint: disable=SIM101, SIM110 -- wall-clock progress display only; never enters results
        result = module.run(quick=not args.full)
        elapsed = time.perf_counter() - started  # simlint: disable=SIM101, SIM110 -- wall-clock progress display only; never enters results
        print(module.render(result))
        if args.trace:
            n_events = write_chrome_trace(args.trace, tracers())
            print(f"\n[trace: {n_events} spans from {len(tracers())} "
                  f"system(s) -> {args.trace}]")
            breakdown = latency_breakdown(merge_spans(tracers()))
            if breakdown:
                print("\nLatency breakdown per span kind "
                      "(simulated time):")
                print(format_breakdown(breakdown))
        if args.metrics:
            rows = write_metrics_csv(args.metrics, metric_snapshots())
            print(f"\n[metrics: {rows} rows -> {args.metrics}]")
        if args.report:
            write_report(args.report,
                         title=f"{EXPERIMENTS[args.experiment]} — run report")
            print(f"\n[report -> {args.report}]")
        if args.profile:
            paths = write_profile(
                args.profile,
                title=f"{EXPERIMENTS[args.experiment]} — wall attribution")
            print(f"\n[self-profile -> {', '.join(paths)}]")
        if args.explain:
            summary = causal_summary()
            write_causal_report(
                args.explain, summary,
                title=f"{EXPERIMENTS[args.experiment]} — causal forensics")
            print(f"\n[causal: {summary['records']} requests, "
                  f"{summary['violations']} conservation violations "
                  f"-> {args.explain}]")
    finally:
        if args.explain:
            disable_causal()
        if args.profile:
            disable_profiling()
        if args.report:
            disable_telemetry()
        if observing:
            disable_tracing()
    print(f"\n[{args.experiment} finished in {elapsed:.1f}s "
          f"({'full' if args.full else 'quick'} mode)]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Units and conversions.

Simulated time is integer nanoseconds; sizes are integer bytes.
"""

from __future__ import annotations

# -- sizes (bytes) -------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# -- time (nanoseconds) --------------------------------------------------
NS = 1
US = 1000
MS = 1000 * US
SEC = 1000 * MS

# -- frequency (Hz) ------------------------------------------------------
MHZ = 1_000_000
GHZ = 1_000_000_000


def ns_per_byte(bandwidth_bytes_per_sec: float) -> float:
    """Transfer cost in ns/byte for a link of the given bandwidth."""
    if bandwidth_bytes_per_sec <= 0:
        raise ValueError("bandwidth must be positive")
    return SEC / bandwidth_bytes_per_sec


def transfer_ns(nbytes: int, bandwidth_bytes_per_sec: float) -> int:
    """Time in ns to move ``nbytes`` over a link, rounded up to >= 1 ns."""
    if nbytes <= 0:
        return 0
    return max(1, round(nbytes * SEC / bandwidth_bytes_per_sec))


def bandwidth_mbps(nbytes: int, elapsed_ns: int) -> float:
    """Bandwidth in MB/s (MB = 2**20 bytes, matching the paper's axes)."""
    if elapsed_ns <= 0:
        return 0.0
    return (nbytes / MB) / (elapsed_ns / SEC)


def cycles_to_ns(cycles: float, freq_hz: float) -> int:
    """Convert a cycle count at ``freq_hz`` into integer nanoseconds."""
    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    return max(0, round(cycles * SEC / freq_hz))

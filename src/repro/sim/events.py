"""Event primitives for the simulation kernel."""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, becomes *triggered* when ``succeed`` or
    ``fail`` is called (it is then on the simulator's queue), and becomes
    *processed* once the simulator pops it and runs its callbacks.
    Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` was called (event is queued)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the simulator popped the event and ran callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False if the event was triggered via :meth:`fail`."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value (or exception); raises while still pending."""
        if not self._processed and not self._triggered:
            raise RuntimeError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully; callbacks run after ``delay`` ns."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._enqueue(delay, self)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._enqueue(delay, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` on processing (immediately if already done)."""
        if self._processed:
            # Late subscriber: run at the current instant, preserving order.
            immediate = Event(self.sim)
            immediate.callbacks.append(lambda _ev: callback(self))
            immediate.succeed()
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if not self._ok and not callbacks:
            # a failure nobody is waiting on would otherwise vanish and
            # typically surface as a deadlock; let the simulator report it
            self.sim._record_orphan_failure(self)
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = int(delay)
        self._triggered = True
        self._value = value
        sim._enqueue(self.delay, self)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim, events) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        for event in self.events:
            if event.processed:
                if not event.ok:
                    self.fail(event.value)
                    return
            else:
                self._pending += 1
                event.add_callback(self._child_done)
        self._check()

    def _child_done(self, event: Event) -> None:
        self._pending -= 1
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._check()

    def _check(self) -> None:
        raise NotImplementedError

    def _results(self):
        return [event.value for event in self.events if event.processed and event.ok]


class AllOf(_Condition):
    """Triggers once every child event has been processed."""

    __slots__ = ()

    def _check(self) -> None:
        if self._pending == 0 and not self._triggered:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Triggers as soon as any child event has been processed."""

    __slots__ = ()

    def _check(self) -> None:
        if self._triggered:
            return
        if self._pending < len(self.events) or not self.events:
            done = [event for event in self.events if event.processed]
            self.succeed(done[0].value if done else None)

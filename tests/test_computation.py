"""Unit tests for the SSD computation complex: cores, DRAM, power."""

import pytest

from repro.common.instructions import CLASSES, InstructionMix
from repro.common.units import SEC
from repro.sim import Simulator
from repro.ssd.computation.cores import FIRMWARE_ROLES, CpuComplex, EmbeddedCore
from repro.ssd.computation.dram import InternalDram
from repro.ssd.config import CoreConfig, DramConfig


@pytest.fixture
def sim():
    return Simulator()


class TestEmbeddedCore:
    def test_execution_time_matches_cpi(self, sim):
        config = CoreConfig(n_cores=1, frequency=1_000_000_000)
        core = EmbeddedCore(sim, 0, config)
        mix = InstructionMix(arith=1000)   # CPI 1.0 at 1 GHz -> 1000 ns
        sim.run_process(core.execute(mix))
        assert sim.now == 1000

    def test_loads_cost_more_than_arith(self, sim):
        config = CoreConfig(n_cores=1, frequency=1_000_000_000)
        core = EmbeddedCore(sim, 0, config)
        assert core.exec_ns(InstructionMix(load=1000)) > \
            core.exec_ns(InstructionMix(arith=1000))

    def test_custom_cpi_override(self, sim):
        config = CoreConfig(n_cores=1, frequency=1_000_000_000,
                            cpi={"arith": 2.0})
        core = EmbeddedCore(sim, 0, config)
        assert core.exec_ns(InstructionMix(arith=1000)) == 2000

    def test_stats_accumulate(self, sim):
        config = CoreConfig(n_cores=1, frequency=500_000_000)
        core = EmbeddedCore(sim, 0, config)
        sim.run_process(core.execute(InstructionMix.typical(1000)))
        sim.run_process(core.execute(InstructionMix.typical(500)))
        assert core.stats.total == 1500

    def test_cpi_achieved_reflects_mix(self, sim):
        config = CoreConfig(n_cores=1, frequency=1_000_000_000)
        core = EmbeddedCore(sim, 0, config)
        sim.run_process(core.execute(InstructionMix(load=1000)))
        assert core.cpi_achieved() == pytest.approx(1.7, rel=0.05)

    def test_energy_has_dynamic_and_leakage(self, sim):
        config = CoreConfig(n_cores=1, frequency=1_000_000_000,
                            energy_per_instruction=100e-12,
                            leakage_per_core=0.1)
        core = EmbeddedCore(sim, 0, config)
        sim.run_process(core.execute(InstructionMix(arith=10_000)))
        expected_dynamic = 10_000 * 100e-12
        assert core.energy() > expected_dynamic    # leakage adds on top


class TestCpuComplex:
    def test_roles_map_to_cores(self, sim):
        complex_ = CpuComplex(sim, CoreConfig(n_cores=3))
        assert complex_.core_for("hil").index == 0
        assert complex_.core_for("icl").index == 1
        assert complex_.core_for("ftl").index == 2
        assert complex_.core_for("fil").index == 2   # FIL shares FTL core

    def test_single_core_hosts_everything(self, sim):
        complex_ = CpuComplex(sim, CoreConfig(n_cores=1))
        for role in FIRMWARE_ROLES:
            assert complex_.core_for(role).index == 0

    def test_unknown_role_rejected(self, sim):
        complex_ = CpuComplex(sim, CoreConfig(n_cores=3))
        with pytest.raises(ValueError):
            complex_.core_for("dsp")

    def test_merged_instruction_stats(self, sim):
        complex_ = CpuComplex(sim, CoreConfig(n_cores=3))
        sim.run_process(complex_.execute("hil", InstructionMix.typical(100)))
        sim.run_process(complex_.execute("ftl", InstructionMix.typical(200)))
        assert complex_.total_instructions() == 300
        breakdown = complex_.instruction_stats().breakdown()
        assert set(breakdown) == set(CLASSES)

    def test_zero_cores_rejected(self, sim):
        with pytest.raises(ValueError):
            CpuComplex(sim, CoreConfig(n_cores=0))


class TestInternalDram:
    def _dram(self, sim, policy="open"):
        return InternalDram(sim, DramConfig(page_policy=policy))

    def test_row_hit_faster_than_miss(self, sim):
        dram = self._dram(sim)

        def scenario():
            t0 = sim.now
            yield from dram.access(0, 64)          # miss: first activate
            miss_time = sim.now - t0
            t0 = sim.now
            yield from dram.access(64, 64)         # same row: hit
            hit_time = sim.now - t0
            return miss_time, hit_time

        miss_time, hit_time = sim.run_process(scenario())
        assert hit_time < miss_time
        assert dram.row_hits == 1 and dram.row_misses == 1

    def test_close_page_policy_always_activates(self, sim):
        dram = self._dram(sim, policy="close")

        def scenario():
            yield from dram.access(0, 64)
            yield from dram.access(64, 64)

        sim.run_process(scenario())
        assert dram.row_hits == 0
        assert dram.activates == 2

    def test_banks_interleave_rows(self, sim):
        dram = self._dram(sim)
        row_size = dram.config.row_size

        def scenario():
            yield from dram.access(0, 64)              # bank 0
            yield from dram.access(row_size, 64)       # bank 1: no conflict
            yield from dram.access(64, 64)             # bank 0 again: hit

        sim.run_process(scenario())
        assert dram.row_hits == 1

    def test_large_transfer_bandwidth_bound(self, sim):
        dram = self._dram(sim)
        nbytes = 1 << 20

        def scenario():
            yield from dram.access(0, nbytes)

        sim.run_process(scenario())
        ideal_ns = nbytes / dram.config.bandwidth * SEC
        assert sim.now >= ideal_ns

    def test_energy_components(self, sim):
        dram = self._dram(sim)

        def scenario():
            yield from dram.access(0, 4096, write=True)
            yield from dram.access(8192, 4096)
            yield sim.timeout(1_000_000)

        sim.run_process(scenario())
        assert dram.dynamic_energy() > 0
        assert dram.background_energy() > 0
        assert dram.average_power() > 0

    def test_zero_byte_access_is_free(self, sim):
        dram = self._dram(sim)
        sim.run_process(dram.access(0, 0))
        assert sim.now == 0


class TestSelfRefresh:
    def test_long_idle_enters_self_refresh(self, sim):
        dram = InternalDram(sim, DramConfig())

        def scenario():
            yield from dram.access(0, 64)
            yield sim.timeout(10_000_000)     # 10 ms idle
            yield from dram.access(0, 64)

        sim.run_process(scenario())
        assert dram.self_refresh_fraction() > 0.9

    def test_busy_dram_never_self_refreshes(self, sim):
        dram = InternalDram(sim, DramConfig())

        def scenario():
            for _ in range(100):
                yield from dram.access(0, 64)
                yield sim.timeout(1_000)      # well under the threshold

        sim.run_process(scenario())
        assert dram.self_refresh_fraction() == 0.0

    def test_self_refresh_cuts_background_power(self, sim):
        idle = InternalDram(sim, DramConfig())
        busy_sim = Simulator()
        busy = InternalDram(busy_sim, DramConfig())

        def idle_scenario():
            yield from idle.access(0, 64)
            yield sim.timeout(50_000_000)

        def busy_scenario():
            deadline = 50_000_000
            while busy_sim.now < deadline:
                yield from busy.access(0, 64)
                yield busy_sim.timeout(10_000)

        sim.run_process(idle_scenario())
        busy_sim.run_process(busy_scenario())
        assert idle.background_energy() < busy.background_energy()

    def test_wakeup_pays_exit_latency(self, sim):
        dram = InternalDram(sim, DramConfig())

        def scenario():
            yield from dram.access(0, 64)
            t_first_end = sim.now
            yield from dram.access(64, 64)      # row hit, fast
            warm = sim.now - t_first_end
            yield sim.timeout(10_000_000)
            t0 = sim.now
            yield from dram.access(128, 64)     # after self-refresh exit
            cold = sim.now - t0
            return warm, cold

        warm, cold = sim.run_process(scenario())
        assert cold > warm

"""Optional NVMe features: SGL transfers, WRR queue priorities, CLI."""

import pytest

from repro.core.fio import FioJob
from repro.core.system import FullSystem
from repro.ssd.config import HILConfig

from tests.conftest import tiny_ssd_config


class TestSgl:
    def test_sgl_mode_wires_through(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme",
                            nvme_transfer_mode="sgl", data_emulation=True)
        assert system.adapter.identify()["transfer_mode"] == "sgl"

        def scenario():
            data = FullSystem.pattern_data(0, 16)
            yield from system.write(0, 16, data)
            got = yield from system.read(0, 16)
            assert got == data

        system.run_process(scenario())

    def test_unknown_transfer_mode_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            FullSystem(device=tiny_config, interface="nvme",
                       nvme_transfer_mode="bounce")

    def test_sgl_writes_more_descriptor_bytes_than_prp(self, tiny_config):
        """SGL writes one 16 B descriptor per segment; PRP keeps the first
        two pointers inside the SQE."""
        moved = {}
        for mode in ("prp", "sgl"):
            system = FullSystem(device=tiny_config, interface="nvme",
                                nvme_transfer_mode=mode)
            system.run_fio(FioJob(rw="randread", bs=8192, iodepth=2,
                                  total_ios=50))
            moved[mode] = system.memory.bytes_moved
        assert moved["sgl"] >= moved["prp"]


class TestWrrArbitration:
    def test_high_priority_queue_sees_lower_latency(self, tiny_config):
        device = tiny_config.with_overrides(
            hil=HILConfig(arbitration="wrr", wrr_weights=(8, 2, 1)))
        # queue 1 = high priority (class 0), others low (class 2)
        system = FullSystem(device=device, interface="nvme",
                            nvme_queue_priorities={1: 0, 2: 2, 3: 2, 4: 2})
        system.precondition()
        result = system.run_fio(FioJob(rw="randread", bs=2048, iodepth=8,
                                       numjobs=4, total_ios=150, seed=3))
        assert result.total_ios == 600
        # behavioural check happens at the device: commands from the
        # high-priority queue were fetched (no starvation / crash)
        assert system.ssd.hil.commands_completed == 600

    def test_wrr_weights_accepted_by_validation(self, tiny_config):
        device = tiny_config.with_overrides(
            hil=HILConfig(arbitration="wrr"))
        device.validate()


class TestExperimentCli:
    def test_list_experiments(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig08_09" in out and "tables" in out

    def test_run_tables(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out

    def test_unknown_experiment_errors(self):
        from repro.experiments.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestAdminCommands:
    def _system(self, tiny_config, **kwargs):
        return FullSystem(device=tiny_config, interface="nvme", **kwargs)

    def test_identify_reports_controller_data(self, tiny_config):
        from repro.interfaces.nvme.structures import NvmeOpcode
        system = self._system(tiny_config)

        def scenario():
            result = yield from system.adapter.admin_command(
                NvmeOpcode.IDENTIFY)
            return result

        info = system.run_process(scenario())
        assert info["model"] == tiny_config.name
        assert info["capacity_sectors"] == tiny_config.logical_sectors
        assert system.sim.now > 0   # the round trip took simulated time

    def test_get_log_page_returns_smart(self, tiny_config):
        from repro.interfaces.nvme.structures import NvmeOpcode
        system = self._system(tiny_config)

        def scenario():
            yield from system.write(0, 8)
            smart = yield from system.adapter.admin_command(
                NvmeOpcode.GET_LOG_PAGE)
            return smart

        smart = system.run_process(scenario())
        assert "percentage_used" in smart
        assert smart["host_writes_pages"] >= 0

    def test_create_and_delete_io_queues(self, tiny_config):
        from repro.interfaces.nvme.structures import NvmeOpcode
        system = self._system(tiny_config)
        before = system.adapter.n_io_queues

        def scenario():
            yield from system.adapter.admin_command(
                NvmeOpcode.CREATE_SQ, qid=before + 1, depth=64)
            assert system.adapter.n_io_queues == before + 1
            yield from system.adapter.admin_command(
                NvmeOpcode.DELETE_SQ, qid=before + 1)

        system.run_process(scenario())
        assert system.adapter.n_io_queues == before

    def test_duplicate_queue_rejected(self, tiny_config):
        system = self._system(tiny_config)
        with pytest.raises(ValueError, match="already exists"):
            system.adapter.create_io_queue_pair(1)

    def test_format_nvm_deallocates_everything(self, tiny_config):
        from repro.interfaces.nvme.structures import NvmeOpcode
        system = self._system(tiny_config, data_emulation=True)

        def scenario():
            data = FullSystem.pattern_data(0, 16)
            yield from system.write(0, 16, data)
            got = yield from system.read(0, 16)
            assert got == data
            yield from system.adapter.admin_command(NvmeOpcode.FORMAT_NVM)
            wiped = yield from system.read(0, 16)
            return wiped

        assert system.run_process(scenario()) == bytes(16 * 512)

    def test_unsupported_admin_opcode_raises(self, tiny_config):
        from repro.interfaces.nvme.structures import NvmeOpcode
        system = self._system(tiny_config)

        def scenario():
            yield from system.adapter.admin_command(NvmeOpcode.READ)

        with pytest.raises(ValueError, match="unsupported admin"):
            system.run_process(scenario())

"""SIM106 fixture: acquire without release, and release outside finally."""


def leaky(sim, gate):
    yield gate.acquire()
    yield sim.timeout(5)


def unprotected(sim, gate):
    yield gate.acquire()
    yield sim.timeout(5)
    gate.release()

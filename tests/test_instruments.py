"""Tests for measurement instruments: time averages, utilization,
bandwidth/latency recorders, unit conversions."""

import pytest

from repro.common.recorders import BandwidthRecorder, LatencyRecorder
from repro.common.units import (
    GB,
    MB,
    SEC,
    bandwidth_mbps,
    cycles_to_ns,
    ns_per_byte,
    transfer_ns,
)
from repro.sim import Simulator, TimeAverage, UtilizationTracker


@pytest.fixture
def sim():
    return Simulator()


class TestTimeAverage:
    def test_constant_signal(self, sim):
        avg = TimeAverage(sim, initial=5.0)
        sim.schedule(100, lambda: None)
        sim.run()
        assert avg.mean() == 5.0

    def test_step_change_weighted_by_duration(self, sim):
        avg = TimeAverage(sim, initial=0.0)
        sim.schedule(100, avg.set, 10.0)
        sim.schedule(300, lambda: None)
        sim.run()
        # 0 for 100 ns, 10 for 200 ns -> mean 20/3
        assert avg.mean() == pytest.approx(10.0 * 200 / 300)

    def test_add_is_relative(self, sim):
        avg = TimeAverage(sim, initial=3.0)
        avg.add(2.0)
        assert avg.value == 5.0
        avg.add(-5.0)
        assert avg.value == 0.0

    def test_timeline_records_every_change(self, sim):
        avg = TimeAverage(sim, keep_timeline=True)
        sim.schedule(10, avg.set, 1.0)
        sim.schedule(20, avg.set, 2.0)
        sim.run()
        assert avg.timeline() == [(0, 0.0), (10, 1.0), (20, 2.0)]

    def test_timeline_off_by_default_but_mean_exact(self, sim):
        avg = TimeAverage(sim)
        sim.schedule(100, avg.set, 10.0)
        sim.schedule(300, lambda: None)
        sim.run()
        assert avg.timeline() == []
        assert avg.mean() == pytest.approx(10.0 * 200 / 300)

    def test_timeline_capped_by_coarsening(self, sim):
        avg = TimeAverage(sim, keep_timeline=True, max_points=64)
        for t in range(1, 501):
            sim.schedule(t, avg.set, float(t))
        sim.run()
        points = avg.timeline()
        assert len(points) <= 64
        # first and last samples survive every halving pass
        assert points[0] == (0, 0.0)
        assert points[-1] == (500, 500.0)
        assert avg.mean() == pytest.approx(
            sum(t for t in range(1, 500)) / 500)


class TestUtilizationTracker:
    def test_fully_busy(self, sim):
        tracker = UtilizationTracker(sim)

        def proc():
            tracker.begin()
            yield sim.timeout(100)
            tracker.end()

        sim.run_process(proc())
        assert tracker.utilization() == 1.0

    def test_half_busy(self, sim):
        tracker = UtilizationTracker(sim)

        def proc():
            tracker.begin()
            yield sim.timeout(50)
            tracker.end()
            yield sim.timeout(50)

        sim.run_process(proc())
        assert tracker.utilization() == pytest.approx(0.5)

    def test_nested_begins_count_once(self, sim):
        tracker = UtilizationTracker(sim)

        def proc():
            tracker.begin()
            tracker.begin()
            yield sim.timeout(60)
            tracker.end()
            yield sim.timeout(40)
            tracker.end()

        sim.run_process(proc())
        # busy from 0 to 100 (depth never reached zero until the end)
        assert tracker.busy_ns() == 100

    def test_unbalanced_end_raises(self, sim):
        tracker = UtilizationTracker(sim)
        with pytest.raises(RuntimeError):
            tracker.end()

    def test_interval_utilization_between_marks(self, sim):
        tracker = UtilizationTracker(sim)

        def proc():
            tracker.begin()
            yield sim.timeout(50)
            tracker.end()
            tracker.mark()          # interval 1: 100% of [0, 50)
            yield sim.timeout(50)
            tracker.mark()          # interval 2: 0% of [50, 100)

        sim.run_process(proc())
        intervals = tracker.interval_utilization()
        assert intervals[0][1] == pytest.approx(1.0)
        assert intervals[1][1] == pytest.approx(0.0)


class TestLatencyRecorder:
    def test_empty_is_zero(self):
        recorder = LatencyRecorder()
        assert recorder.mean() == 0.0
        assert recorder.percentile(99) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_bad_percentile_rejected(self):
        recorder = LatencyRecorder()
        recorder.record(10)
        with pytest.raises(ValueError):
            recorder.percentile(150)

    def test_percentile_interpolation(self):
        recorder = LatencyRecorder()
        for value in (0, 1000):
            recorder.record(value)
        # The streaming histogram interpolates between buckets; its
        # estimate stays within the documented bucket error of the
        # exact midpoint (500) relative to the max sample.
        estimate = recorder.percentile(50)
        assert abs(estimate - 500) <= recorder.histogram.relative_error * 1000

    def test_exact_extremes_and_mean(self):
        recorder = LatencyRecorder()
        for value in (3, 17, 90_000, 1_000_000):
            recorder.record(value)
        assert recorder.count == 4
        assert recorder.min() == 3
        assert recorder.max() == 1_000_000
        assert recorder.mean() == pytest.approx(1_090_020 / 4)
        # percentiles never escape the exact [min, max] envelope
        assert recorder.percentile(0) >= 3
        assert recorder.percentile(100) <= 1_000_000

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(1000)
        summary = recorder.summary()
        assert set(summary) == {"count", "mean_us", "p50_us", "p99_us",
                                "max_us"}


class TestBandwidthRecorder:
    def test_simple_rate(self):
        recorder = BandwidthRecorder()
        recorder.record(MB, now_ns=0)
        recorder.record(MB, now_ns=SEC)
        assert recorder.mbps() == pytest.approx(2.0)

    def test_warmup_excluded(self):
        recorder = BandwidthRecorder(warmup_ns=SEC)
        recorder.record(100 * MB, now_ns=0)          # warmup burst
        recorder.record(MB, now_ns=SEC)
        recorder.record(MB, now_ns=2 * SEC)
        # steady window sees 2 MB over 1 s, not the burst
        assert recorder.mbps() == pytest.approx(2.0)

    def test_no_samples(self):
        assert BandwidthRecorder().mbps() == 0.0


class TestUnits:
    def test_transfer_time_rounds_up(self):
        assert transfer_ns(1, 10**12) == 1      # sub-ns rounds to 1
        assert transfer_ns(0, GB) == 0

    def test_ns_per_byte_inverse(self):
        assert ns_per_byte(GB) == pytest.approx(SEC / GB)
        with pytest.raises(ValueError):
            ns_per_byte(0)

    def test_bandwidth_mbps(self):
        assert bandwidth_mbps(MB, SEC) == pytest.approx(1.0)
        assert bandwidth_mbps(MB, 0) == 0.0

    def test_cycles_to_ns(self):
        assert cycles_to_ns(1000, 10**9) == 1000
        with pytest.raises(ValueError):
            cycles_to_ns(10, 0)

"""Record a benchmark trajectory point: ``python -m benchmarks.perf``.

Examples::

    # full-size record, compared against the last committed point
    python -m benchmarks.perf --compare BENCH_2026-08-06.json

    # quick smoke record (CI artifact), with an HTML telemetry report
    python -m benchmarks.perf --profile smoke --repeats 1 --out bench.json \\
        --report bench-report.html

``--trace``/``--metrics``/``--report`` mirror the ``repro.experiments``
CLI (see ``docs/OBSERVABILITY.md``); observability is armed around the
scenario runs, so the recorded wall clocks include its overhead — use
plain runs for trajectory points.

``--compare`` doubles as a regression gate: the events/sec table is
printed per scenario and the process exits nonzero when any scenario
dropped more than ``--regress-threshold`` percent (default 15).
``--self-profile BASE`` arms the wall-clock self-profiler
(``repro.obs.profiler``; ``--profile`` here already names the scenario
*size*) and writes ``BASE.md`` + ``BASE.trace.json`` attribution
artifacts — note the recorded wall clocks then include profiling
overhead, so keep trajectory points unprofiled.
"""

from __future__ import annotations

import argparse
import datetime
import sys
from pathlib import Path

from repro.bench.record import (
    format_regression_table,
    load_bench,
    regression_table,
    run_all,
    worst_regression_pct,
    write_bench,
)
from repro.bench.scenarios import PROFILES, SCENARIOS
from repro.obs import (
    disable_profiling,
    disable_telemetry,
    disable_tracing,
    enable_profiling,
    enable_telemetry,
    enable_tracing,
    metric_snapshots,
    tracers,
    write_chrome_trace,
    write_metrics_csv,
    write_profile,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="run the pinned perf scenarios and emit BENCH_<date>.json")
    parser.add_argument("--profile", choices=PROFILES, default="full",
                        help="scenario sizes (full = recorded trajectory, "
                             "smoke = CI-sized)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per scenario; best wall clock is kept")
    parser.add_argument("--scenario", action="append", choices=SCENARIOS,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--compare", type=Path, default=None,
                        help="previous BENCH_*.json to embed as baseline "
                             "and gate regressions against")
    parser.add_argument("--regress-threshold", type=float, default=15.0,
                        metavar="PCT",
                        help="max tolerated events/sec drop vs --compare "
                             "before exiting nonzero (default 15)")
    parser.add_argument("--self-profile", metavar="BASE",
                        help="attribute wall time per layer; writes BASE.md "
                             "+ BASE.trace.json (repro.obs.profiler)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default BENCH_<today>.json)")
    parser.add_argument("--notes", default="",
                        help="free-form note stored with the record")
    parser.add_argument("--trace", metavar="OUT.json",
                        help="record spans and write a Chrome trace")
    parser.add_argument("--metrics", metavar="OUT.csv",
                        help="dump per-system metric snapshots as CSV")
    parser.add_argument("--report", metavar="OUT.html",
                        help="arm telemetry epochs and write a "
                             "self-contained HTML/Markdown run report")
    parser.add_argument("--epoch-ns", type=int, default=100_000,
                        help="telemetry sampling period in simulated ns "
                             "(used with --report; default 100000)")
    args = parser.parse_args(argv)

    date = datetime.date.today().isoformat()
    out = args.out or Path(f"BENCH_{date}.json")
    print(f"recording profile={args.profile} repeats={args.repeats} -> {out}",
          file=sys.stderr)
    observing = bool(args.trace or args.metrics or args.report)
    if observing:
        enable_tracing()
    if args.report:
        enable_telemetry(epoch_ns=args.epoch_ns)
    if args.self_profile:
        enable_profiling()
    try:
        scenarios = run_all(profile=args.profile, repeats=args.repeats,
                            names=args.scenario, verbose=True)
        if args.trace:
            n_events = write_chrome_trace(args.trace, tracers())
            print(f"  [trace: {n_events} spans -> {args.trace}]",
                  file=sys.stderr)
        if args.metrics:
            rows = write_metrics_csv(args.metrics, metric_snapshots())
            print(f"  [metrics: {rows} rows -> {args.metrics}]",
                  file=sys.stderr)
        if args.report:
            write_report(args.report,
                         title=f"benchmarks.perf {args.profile} — run report")
            print(f"  [report -> {args.report}]", file=sys.stderr)
        if args.self_profile:
            paths = write_profile(
                args.self_profile,
                title=f"benchmarks.perf {args.profile} — wall attribution")
            print(f"  [self-profile -> {', '.join(paths)}]", file=sys.stderr)
    finally:
        if args.self_profile:
            disable_profiling()
        if args.report:
            disable_telemetry()
        if observing:
            disable_tracing()
    baseline = load_bench(args.compare) if args.compare else None
    doc = write_bench(out, scenarios, args.profile, date,
                      baseline=baseline, notes=args.notes)
    for name, speedup in doc.get("speedup", {}).items():
        print(f"  speedup {name:16s} x{speedup}", file=sys.stderr)
    if baseline is not None:
        rows = regression_table(baseline.get("scenarios", {}), scenarios)
        print(format_regression_table(rows, args.regress_threshold))
        base_profile = baseline.get("profile")
        if base_profile is not None and base_profile != args.profile:
            # Smaller profiles amortize less fixed overhead per event, so
            # events/sec is only comparable within one profile size.
            print(f"note: baseline profile '{base_profile}' != current "
                  f"'{args.profile}'; events/sec are not comparable across "
                  "sizes — table is informational, gate skipped",
                  file=sys.stderr)
            return 0
        worst = worst_regression_pct(rows)
        if worst > args.regress_threshold:
            print(f"FAIL: worst events/sec drop {worst:.1f}% exceeds "
                  f"--regress-threshold {args.regress_threshold:.1f}%",
                  file=sys.stderr)
            return 1
        print(f"regression gate ok: worst drop {worst:.1f}% "
              f"<= {args.regress_threshold:.1f}%", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

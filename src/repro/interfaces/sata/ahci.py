"""AHCI host block adapter (HBA): SATA's host-side controller.

H-type storage pivots on this hardware: the CPU only fills memory-mapped
register sets (a 32-entry command list + FIS receive area); the HBA
itself fetches commands, walks the PRDT, copies payload pages through
its own buffer, and exchanges FISes with the device controller.  The
double copy (host memory -> HBA buffer -> PHY) and the single serialized
command/interrupt path are what bound SATA's scalability.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.common.iorequest import IOKind, IORequest
from repro.host.memory import HostMemory
from repro.host.pcie import SataLink
from repro.interfaces.base import HostAdapter, buffer_address
from repro.interfaces.sata.fis import (
    FIS_SIZES,
    AhciCommand,
    FisType,
    prdt_for,
)

NCQ_SLOTS = 32
_COMMAND_TABLE_BYTES = 256      # command FIS + ATAPI + PRDT header
_PRDT_ENTRY_BYTES = 16
_HBA_PROCESS_NS = 1200          # HBA command processing (hardware pipeline)


class AhciHba(HostAdapter):
    max_outstanding = NCQ_SLOTS

    def __init__(self, sim, memory: HostMemory, link: SataLink) -> None:
        self.sim = sim
        self.memory = memory
        self.link = link
        self.controller = None       # device-side controller attaches here
        self._free_slots: Deque[int] = deque(range(NCQ_SLOTS))
        self._slot_waiters: Deque = deque()
        self._outstanding: Dict[int, tuple] = {}   # ncq_tag -> (cmd, req, ev)
        self.commands_issued = 0
        self.interrupts_raised = 0
        # command list + received-FIS area live in system memory
        memory.allocate("ahci-hba", NCQ_SLOTS * 1024 + 4096)

    def attach_controller(self, controller) -> None:
        self.controller = controller

    # -- submission --------------------------------------------------------

    def submit(self, req: IORequest):
        if self.controller is None:
            raise RuntimeError("no SATA device controller attached")
        event = self.sim.event()
        self.sim.process(self._submit_proc(req, event))
        return event

    def _submit_proc(self, req: IORequest, event):
        with self.sim.tracer.span("ahci.submit", req.req_id):
            if not self._free_slots:
                waiter = self.sim.event()
                self._slot_waiters.append(waiter)
                yield waiter
            slot = self._free_slots.popleft()

            if req.kind == IOKind.FLUSH:
                cmd = AhciCommand(slot=slot, is_write=True, slba=0,
                                  nsectors=0, ncq_tag=slot)
            else:
                cmd = AhciCommand(
                    slot=slot, is_write=req.kind.is_write,
                    slba=req.slba, nsectors=req.nsectors,
                    prdt=prdt_for(buffer_address(req), req.nbytes),
                    ncq_tag=slot)
            req.queue_id = 0  # single interrupt line: all lands on core 0

            # driver writes command table + PRDT into system memory
            table_bytes = (_COMMAND_TABLE_BYTES
                           + len(cmd.prdt) * _PRDT_ENTRY_BYTES)
            yield from self.memory.access(table_bytes, write=True)
            # HBA fetches the command from the list and processes it
            yield from self.memory.access(table_bytes)
            yield self.sim.timeout(_HBA_PROCESS_NS)
            # Register H2D command FIS travels the (half-duplex) PHY
            yield from self.link.send(FIS_SIZES[FisType.REGISTER_H2D])
            self._outstanding[cmd.ncq_tag] = (cmd, req, event)
            self.commands_issued += 1
        self.controller.command_arrived(cmd, req)

    # -- completion (device controller calls back) ------------------------------

    def command_done(self, ncq_tag: int, payload: Optional[bytes]):
        """Process generator: Set Device Bits FIS -> interrupt -> slot free."""
        cmd, req, event = self._outstanding.pop(ncq_tag)
        with self.sim.tracer.span("ahci.complete", req.req_id):
            yield from self.link.receive(FIS_SIZES[FisType.SET_DEVICE_BITS])
            yield self.sim.timeout(_HBA_PROCESS_NS)
        self.interrupts_raised += 1
        req.t_backend_done = req.t_backend_done if req.t_backend_done >= 0 \
            else self.sim.now
        self._free_slots.append(cmd.slot)
        if self._slot_waiters:
            self._slot_waiters.popleft().succeed()
        event.succeed(payload)

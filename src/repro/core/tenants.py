"""Multi-tenant workload engine: N tenants sharing one simulated SSD.

Each tenant gets its own NVMe namespace (a contiguous slice of the
device, see :meth:`NvmeDriver.provision_namespaces`) and its own
submission queue, so the device-side arbiter
(:mod:`repro.ssd.firmware.arbiter`) is what decides whose commands are
served under contention.  Tenants run either *closed-loop* (a fixed
``iodepth``, FIO-style) or *open-loop* (requests injected at times
drawn from an arrival process in :mod:`repro.workloads.synthetic`,
regardless of completions — the regime where queueing delay and QoS
policy dominate tail latency).

Accounting is per tenant: a :class:`LatencyRecorder` each, live
``tenantN.*`` gauges in the system :class:`MetricsRegistry` (sampled by
telemetry epochs like every other layer), and a device-wide rollup that
is the *exact* histogram merge of the per-tenant recorders.

The engine forces ``O_DIRECT`` submission: the shared page cache is
indexed by namespace-relative LBAs, which would alias across tenants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.instructions import InstructionMix
from repro.common.iorequest import IOKind, IORequest
from repro.common.recorders import BandwidthRecorder, LatencyRecorder
from repro.common.stats import jain_fairness
from repro.common.units import MB, SEC
from repro.core.metrics import MultiTenantResult, TenantResult
from repro.workloads.synthetic import ZipfianHotspot, arrival_from_spec

_USER_SUBMIT = InstructionMix.typical(700)
_USER_REAP = InstructionMix.typical(400)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: its traffic shape, QoS class and capacity share."""

    name: str = ""
    rw: str = "randread"            # read|write|randread|randwrite|randrw
    bs: int = 4096                  # request size, bytes
    iodepth: int = 8                # closed-loop depth (when arrival is None)
    total_ios: int = 0              # 0 = bounded by the job's runtime_ns
    #: open-loop arrival spec for ``arrival_from_spec`` (None = closed loop)
    arrival: Optional[Dict] = None
    zipf_theta: float = 0.0         # 0 = uniform addressing
    weight: int = 1                 # WFQ share (device hil.qos_weights)
    priority: int = 1               # WRR class: 0 high, 1 medium, 2 low
    size_fraction: float = 0.0      # capacity share; 0 = equal split
    rwmixread: int = 70             # % reads for randrw
    seed: int = 0                   # extra per-tenant seed salt

    def __post_init__(self) -> None:
        if self.bs % 512:
            raise ValueError("block size must be a sector multiple")
        if self.rw not in ("read", "write", "randread", "randwrite", "randrw"):
            raise ValueError(f"unknown rw mode {self.rw!r}")
        if self.iodepth < 1:
            raise ValueError("iodepth must be >= 1")
        if self.weight < 1:
            raise ValueError("weight must be >= 1")
        if not 0.0 <= self.size_fraction <= 1.0:
            raise ValueError("size_fraction must be in [0, 1]")

    @property
    def is_random(self) -> bool:
        """True for randomly-addressed modes."""
        return self.rw.startswith("rand")

    def kind_for(self, rng: random.Random) -> IOKind:
        """Draw the next request's direction for this tenant."""
        if self.rw in ("read", "randread"):
            return IOKind.READ
        if self.rw in ("write", "randwrite"):
            return IOKind.WRITE
        return IOKind.READ if rng.randrange(100) < self.rwmixread \
            else IOKind.WRITE


@dataclass
class MultiTenantJob:
    """A co-located tenant mix plus the run's global bounds."""

    tenants: Tuple[TenantSpec, ...] = ()
    runtime_ns: Optional[int] = None
    seed: int = 1234
    warmup_fraction: float = 0.15   # excluded from steady-state stats

    def __post_init__(self) -> None:
        self.tenants = tuple(self.tenants)
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.runtime_ns is None and any(t.total_ios <= 0
                                           for t in self.tenants):
            raise ValueError("tenants without total_ios need a job runtime_ns")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")


class _TenantState:
    """Mutable per-tenant run state shared with metric lambdas."""

    __slots__ = ("spec", "index", "nsid", "n_sectors", "qid", "issued",
                 "completed", "bytes", "outstanding", "latency", "bandwidth",
                 "done_event")

    def __init__(self, spec: TenantSpec, index: int, nsid: int,
                 n_sectors: int, qid: int) -> None:
        self.spec = spec
        self.index = index
        self.nsid = nsid
        self.n_sectors = n_sectors
        self.qid = qid
        self.issued = 0
        self.completed = 0
        self.bytes = 0
        self.outstanding = 0
        self.latency = LatencyRecorder()
        self.bandwidth = BandwidthRecorder()
        self.done_event = [None]


def tenant_sizes(total_sectors: int, tenants: Sequence[TenantSpec],
                 align_sectors: int) -> List[int]:
    """Partition a device's sectors across tenants, alignment-floored.

    Tenants with ``size_fraction == 0`` share whatever fraction the
    explicit ones leave over, equally.
    """
    explicit = sum(t.size_fraction for t in tenants)
    if explicit > 1.0 + 1e-9:
        raise ValueError("tenant size fractions exceed the device")
    implicit = [t for t in tenants if not t.size_fraction]
    rest = max(0.0, 1.0 - explicit) / len(implicit) if implicit else 0.0
    sizes = []
    for t in tenants:
        fraction = t.size_fraction or rest
        sectors = int(total_sectors * fraction)
        sectors = (sectors // align_sectors) * align_sectors
        if sectors < align_sectors:
            raise ValueError(f"tenant {t.name or len(sizes)} share too small")
        sizes.append(sectors)
    return sizes


class MultiTenantEngine:
    """Runs a :class:`MultiTenantJob` against a wired-up ``FullSystem``."""

    def __init__(self, system) -> None:
        if system.interface != "nvme":
            raise ValueError("multi-tenant runs need NVMe namespaces")
        self.system = system

    # -- setup ---------------------------------------------------------------

    def _provision(self, job: MultiTenantJob) -> List[_TenantState]:
        """Partition namespaces, queues, priorities; build tenant states."""
        system = self.system
        adapter = system.adapter
        align = max(1, system.ssd.config.superpage_size // 512)
        sizes = tenant_sizes(system.device_sectors, job.tenants, align)
        namespaces = adapter.provision_namespaces(sizes)
        # one submission queue per tenant: tenant i -> qid i + 1
        while adapter.n_io_queues < len(job.tenants):
            adapter.create_io_queue_pair(adapter.n_io_queues + 1)
        states = []
        for index, (spec, ns) in enumerate(zip(job.tenants, namespaces)):
            qid = 1 + index
            system.controller.queue_priorities[qid] = spec.priority
            states.append(_TenantState(spec, index, ns.nsid,
                                       ns.n_sectors, qid))
        self._register_tenant_metrics(states)
        return states

    def _register_tenant_metrics(self, states: List[_TenantState]) -> None:
        """Publish live ``tenantN.*`` gauges into the system registry.

        Telemetry epochs sample these like any other layer's metrics, so
        fairness is observable over time, not just post-run.  Guarded so
        a second engine on the same system does not double-register.
        """
        reg = self.system.metrics
        hil = self.system.ssd.hil
        for state in states:
            prefix = f"tenant{state.index}"
            if f"{prefix}.issued" in reg:
                continue
            scope = reg.scoped(prefix)
            scope.register("issued", lambda s=state: float(s.issued))
            scope.register("completed", lambda s=state: float(s.completed))
            scope.register("bytes", lambda s=state: float(s.bytes))
            scope.register("outstanding",
                           lambda s=state: float(s.outstanding))
            scope.register("p99_latency_us",
                           lambda s=state:
                           s.latency.percentile(99) / 1000.0)
            scope.register("grants",
                           lambda s=state, h=hil:
                           float(h.arbiter.grants.get(s.qid, 0)))

    # -- the per-tenant submission loop --------------------------------------

    def _tenant_proc(self, state: _TenantState, job: MultiTenantJob,
                     deadline: Optional[int], warmup_end: Optional[int]):
        """Process generator: one tenant's issue loop plus drain."""
        system = self.system
        sim = system.sim
        spec = state.spec
        rng = random.Random((job.seed * 0x9E3779B1 + spec.seed
                             + 7919 * state.index) & 0x7FFFFFFFFFFF)
        sectors = spec.bs // 512
        n_blocks = state.n_sectors // sectors
        if n_blocks < 1:
            raise ValueError("tenant namespace smaller than one request")
        zipf = ZipfianHotspot(n_blocks, spec.zipf_theta) \
            if spec.zipf_theta else None
        arrival = arrival_from_spec(spec.arrival) if spec.arrival else None
        warmup_ios = int(spec.total_ios * job.warmup_fraction) \
            if spec.total_ios else 0
        next_seq = 0

        def on_complete(req, t_submit):
            """Completion callback factory; freezes the issue-time size."""
            nbytes = req.nbytes

            def _cb(_event):
                """Account one completion against this tenant."""
                state.outstanding -= 1
                state.completed += 1
                state.bytes += nbytes
                past_warmup = state.completed > warmup_ios \
                    if spec.total_ios else (warmup_end is None
                                            or t_submit >= warmup_end)
                if past_warmup:
                    state.latency.record(sim.now - t_submit)
                    state.bandwidth.record(nbytes, sim.now)
                if state.done_event[0] is not None:
                    event, state.done_event[0] = state.done_event[0], None
                    event.succeed()
            return _cb

        while True:
            if spec.total_ios and state.issued >= spec.total_ios:
                break
            if deadline is not None and sim.now >= deadline:
                break
            if arrival is not None:
                # open loop: next arrival fires no matter what is queued
                yield sim.timeout(arrival.next_gap_ns(rng, sim.now))
                if deadline is not None and sim.now >= deadline:
                    break
            elif state.outstanding >= spec.iodepth:
                state.done_event[0] = sim.event()
                yield state.done_event[0]
                continue
            if zipf is not None:
                block = zipf.item(rng)
            elif spec.is_random:
                block = rng.randrange(n_blocks)
            else:
                block = next_seq % n_blocks
                next_seq += 1
            kind = spec.kind_for(rng)
            req = IORequest(kind, block * sectors, sectors,
                            nsid=state.nsid)
            req.queue_id = state.index
            yield from system.cpu.execute(_USER_SUBMIT, core=state.index,
                                          kernel=False)
            req.t_submit = sim.now
            completion = yield from system.submit_io(
                req, stream_id=state.index, core=state.index, direct=True)
            completion.add_callback(on_complete(req, req.t_submit))
            state.outstanding += 1
            state.issued += 1
            yield from system.cpu.execute(_USER_REAP, core=state.index,
                                          kernel=False)

        while state.outstanding > 0:
            state.done_event[0] = sim.event()
            yield state.done_event[0]

    # -- the run -------------------------------------------------------------

    def run(self, job: MultiTenantJob) -> MultiTenantResult:
        """Execute every tenant concurrently; report per-tenant + rollup."""
        system = self.system
        sim = system.sim
        states = self._provision(job)
        start_ns = sim.now
        deadline = (start_ns + job.runtime_ns) if job.runtime_ns else None
        warmup_end = (start_ns
                      + int(job.runtime_ns * job.warmup_fraction)) \
            if job.runtime_ns else None

        buf_bytes = sum(max(s.spec.iodepth, 64) * s.spec.bs
                        for s in states) + 16 * MB
        system.memory.allocate("tenants", buf_bytes)
        procs = [sim.process(self._tenant_proc(state, job, deadline,
                                               warmup_end))
                 for state in states]

        def waiter():
            """Join every tenant process."""
            for proc in procs:
                yield proc

        sim.run_process(waiter())
        system.memory.free("tenants")
        elapsed = sim.now - start_ns

        tenants: List[TenantResult] = []
        merged = LatencyRecorder()
        for state in states:
            seconds = elapsed / SEC if elapsed else 0.0
            tenants.append(TenantResult(
                name=state.spec.name or f"tenant{state.index}",
                nsid=state.nsid,
                issued=state.issued,
                completed=state.completed,
                total_bytes=state.bytes,
                bandwidth_mbps=(state.bytes / MB) / seconds
                if seconds else 0.0,
                iops=state.completed / seconds if seconds else 0.0,
                latency=state.latency,
            ))
            merged.merge(state.latency)

        total_bytes = sum(t.total_bytes for t in tenants)
        total_ios = sum(t.completed for t in tenants)
        seconds = elapsed / SEC if elapsed else 0.0
        return MultiTenantResult(
            tenants=tenants,
            elapsed_ns=elapsed,
            total_ios=total_ios,
            total_bytes=total_bytes,
            bandwidth_mbps=(total_bytes / MB) / seconds if seconds else 0.0,
            iops=total_ios / seconds if seconds else 0.0,
            latency=merged,
            fairness=jain_fairness([t.total_bytes for t in tenants]),
            arbitration=system.ssd.config.hil.arbitration,
            grants=dict(system.ssd.hil.arbiter.grants),
            ssd_stats=system.ssd.stats_report(),
        )

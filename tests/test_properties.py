"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.instructions import InstructionMix
from repro.common.recorders import LatencyRecorder
from repro.sim import PriorityStore, Resource, Simulator, Store
from repro.ssd.config import FlashGeometry, FTLConfig
from repro.ssd.device import SSD
from repro.ssd.firmware.requests import DeviceCommand, split_command
from repro.ssd.storage.address import AddressMapper
from repro.ssd.storage.array import FlashArray, PageState
from repro.common.iorequest import IOKind

from tests.conftest import tiny_ssd_config

_geometries = st.builds(
    FlashGeometry,
    channels=st.integers(1, 4),
    packages_per_channel=st.integers(1, 3),
    dies_per_package=st.integers(1, 2),
    planes_per_die=st.integers(1, 2),
    blocks_per_plane=st.integers(2, 8),
    pages_per_block=st.integers(2, 16),
    page_size=st.sampled_from([2048, 4096]),
)


class TestAddressProperties:
    @given(_geometries, st.integers(0, 1 << 30))
    def test_ppn_ppa_roundtrip(self, geometry, seed):
        mapper = AddressMapper(geometry)
        ppn = seed % geometry.total_physical_pages
        assert mapper.ppn(mapper.ppa(ppn)) == ppn

    @given(_geometries)
    def test_units_partition_pages(self, geometry):
        mapper = AddressMapper(geometry)
        pages_per_unit = mapper.pages_per_unit
        total = geometry.total_physical_pages
        assert pages_per_unit * geometry.parallel_units == total


class TestSimulatorProperties:
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=40))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 5)),
                    min_size=1, max_size=30))
    def test_priority_store_orders_by_priority_then_fifo(self, items):
        sim = Simulator()
        store = PriorityStore(sim)
        for value, (priority, _x) in enumerate(items):
            store.put((priority, value), priority=priority)
        popped = []

        def consumer():
            for _ in range(len(items)):
                popped.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        priorities = [p for p, _v in popped]
        assert priorities == sorted(priorities)
        # FIFO within equal priority: values ascend
        for priority in set(priorities):
            values = [v for p, v in popped if p == priority]
            assert values == sorted(values)

    @given(st.integers(1, 5), st.integers(1, 30))
    def test_resource_never_exceeds_capacity(self, capacity, workers):
        sim = Simulator()
        resource = Resource(sim, capacity)
        peak = {"value": 0}

        def worker():
            yield resource.acquire()
            peak["value"] = max(peak["value"], resource.in_use)
            yield sim.timeout(7)
            resource.release()

        for _ in range(workers):
            sim.process(worker())
        sim.run()
        assert peak["value"] <= capacity
        assert resource.in_use == 0

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=25))
    def test_store_preserves_fifo(self, values):
        sim = Simulator()
        store = Store(sim)
        for value in values:
            store.put(value)
        out = []

        def consumer():
            for _ in range(len(values)):
                out.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert out == values


class TestFlashArrayProperties:
    @given(st.integers(0, 2 ** 32 - 1))
    @settings(deadline=None)
    def test_random_lifecycle_never_corrupts_counts(self, seed):
        rng = random.Random(seed)
        geometry = FlashGeometry(channels=1, packages_per_channel=1,
                                 dies_per_package=1, planes_per_die=1,
                                 blocks_per_plane=4, pages_per_block=8,
                                 page_size=2048)
        array = FlashArray(geometry)
        valid = set()
        for _ in range(200):
            action = rng.random()
            if action < 0.5:
                # program next page of a random non-full block
                block_idx = rng.randrange(4)
                block = array.block(0, block_idx)
                if block.next_page < 8:
                    ppn = block_idx * 8 + block.next_page
                    array.program_ppn(ppn, now=0)
                    valid.add(ppn)
            elif action < 0.8 and valid:
                ppn = rng.choice(sorted(valid))
                array.invalidate_ppn(ppn)
                valid.discard(ppn)
            else:
                block_idx = rng.randrange(4)
                block = array.block(0, block_idx)
                if block.valid_count == 0:
                    array.erase_block(0, block_idx)
                    valid = {p for p in valid if p // 8 != block_idx}
        assert array.valid_page_total() == len(valid)
        for ppn in valid:
            assert array.page_state(ppn) == PageState.VALID


class TestSplitCommandProperties:
    @given(st.integers(0, 500), st.integers(1, 200),
           st.sampled_from([2048, 4096]), st.integers(1, 8))
    def test_split_covers_exactly_the_request(self, slba, nsectors,
                                              page_size, pages_per_line):
        cmd = DeviceCommand(IOKind.READ, slba, nsectors)
        lines = split_command(cmd, page_size, pages_per_line)
        covered = 0
        sectors_per_page = page_size // 512
        sectors_per_line = sectors_per_page * pages_per_line
        for line in lines:
            for slot, (off, count) in line.page_sectors.items():
                assert 0 <= slot < pages_per_line
                assert 0 <= off < sectors_per_page
                assert 0 < count <= sectors_per_page - off
                covered += count
            # line ids strictly increase
        assert covered == nsectors
        ids = [line.line_id for line in lines]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        # reassemble: absolute sector ranges must tile [slba, slba+n)
        absolute = []
        for line in lines:
            base = line.line_id * sectors_per_line
            for slot, (off, count) in sorted(line.page_sectors.items()):
                start = base + slot * sectors_per_page + off
                absolute.extend(range(start, start + count))
        assert absolute == list(range(slba, slba + nsectors))


class TestDeviceProperties:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2 ** 16))
    def test_random_write_read_sequences_preserve_data(self, seed):
        """The end-to-end invariant: the device is a correct block store."""
        from repro.sim import Simulator as Sim
        sim = Sim()
        config = tiny_ssd_config()
        ssd = SSD(sim, config, data_emulation=True)
        rng = random.Random(seed)
        sectors = config.logical_sectors
        shadow = {}

        def scenario():
            for _ in range(30):
                slba = rng.randrange(sectors - 16)
                count = rng.randint(1, 16)
                if rng.random() < 0.6:
                    data = bytes(rng.getrandbits(8)
                                 for _ in range(count * 512))
                    yield from ssd.write(slba, count, data)
                    for i in range(count):
                        shadow[slba + i] = data[i * 512:(i + 1) * 512]
                else:
                    got = yield from ssd.read(slba, count)
                    for i in range(count):
                        expected = shadow.get(slba + i, bytes(512))
                        assert got[i * 512:(i + 1) * 512] == expected, \
                            f"sector {slba + i} mismatch"

        sim.run_process(scenario())


class TestInstrumentProperties:
    @given(st.lists(st.integers(0, 10 ** 9), min_size=1, max_size=100))
    def test_latency_percentiles_are_monotone(self, samples):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        p50 = recorder.percentile(50)
        p90 = recorder.percentile(90)
        p99 = recorder.percentile(99)
        assert recorder.min() <= p50 <= p90 <= p99 <= recorder.max()

    @given(st.integers(1, 10 ** 6), st.floats(0.0, 0.3))
    def test_instruction_mix_total_conserved(self, total, fp_fraction):
        mix = InstructionMix.typical(total, fp_fraction)
        assert mix.total == total
        assert mix.cycles() >= total  # CPI >= 1 for every class

"""Figure 10: performance validation across block sizes (4 KB - 1024 KB).

Sweeps the request size at fixed depth for every device and reports
simulated bandwidth plus error ranges versus a reference extrapolated
from the 4 KB curves (large transfers converge to each device's
sequential ceiling, which the digitized curves already capture).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import format_series, format_table
from repro.baselines.reference import REAL_DEVICES, error_rate, reference_at
from repro.common.units import KB
from repro.core import presets
from repro.core.system import FullSystem
from repro.experiments.common import DEVICE_INTERFACES, run_pattern
from repro.ssd.config import CacheConfig
from repro.workloads.synthetic import PATTERN_RW

FULL_SIZES = [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1024 * KB]
QUICK_SIZES = [4 * KB, 64 * KB, 1024 * KB]

# sequential ceilings (MB/s) for the block-size reference: the interface
# limit for big transfers, from each device's public spec class
_SEQ_CEILING = {"intel750": 2200, "850pro": 550, "zssd": 3200, "983dct": 2000}
_WRITE_CEILING = {"intel750": 950, "850pro": 520, "zssd": 2300, "983dct": 1400}


def _reference(device: str, pattern: str, bs: int) -> float:
    """Block-size reference: 4 KB anchor blending into the ceiling."""
    anchor = reference_at(device, pattern, 16)
    ceiling = (_SEQ_CEILING if pattern.endswith("read")
               else _WRITE_CEILING)[device]
    # bandwidth grows with block size, saturating near the ceiling
    blocks = bs / (4 * KB)
    grown = anchor * blocks
    return min(ceiling, grown) if grown > anchor else anchor


def run(quick: bool = True, devices=None, sizes=None, budgets=None) -> Dict:
    """``sizes``/``budgets`` shrink the sweep (golden small configs);
    ``budgets`` is an (under-64K, over-64K) byte-volume pair."""
    sizes = sizes or (QUICK_SIZES if quick else FULL_SIZES)
    devices = devices or (["intel750", "zssd"] if quick
                          else list(REAL_DEVICES))
    results: Dict = {"sizes": sizes, "devices": {}}
    for device in devices:
        per_pattern: Dict = {}
        for pattern in PATTERN_RW:
            curve = {}
            for bs in sizes:
                # small blocks: enough I/Os for steady timing; large
                # blocks: enough *volume* to exceed the write cache so
                # sustained (flash-bound) rates are measured
                if bs < 64 * KB:
                    budget = budgets[0] if budgets \
                        else ((6 << 20) if quick else (16 << 20))
                else:
                    budget = budgets[1] if budgets \
                        else ((32 << 20) if quick else (96 << 20))
                n_ios = max(24, budget // bs)
                # bound the data cache so large writes actually reach
                # flash within the run (see EXPERIMENTS.md)
                config = presets.by_name(device).with_overrides(
                    cache=CacheConfig(fraction_of_dram=0.02))
                system = FullSystem(device=config,
                                    interface=DEVICE_INTERFACES[device])
                system.precondition()
                res = run_pattern(system, pattern, depth=16, bs=bs,
                                  total_ios=n_ios)
                real = _reference(device, pattern, bs)
                curve[bs // KB] = {
                    "bandwidth_mbps": res.bandwidth_mbps,
                    "reference_mbps": real,
                    "error": error_rate(real, res.bandwidth_mbps),
                }
            per_pattern[pattern] = curve
        results["devices"][device] = per_pattern
    results["error_summary"] = _summarize(results)
    return results


def _summarize(results: Dict) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for device, per_pattern in results["devices"].items():
        errors: List[float] = [point["error"]
                               for curve in per_pattern.values()
                               for point in curve.values()]
        out[device] = {
            "min_error": min(errors),
            "mean_error": sum(errors) / len(errors),
            "max_error": max(errors),
        }
    return out


def render(results: Dict) -> str:
    blocks = []
    for device, per_pattern in results["devices"].items():
        for pattern, curve in per_pattern.items():
            series = {
                "amber": {kb: round(v["bandwidth_mbps"])
                          for kb, v in curve.items()},
                "reference": {kb: round(v["reference_mbps"])
                              for kb, v in curve.items()},
            }
            blocks.append(format_series(
                series, "KiB", f"Fig 10 {device} {pattern} MB/s"))
    rows = [[device, f"{s['min_error'] * 100:.0f}%",
             f"{s['mean_error'] * 100:.0f}%", f"{s['max_error'] * 100:.0f}%"]
            for device, s in results["error_summary"].items()]
    blocks.append(format_table(["device", "min err", "mean err", "max err"],
                               rows, "Block-size sweep error summary"))
    return "\n\n".join(blocks)

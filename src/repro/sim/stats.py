"""Measurement instruments attached to simulated components.

Both instruments here are designed to hold *bounded* memory on long
runs: change-point / sample histories are opt-in (``keep_timeline``)
and, when kept, are coarsened in place once they exceed a cap rather
than growing linearly with simulated time.  Scalar summaries (means,
utilizations) are always exact regardless of the history setting.

For a unified, named view of many instruments across a system, register
them with a :class:`repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: Default cap on retained history points before coarsening kicks in.
DEFAULT_MAX_POINTS = 16384


class TimeAverage:
    """Time-weighted average of a piecewise-constant signal.

    Used for queue depths, memory footprints and similar quantities whose
    mean must be weighted by how long each value was held.

    The change-point history behind :meth:`timeline` is **opt-in** via
    ``keep_timeline`` — without it, long runs would grow a list linearly
    even when nobody reads it.  When kept, the history is halved (every
    other interior point dropped) whenever it exceeds ``max_points``;
    :meth:`mean` is computed from running sums and stays exact either way.
    """

    def __init__(self, sim, initial: float = 0.0,
                 keep_timeline: bool = False,
                 max_points: int = DEFAULT_MAX_POINTS) -> None:
        self.sim = sim
        self._value = initial
        self._last_change = sim.now
        self._weighted_sum = 0.0
        self._origin = sim.now
        self._keep_timeline = keep_timeline
        self._max_points = max(4, max_points)
        self._samples: List[Tuple[int, float]] = \
            [(sim.now, initial)] if keep_timeline else []

    @property
    def value(self) -> float:
        """The signal's current value."""
        return self._value

    def set(self, value: float) -> None:
        """Step the signal to ``value`` at the current simulated time."""
        now = self.sim.now
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        if self._keep_timeline:
            self._samples.append((now, value))
            if len(self._samples) > self._max_points:
                # halve the history: keep first and last, drop every
                # other interior change point
                self._samples = (self._samples[:1]
                                 + self._samples[1:-1:2]
                                 + self._samples[-1:])

    def add(self, delta: float) -> None:
        """Step the signal by ``delta`` relative to its current value."""
        self.set(self._value + delta)

    def mean(self) -> float:
        """Exact time-weighted mean since construction."""
        elapsed = self.sim.now - self._origin
        if elapsed <= 0:
            return self._value
        total = self._weighted_sum + self._value * (self.sim.now - self._last_change)
        return total / elapsed

    def timeline(self) -> List[Tuple[int, float]]:
        """(time_ns, value) change points — used for the Fig 15 timelines.

        Empty unless the instrument was built with ``keep_timeline=True``;
        possibly coarsened past ``max_points`` change points.
        """
        return list(self._samples)


class UtilizationTracker:
    """Fraction of time a component spends busy, with interval sampling.

    The :meth:`mark` history is bounded: past ``max_points`` marks the
    list is halved (marks hold *cumulative* busy time, so any subset
    still yields consistent — just coarser — intervals).  Busy-time and
    utilization totals are always exact.
    """

    def __init__(self, sim, max_points: int = DEFAULT_MAX_POINTS) -> None:
        self.sim = sim
        self._busy_depth = 0
        self._busy_since: Optional[int] = None
        self._busy_time = 0
        self._origin = sim.now
        self._max_points = max(4, max_points)
        self._marks: List[Tuple[int, int]] = []  # (time, cumulative busy ns)

    def begin(self) -> None:
        """Enter a busy section (re-entrant; depth-counted)."""
        if self._busy_depth == 0:
            self._busy_since = self.sim.now
        self._busy_depth += 1

    def end(self) -> None:
        """Leave a busy section; must pair with a prior :meth:`begin`."""
        if self._busy_depth <= 0:
            raise RuntimeError("end() without matching begin()")
        self._busy_depth -= 1
        if self._busy_depth == 0:
            self._busy_time += self.sim.now - self._busy_since
            self._busy_since = None

    def busy_ns(self) -> int:
        """Total busy time so far, including any open busy section."""
        total = self._busy_time
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        return total

    def utilization(self) -> float:
        """Busy fraction of the time elapsed since construction."""
        elapsed = self.sim.now - self._origin
        return self.busy_ns() / elapsed if elapsed > 0 else 0.0

    def mark(self) -> None:
        """Record a sample point for interval utilization queries."""
        if len(self._marks) >= self._max_points:
            # halve: cumulative samples stay consistent when thinned
            del self._marks[::2]
        self._marks.append((self.sim.now, self.busy_ns()))

    def interval_utilization(self) -> List[Tuple[int, float]]:
        """Per-interval utilization between successive ``mark()`` calls."""
        points: List[Tuple[int, float]] = []
        prev_t, prev_b = self._origin, 0
        for t, b in self._marks:
            span = t - prev_t
            points.append((t, (b - prev_b) / span if span > 0 else 0.0))
            prev_t, prev_b = t, b
        return points

"""Closed-loop block-trace replay harness for baseline simulators.

The paper evaluates prior simulators the only way they support: by
replaying 4 KB block traces extracted from FIO at a given I/O depth.
This harness keeps ``iodepth`` requests outstanding against a model's
``service`` process and reports steady-state bandwidth and latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.iorequest import IOKind, IORequest
from repro.common.recorders import BandwidthRecorder, LatencyRecorder
from repro.common.units import SEC
from repro.sim import Simulator


@dataclass
class ReplayResult:
    bandwidth_mbps: float
    mean_latency_us: float
    iops: float
    events_processed: int
    wall_seconds: float = 0.0


class ClosedLoopReplayer:
    def __init__(self, model, region_sectors: int = 1 << 22) -> None:
        self.model = model
        self.region_sectors = region_sectors

    def run(self, pattern: str, bs: int, iodepth: int,
            n_ios: int = 1000, seed: int = 99) -> ReplayResult:
        """``pattern``: seqread | randread | seqwrite | randwrite."""
        import time as _time
        sim = self.model.sim = Simulator()
        self.model.reset(sim)
        rng = random.Random(seed)
        sectors = bs // 512
        n_blocks = max(1, self.region_sectors // sectors)
        latency = LatencyRecorder()
        bandwidth = BandwidthRecorder()
        state = {"done": 0, "next_seq": 0}
        is_read = pattern.endswith("read")
        is_random = pattern.startswith("rand")

        def one_slot():
            while state["done"] + iodepth <= n_ios + iodepth - 1:
                if state["done"] >= n_ios:
                    break
                if is_random:
                    block = rng.randrange(n_blocks)
                else:
                    block = state["next_seq"] % n_blocks
                    state["next_seq"] += 1
                req = IORequest(IOKind.READ if is_read else IOKind.WRITE,
                                block * sectors, sectors)
                start = sim.now
                yield sim.process(self.model.service(req))
                state["done"] += 1
                if state["done"] > n_ios // 10:  # warmup skip
                    latency.record(sim.now - start)
                    bandwidth.record(req.nbytes, sim.now)

        wall0 = _time.perf_counter()  # simlint: disable=SIM101 -- measuring simulator speed; wall_seconds is a golden VOLATILE_KEY
        procs = [sim.process(one_slot()) for _ in range(iodepth)]

        def waiter():
            for proc in procs:
                yield proc

        sim.run_process(waiter())
        wall = _time.perf_counter() - wall0  # simlint: disable=SIM101 -- measuring simulator speed; wall_seconds is a golden VOLATILE_KEY
        elapsed = sim.now
        return ReplayResult(
            bandwidth_mbps=bandwidth.mbps(),
            mean_latency_us=latency.mean_us(),
            iops=state["done"] / (elapsed / SEC) if elapsed else 0.0,
            events_processed=sim.events_processed,
            wall_seconds=wall,
        )

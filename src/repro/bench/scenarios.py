"""The pinned benchmark scenarios.

Three calibrated workloads, smallest to largest:

* ``kernel_churn`` — the discrete-event kernel alone: processes trading
  timeouts, semaphores, stores and ``AllOf``/``AnyOf`` fan-ins, with no
  SSD model attached.  Measures raw events/second.
* ``randread_nvme`` — the paper's Figure 16 macro point: 4 KB random
  reads at queue depth 16 through the full system (syscall → block
  layer → NVMe driver → PCIe DMA → HIL/ICL/FTL/FIL → flash).
* ``write_storm_gc`` — a small low-overprovision device random-written
  past its capacity so garbage collection runs hot; exercises the
  allocator, GC victim selection and erase/migration paths.

Every scenario is deterministic: the same profile always produces the
same ``events`` and ``sim_ns``, which the golden tests pin.  Only
``wall_seconds`` varies run to run.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict

from repro.common.units import KB
from repro.sim import AllOf, AnyOf, Resource, Simulator, Store

#: per-scenario size knobs for the two recording profiles
PROFILES = ("smoke", "full")


@dataclass
class ScenarioResult:
    """One scenario run: wall-clock speed plus deterministic facts."""

    name: str
    profile: str
    wall_seconds: float
    events: int
    sim_ns: int
    extra: Dict[str, float]

    @property
    def events_per_sec(self) -> float:
        """Processed events per wall-clock second (headline speed)."""
        return self.events / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self) -> Dict:
        out = asdict(self)
        out["events_per_sec"] = round(self.events_per_sec, 1)
        return out

    # Streaming latency summary attached by the macro scenarios.
    # Deliberately a plain class attribute, NOT a dataclass field:
    # ``to_dict()`` is pinned by tests/golden and must not change shape;
    # ``record.run_all`` merges this into the BENCH document instead.
    latency = None


def _latency_summary(recorder) -> Dict[str, float]:
    """End-to-end latency percentiles in µs for the BENCH record.

    p50/p99 come from the recorder's streaming log-bucketed histogram
    (±6.25% bucket error); mean and the sample count are exact.
    """
    if recorder.count == 0:
        return {}
    p50, p99 = recorder.histogram.percentiles([50, 99])
    return {"mean_us": round(recorder.mean() / 1000.0, 3),
            "p50_us": round(p50 / 1000.0, 3),
            "p99_us": round(p99 / 1000.0, 3),
            "samples": recorder.count}


# -- micro: kernel-only churn --------------------------------------------------

def kernel_churn(profile: str = "full") -> ScenarioResult:
    """Pure simulation-kernel stress: no SSD model, just event traffic."""
    n_workers, n_rounds = {"smoke": (16, 60), "full": (64, 400)}[profile]
    sim = Simulator()
    gate = Resource(sim, capacity=4)
    mailbox = Store(sim)

    def worker(index: int):
        for round_no in range(n_rounds):
            yield sim.timeout((index * 7 + round_no * 13) % 97 + 1)
            yield gate.acquire()
            try:
                yield sim.timeout(11)
            finally:
                gate.release()
            mailbox.put((index, round_no))
            # composite waits: a fan-in over fresh timeouts each round
            pair = [sim.timeout(3), sim.timeout(5)]
            yield AllOf(sim, pair)
            yield AnyOf(sim, [sim.timeout(2), sim.timeout(9)])

    def drain(total: int):
        for _ in range(total):
            yield mailbox.get()

    for i in range(n_workers):
        sim.process(worker(i))
    sim.process(drain(n_workers * n_rounds))

    wall0 = time.perf_counter()  # simlint: disable=SIM101 -- measuring simulator speed; wall_seconds is a golden VOLATILE_KEY
    sim.run()
    wall = time.perf_counter() - wall0  # simlint: disable=SIM101 -- measuring simulator speed; wall_seconds is a golden VOLATILE_KEY
    return ScenarioResult("kernel_churn", profile, wall,
                          sim.events_processed, sim.now, {})


# -- macro: 4K random read over NVMe ------------------------------------------

def randread_nvme(profile: str = "full") -> ScenarioResult:
    """Figure 16's full-system point: 4K randread qd16 on intel750/NVMe."""
    from repro.core import presets
    from repro.core.fio import FioJob
    from repro.core.system import FullSystem

    n_ios = {"smoke": 300, "full": 3000}[profile]
    system = FullSystem(device=presets.intel750(), interface="nvme")
    system.precondition()
    wall0 = time.perf_counter()  # simlint: disable=SIM101 -- measuring simulator speed; wall_seconds is a golden VOLATILE_KEY
    res = system.run_fio(FioJob(rw="randread", bs=4096, iodepth=16,
                                total_ios=n_ios))
    wall = time.perf_counter() - wall0  # simlint: disable=SIM101 -- measuring simulator speed; wall_seconds is a golden VOLATILE_KEY
    result = ScenarioResult(
        "randread_nvme", profile, wall,
        system.sim.events_processed, system.sim.now,
        {"iops": round(res.iops, 1),
         "bandwidth_mbps": round(res.bandwidth_mbps, 3),
         "n_ios": n_ios})
    result.latency = _latency_summary(res.latency)
    return result


# -- macro: GC-heavy write storm ----------------------------------------------

def _storm_config():
    """A small 10%-OP device so a short run drives GC hard."""
    from repro.ssd.config import (
        CacheConfig,
        CoreConfig,
        DramConfig,
        FlashGeometry,
        FlashTiming,
        FTLConfig,
        SSDConfig,
    )
    return SSDConfig(
        name="bench-storm",
        geometry=FlashGeometry(
            channels=2, packages_per_channel=1, dies_per_package=1,
            planes_per_die=2, blocks_per_plane=64, pages_per_block=16,
            page_size=4 * KB),
        timing=FlashTiming(
            t_read_fast=57_000, t_read_slow=94_000,
            t_prog_fast=413_000, t_prog_slow=1_800_000,
            t_erase=3_000_000, bits_per_cell=2, channel_bus_mhz=333),
        dram=DramConfig(size=8 << 20),
        cores=CoreConfig(n_cores=3, frequency=500_000_000),
        cache=CacheConfig(fraction_of_dram=0.25),
        ftl=FTLConfig(overprovision=0.10, gc_threshold_free_blocks=1),
    )


def write_storm_gc(profile: str = "full") -> ScenarioResult:
    """Random-write a low-OP device past capacity; GC dominates."""
    from repro.core.fio import FioJob
    from repro.core.system import FullSystem

    multiplier = {"smoke": 0.25, "full": 1.5}[profile]
    system = FullSystem(device=_storm_config(), interface="nvme")
    system.precondition()
    capacity = system.device_sectors * 512
    n_ios = max(50, int(capacity * multiplier) // 4096)
    wall0 = time.perf_counter()  # simlint: disable=SIM101 -- measuring simulator speed; wall_seconds is a golden VOLATILE_KEY
    res = system.run_fio(FioJob(rw="randwrite", bs=4096, iodepth=16,
                                total_ios=n_ios, warmup_fraction=0.5))
    wall = time.perf_counter() - wall0  # simlint: disable=SIM101 -- measuring simulator speed; wall_seconds is a golden VOLATILE_KEY
    result = ScenarioResult(
        "write_storm_gc", profile, wall,
        system.sim.events_processed, system.sim.now,
        {"iops": round(res.iops, 1),
         "gc_runs": res.ssd_stats["gc_runs"],
         "write_amplification": round(
             res.ssd_stats["write_amplification"], 6),
         "n_ios": n_ios})
    result.latency = _latency_summary(res.latency)
    return result


#: name -> callable(profile) registry, in recording order
SCENARIOS: Dict[str, Callable[[str], ScenarioResult]] = {
    "kernel_churn": kernel_churn,
    "randread_nvme": randread_nvme,
    "write_storm_gc": write_storm_gc,
}

"""FIO-like workload engine running at "user level" on the host model.

This is how Amber evaluates: instead of replaying block traces inside
the storage simulator, real jobs execute on the simulated host — each
job's submission loop burns user CPU, every I/O walks the syscall/block
layer/driver path, completions arrive by interrupt.  The jobs keep
``iodepth`` requests outstanding, just like libaio FIO.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.instructions import InstructionMix
from repro.common.iorequest import IOKind, IORequest
from repro.common.recorders import BandwidthRecorder, LatencyRecorder
from repro.common.units import MB, SEC

_USER_SUBMIT = InstructionMix.typical(700)
_USER_REAP = InstructionMix.typical(400)
_SYSCALL_PAGE_HIT = InstructionMix.typical(1500)


@dataclass
class FioJob:
    """One FIO job specification (a subset of real FIO's surface)."""

    rw: str = "randread"            # read|write|randread|randwrite|randrw
    bs: int = 4096                  # block size in bytes
    iodepth: int = 1
    numjobs: int = 1
    total_ios: int = 1000           # per job; 0 = bounded by runtime only
    runtime_ns: Optional[int] = None
    direct: bool = True             # O_DIRECT (bypass the page cache)
    rwmixread: int = 70             # % reads for randrw/rw
    offset: int = 0                 # region start, bytes
    size: Optional[int] = None      # region size, bytes (None = whole device)
    seed: int = 1234
    warmup_fraction: float = 0.15   # I/Os excluded from steady-state stats

    def __post_init__(self) -> None:
        if self.bs % 512:
            raise ValueError("block size must be a sector multiple")
        if self.rw not in ("read", "write", "randread", "randwrite",
                           "randrw", "rw"):
            raise ValueError(f"unknown rw mode {self.rw!r}")
        if self.iodepth < 1 or self.numjobs < 1:
            raise ValueError("iodepth and numjobs must be >= 1")

    @property
    def is_random(self) -> bool:
        return self.rw.startswith("rand")

    def kind_for(self, rng: random.Random) -> IOKind:
        if self.rw in ("read", "randread"):
            return IOKind.READ
        if self.rw in ("write", "randwrite"):
            return IOKind.WRITE
        return IOKind.READ if rng.randrange(100) < self.rwmixread \
            else IOKind.WRITE


from repro.core.metrics import FioResult  # noqa: E402  (dataclass import order)


def run_multi_tenant(system, job) -> "object":
    """Run a multi-tenant job (the fio-style entry point).

    Thin forwarder to :class:`repro.core.tenants.MultiTenantEngine`;
    kept here so workload call sites import one module for both the
    single-job (`FioEngine`) and multi-tenant engines.  Imported lazily
    to avoid a circular module dependency.
    """
    from repro.core.tenants import MultiTenantEngine
    return MultiTenantEngine(system).run(job)


class FioEngine:
    """Executes FIO jobs against a wired-up FullSystem."""

    def __init__(self, system) -> None:
        self.system = system

    def run(self, job: FioJob) -> FioResult:
        system = self.system
        sim = system.sim
        region_bytes = job.size or (system.device_sectors * 512 - job.offset)
        sectors_per_block = job.bs // 512
        n_blocks = region_bytes // job.bs
        if n_blocks < 1:
            raise ValueError("I/O region smaller than one block")

        latency = LatencyRecorder()
        device_latency = LatencyRecorder()
        bandwidth = BandwidthRecorder()
        read_bw = BandwidthRecorder()
        write_bw = BandwidthRecorder()
        state = {"completed": 0, "bytes": 0}
        stages = {"kernel_submit": [], "interface": [], "device": [],
                  "completion": []}
        warmup_ios = int(job.total_ios * job.numjobs * job.warmup_fraction)

        def one_job(job_index: int):
            rng = random.Random(job.seed + 7919 * job_index)
            outstanding = 0
            issued = 0
            next_seq = (job_index * n_blocks // max(1, job.numjobs))
            done_event = [None]
            deadline = (sim.now + job.runtime_ns) if job.runtime_ns else None

            def on_complete(req, t_submit):
                # capture the issue-time size: the block layer may merge
                # other requests into this one, growing req.nsectors
                nbytes = req.nbytes

                def _cb(_event):
                    nonlocal outstanding
                    outstanding -= 1
                    state["completed"] += 1
                    state["bytes"] += nbytes
                    if state["completed"] > warmup_ios:
                        latency.record(sim.now - t_submit)
                        if req.t_device >= 0 and req.t_backend_done >= 0:
                            device_latency.record(req.device_latency())
                        if (req.t_driver >= 0 and req.t_device >= 0
                                and req.t_backend_done >= 0):
                            stages["kernel_submit"].append(
                                req.t_driver - t_submit)
                            stages["interface"].append(
                                req.t_device - req.t_driver)
                            stages["device"].append(
                                req.t_backend_done - req.t_device)
                            stages["completion"].append(
                                sim.now - req.t_backend_done)
                        bandwidth.record(nbytes, sim.now)
                        (read_bw if req.kind.is_read else write_bw).record(
                            nbytes, sim.now)
                    if done_event[0] is not None:
                        event, done_event[0] = done_event[0], None
                        event.succeed()
                return _cb

            while True:
                if job.total_ios and issued >= job.total_ios:
                    break
                if deadline is not None and sim.now >= deadline:
                    break
                if outstanding >= job.iodepth:
                    done_event[0] = sim.event()
                    yield done_event[0]
                    continue
                # pick the target block
                if job.is_random:
                    block = rng.randrange(n_blocks)
                else:
                    block = next_seq % n_blocks
                    next_seq += 1
                kind = job.kind_for(rng)
                slba = (job.offset // 512) + block * sectors_per_block
                data = None
                if system.data_emulation and kind == IOKind.WRITE:
                    data = system.pattern_data(slba, sectors_per_block,
                                               job.seed)
                req = IORequest(kind, slba, sectors_per_block, data=data)
                req.queue_id = job_index
                # user-space issue loop cost
                yield from system.cpu.execute(_USER_SUBMIT,
                                              core=job_index, kernel=False)
                req.t_submit = sim.now
                completion = yield from system.submit_io(
                    req, stream_id=job_index, core=job_index,
                    direct=job.direct)
                completion.add_callback(on_complete(req, req.t_submit))
                outstanding += 1
                issued += 1
                yield from system.cpu.execute(_USER_REAP,
                                              core=job_index, kernel=False)

            while outstanding > 0:
                done_event[0] = sim.event()
                yield done_event[0]

        start_ns = sim.now
        # FIO's buffers: iodepth * bs per job, registered with the ledger
        buf_bytes = job.numjobs * job.iodepth * job.bs + 16 * MB
        system.memory.allocate("fio", buf_bytes)
        procs = [sim.process(one_job(j)) for j in range(job.numjobs)]

        def waiter():
            for proc in procs:
                yield proc

        sim.run_process(waiter())
        system.memory.free("fio")
        elapsed = sim.now - start_ns

        # the windowed recorder needs enough samples to be meaningful;
        # short runs (big-block sweeps) fall back to a gross estimate
        steady_mbps = bandwidth.mbps()
        if latency.count < 100 and elapsed > 0:
            from repro.common.units import MB as _MB
            steady_mbps = (state["bytes"] / _MB) / (elapsed / SEC)

        breakdown = {name: (sum(values) / len(values) if values else 0.0)
                     for name, values in stages.items()}

        result = FioResult(
            bandwidth_mbps=steady_mbps,
            stage_breakdown=breakdown,
            read_bandwidth_mbps=read_bw.mbps(),
            write_bandwidth_mbps=write_bw.mbps(),
            iops=state["completed"] / (elapsed / SEC) if elapsed else 0.0,
            total_ios=state["completed"],
            total_bytes=state["bytes"],
            elapsed_ns=elapsed,
            latency=latency,
            device_latency=device_latency,
            host_kernel_utilization=system.cpu.kernel_utilization(),
            host_memory_used=system.memory.used_bytes,
            memory_timeline=system.memory.usage_timeline(),
            ssd_power=system.ssd.power_report(),
            ssd_instructions=system.ssd.instruction_report(),
            ssd_stats=system.ssd.stats_report(),
        )
        return result

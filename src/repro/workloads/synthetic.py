"""Synthetic FIO microbenchmark patterns used throughout the evaluation.

Besides the closed-loop seq/rand grids of the paper figures, this
module provides *open-loop arrival processes* (Poisson, bursty on/off,
diurnal) and a Zipfian hotspot address mixer for multi-tenant traffic
(:mod:`repro.core.tenants`).  Open-loop tenants inject requests at
times drawn from the process regardless of completions — the regime
where queueing delay, and therefore QoS arbitration, actually matters.

All generators draw from an explicit ``random.Random`` seeded by the
caller, so a (spec, seed) pair always reproduces the same trace
(pinned by the seeded-determinism tests in ``tests/test_multitenant.py``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.fio import FioJob

#: the four micro-benchmarks of Figs 3, 4, 8, 9, 10
PATTERN_RW = {
    "seqread": "read",
    "randread": "randread",
    "seqwrite": "write",
    "randwrite": "randwrite",
}


def standard_patterns(bs: int = 4096, iodepth: int = 16,
                      total_ios: int = 1000) -> Dict[str, FioJob]:
    """The seq/rand x read/write grid as FIO jobs."""
    return {
        name: FioJob(rw=rw, bs=bs, iodepth=iodepth, total_ios=total_ios)
        for name, rw in PATTERN_RW.items()
    }


def depth_sweep(pattern: str, depths: Iterable[int], bs: int = 4096,
                total_ios: int = 1000) -> List[FioJob]:
    """One job per I/O depth for bandwidth/latency-vs-depth figures."""
    rw = PATTERN_RW[pattern]
    return [FioJob(rw=rw, bs=bs, iodepth=depth, total_ios=total_ios)
            for depth in depths]


def blocksize_sweep(pattern: str, sizes: Iterable[int], iodepth: int = 16,
                    total_ios: int = 500) -> List[FioJob]:
    """One job per block size for the Fig 10 sweep (4 KB - 1024 KB)."""
    rw = PATTERN_RW[pattern]
    return [FioJob(rw=rw, bs=size, iodepth=iodepth, total_ios=total_ios)
            for size in sizes]


# -- open-loop arrival processes ----------------------------------------------


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at a constant mean rate (IOPS)."""

    rate_iops: float

    def next_gap_ns(self, rng: random.Random, now_ns: int) -> int:
        """Nanoseconds until the next arrival after ``now_ns``."""
        if self.rate_iops <= 0:
            raise ValueError("rate_iops must be positive")
        return max(1, int(rng.expovariate(self.rate_iops) * 1e9))


@dataclass(frozen=True)
class BurstyArrivals:
    """On/off traffic: Poisson bursts at ``rate_iops`` separated by silence.

    Time is cut into fixed ``period_ns`` windows; the first
    ``duty_cycle`` fraction of each window is ON, the remainder OFF.
    Within ON windows gaps are exponential; an arrival that would land
    in an OFF stretch is deferred to the start of the next ON window.
    The window grid is deterministic, so two tenants with the same spec
    burst in phase unless their ``phase_ns`` offsets differ.
    """

    rate_iops: float
    period_ns: int = 50_000_000
    duty_cycle: float = 0.2
    phase_ns: int = 0

    def next_gap_ns(self, rng: random.Random, now_ns: int) -> int:
        """Nanoseconds until the next arrival after ``now_ns``."""
        if self.rate_iops <= 0 or not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("need rate_iops > 0 and duty_cycle in (0, 1]")
        on_ns = int(self.period_ns * self.duty_cycle)
        t = now_ns + max(1, int(rng.expovariate(self.rate_iops) * 1e9))
        offset = (t - self.phase_ns) % self.period_ns
        if offset >= on_ns:
            # skip the OFF remainder of this window
            t += self.period_ns - offset
        return max(1, t - now_ns)


@dataclass(frozen=True)
class DiurnalArrivals:
    """Slowly-modulated arrivals: a sinusoidal day/night cycle.

    Implemented by thinning a Poisson process at the peak rate: a
    candidate arrival at time ``t`` is kept with probability
    ``trough + (1 - trough) * (1 - cos(2*pi*t/period)) / 2``, which
    peaks mid-period and bottoms out at ``trough_fraction`` at the
    period boundaries.
    """

    peak_iops: float
    period_ns: int = 1_000_000_000
    trough_fraction: float = 0.1

    def next_gap_ns(self, rng: random.Random, now_ns: int) -> int:
        """Nanoseconds until the next (thinned) arrival after ``now_ns``."""
        if self.peak_iops <= 0 or not 0.0 <= self.trough_fraction <= 1.0:
            raise ValueError("need peak_iops > 0 and trough in [0, 1]")
        t = now_ns
        while True:
            t += max(1, int(rng.expovariate(self.peak_iops) * 1e9))
            cycle = (1.0 - math.cos(2.0 * math.pi * (t % self.period_ns)
                                    / self.period_ns)) / 2.0
            keep = self.trough_fraction + (1.0 - self.trough_fraction) * cycle
            if rng.random() < keep:
                return max(1, t - now_ns)


#: arrival spec "kind" -> constructor (JSON-able fleet parameters)
ARRIVAL_KINDS = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
    "diurnal": DiurnalArrivals,
}


def arrival_from_spec(spec: Dict) -> object:
    """Build an arrival process from a JSON-able ``{"kind": ..., ...}`` dict."""
    kind = spec.get("kind")
    if kind not in ARRIVAL_KINDS:
        raise ValueError(f"unknown arrival kind {kind!r}; "
                         f"choose from {sorted(ARRIVAL_KINDS)}")
    kwargs = {key: value for key, value in spec.items() if key != "kind"}
    return ARRIVAL_KINDS[kind](**kwargs)


# -- Zipfian hotspot addressing -----------------------------------------------


class ZipfianHotspot:
    """Skewed block addressing: rank ``k`` drawn with p ∝ 1/k^theta.

    YCSB-style rejection-free Zipfian generator over ``n`` items with a
    deterministic scrambling multiplier so hot ranks spread over the
    address space instead of clustering at LBA 0.  ``theta = 0`` is
    uniform; the YCSB default 0.99 concentrates ~60% of accesses on the
    hottest few percent of blocks.
    """

    def __init__(self, n_items: int, theta: float = 0.99) -> None:
        if n_items < 1:
            raise ValueError("need at least one item")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.n_items = n_items
        self.theta = theta
        self._zetan = sum(1.0 / math.pow(k, theta)
                         for k in range(1, n_items + 1))
        self._zeta2 = 1.0 + math.pow(0.5, theta)
        self._alpha = 1.0 / (1.0 - theta) if theta else 1.0
        self._eta = ((1.0 - math.pow(2.0 / n_items, 1.0 - theta))
                     / (1.0 - self._zeta2 / self._zetan)) if theta else 0.0

    def rank(self, rng: random.Random) -> int:
        """Draw one item rank in ``[0, n_items)`` (0 = hottest)."""
        if not self.theta:
            return rng.randrange(self.n_items)
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._zeta2:
            return 1
        return int(self.n_items
                   * math.pow(self._eta * u - self._eta + 1.0, self._alpha))

    def item(self, rng: random.Random) -> int:
        """Draw one item, scrambled over the space (hot set spread out)."""
        return (self.rank(rng) * 0x5851F42D + 1) % self.n_items

"""Record a benchmark trajectory point: ``python -m benchmarks.perf``.

Examples::

    # full-size record, compared against the last committed point
    python -m benchmarks.perf --compare BENCH_2026-08-06.json

    # quick smoke record (CI artifact)
    python -m benchmarks.perf --profile smoke --repeats 1 --out bench.json
"""

from __future__ import annotations

import argparse
import datetime
import sys
from pathlib import Path

from repro.bench.record import load_bench, run_all, write_bench
from repro.bench.scenarios import PROFILES, SCENARIOS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="run the pinned perf scenarios and emit BENCH_<date>.json")
    parser.add_argument("--profile", choices=PROFILES, default="full",
                        help="scenario sizes (full = recorded trajectory, "
                             "smoke = CI-sized)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per scenario; best wall clock is kept")
    parser.add_argument("--scenario", action="append", choices=SCENARIOS,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--compare", type=Path, default=None,
                        help="previous BENCH_*.json to embed as baseline")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default BENCH_<today>.json)")
    parser.add_argument("--notes", default="",
                        help="free-form note stored with the record")
    args = parser.parse_args(argv)

    date = datetime.date.today().isoformat()
    out = args.out or Path(f"BENCH_{date}.json")
    print(f"recording profile={args.profile} repeats={args.repeats} -> {out}",
          file=sys.stderr)
    scenarios = run_all(profile=args.profile, repeats=args.repeats,
                        names=args.scenario, verbose=True)
    baseline = load_bench(args.compare) if args.compare else None
    doc = write_bench(out, scenarios, args.profile, date,
                      baseline=baseline, notes=args.notes)
    for name, speedup in doc.get("speedup", {}).items():
        print(f"  speedup {name:16s} x{speedup}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

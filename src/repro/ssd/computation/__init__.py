"""Computation complex: embedded ARMv8 cores + internal DRAM + power."""

from repro.ssd.computation.cores import CpuComplex, EmbeddedCore
from repro.ssd.computation.dram import InternalDram

__all__ = ["EmbeddedCore", "CpuComplex", "InternalDram"]

"""Device-side OCSSD controller.

Reuses the NVMe transport shape (SQE fetch over PCIe, CQE + MSI-X on
completion) but executes *vector* commands addressed by physical page:
the SSD's ICL and FTL are out of the datapath — the device is passive,
only the HIL/controller and the storage complex run (Section IV-B).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.instructions import InstructionMix
from repro.host.dma import DmaEngine, PointerList
from repro.interfaces.base import buffer_address
from repro.interfaces.ocssd.geometry import (
    ChunkDescriptor,
    ChunkState,
    OcssdGeometry,
)
from repro.ssd.device import SSD

_SQE_BYTES = 64
_CQE_BYTES = 16
_MSI_BYTES = 16
_HOST_PAGE = 4096


class OcssdController:
    def __init__(self, sim, ssd: SSD, dma: DmaEngine,
                 spec_version: str = "2.0") -> None:
        self.sim = sim
        self.ssd = ssd
        self.dma = dma
        self.geometry = OcssdGeometry.from_config(ssd.config, spec_version)
        self._parse_mix = InstructionMix.typical(
            ssd.config.costs.doorbell_service + 300)
        self.vector_reads = 0
        self.vector_writes = 0
        self.vector_erases = 0
        self._offline_chunks = set()

    # -- identify / report ------------------------------------------------------

    def identify(self) -> OcssdGeometry:
        return self.geometry

    def report_chunks(self, pu: int) -> List[ChunkDescriptor]:
        """OCSSD 2.0 chunk report for one parallel unit."""
        geom = self.ssd.config.geometry
        out = []
        for chunk in range(geom.blocks_per_plane):
            block = self.ssd.array.block(pu, chunk)
            if (pu, chunk) in self._offline_chunks:
                state = ChunkState.OFFLINE
            elif block.next_page == 0:
                state = ChunkState.FREE
            elif block.next_page >= geom.pages_per_block:
                state = ChunkState.CLOSED
            else:
                state = ChunkState.OPEN
            out.append(ChunkDescriptor(pu=pu, chunk=chunk, state=state,
                                       write_pointer=block.next_page,
                                       erase_count=block.erase_count))
        return out

    # -- transport helpers --------------------------------------------------------

    def _command_overhead(self):
        yield from self.dma.control_to_device(_SQE_BYTES)
        yield from self.ssd.cores.execute("hil", self._parse_mix)

    def _completion_overhead(self):
        yield from self.dma.control_to_host(_CQE_BYTES)
        yield from self.dma.control_to_host(_MSI_BYTES)

    # -- vector commands (called by pblk / liblightnvm) ----------------------------

    def vector_read(self, ppns: Sequence[int],
                    transfer_bytes: Optional[int] = None):
        """Process: read the given physical pages; returns list of payloads."""
        yield from self._command_overhead()
        page_size = self.ssd.config.geometry.page_size
        per_page = transfer_bytes or page_size
        reads = [self.sim.process(self.ssd.fil.read(ppn, per_page))
                 for ppn in ppns]
        for proc in reads:
            yield proc
        pointers = PointerList.for_buffer(0x2_0000_0000,
                                          per_page * len(ppns), _HOST_PAGE)
        yield from self.dma.to_host(pointers)
        yield from self._completion_overhead()
        self.vector_reads += len(ppns)
        return [self.ssd.content.read(ppn) for ppn in ppns]

    def vector_write(self, ppns: Sequence[int],
                     data: Optional[List[Optional[bytes]]] = None):
        """Process: program the given pages (must respect chunk order)."""
        yield from self._command_overhead()
        page_size = self.ssd.config.geometry.page_size
        pointers = PointerList.for_buffer(0x2_4000_0000,
                                          page_size * len(ppns), _HOST_PAGE)
        yield from self.dma.to_device(pointers)
        now = self.sim.now
        for i, ppn in enumerate(ppns):
            self.ssd.array.program_ppn(ppn, now)
            self.ssd.content.write(ppn, data[i] if data else None)
        yield from self.ssd.fil.program_group(list(ppns))
        yield from self._completion_overhead()
        self.vector_writes += len(ppns)

    def vector_erase(self, pu: int, chunk: int):
        """Process: erase (reset) one chunk.

        Returns True on success; False marks the chunk OFFLINE (a worn-
        out block the host FTL must stop using — OCSSD 2.0 semantics).
        """
        yield from self._command_overhead()
        ok = yield from self.ssd.fil.erase(pu, chunk)
        if ok:
            self.ssd.content.erase_block(
                self.ssd.array.mapper, pu, chunk,
                self.ssd.config.geometry.pages_per_block)
            self.ssd.array.erase_block(pu, chunk)
        else:
            self._offline_chunks.add((pu, chunk))
        yield from self._completion_overhead()
        self.vector_erases += 1
        return ok

    def invalidate(self, ppn: int) -> None:
        """Host-side FTL marks a page stale (metadata only, no I/O)."""
        self.ssd.array.invalidate_ppn(ppn)

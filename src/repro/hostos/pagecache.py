"""Host page cache for buffered I/O.

A 4 KB-page LRU cache over the block device.  Buffered reads hit here at
host-DRAM speed; buffered writes dirty pages that a writeback process
flushes.  Its footprint registers with the host-memory ledger, feeding
the Fig 15c DRAM-usage timelines.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.host.memory import HostMemory

PAGE = 4096
_SECTORS_PER_PAGE = PAGE // 512


class _CachedPage:
    __slots__ = ("dirty", "data")

    def __init__(self) -> None:
        self.dirty = False
        self.data: Optional[bytearray] = None


class PageCache:
    def __init__(self, sim, memory: HostMemory, capacity_bytes: int,
                 data_emulation: bool = False,
                 ledger_tag: str = "pagecache") -> None:
        self.sim = sim
        self.memory = memory
        self.capacity_pages = max(8, capacity_bytes // PAGE)
        self.data_emulation = data_emulation
        self.ledger_tag = ledger_tag
        self._pages: "OrderedDict[int, _CachedPage]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- bookkeeping ------------------------------------------------------------

    def _page_range(self, slba: int, nsectors: int) -> range:
        first = slba // _SECTORS_PER_PAGE
        last = (slba + nsectors - 1) // _SECTORS_PER_PAGE
        return range(first, last + 1)

    def _touch(self, index: int) -> _CachedPage:
        page = self._pages.get(index)
        if page is not None:
            self._pages.move_to_end(index)
            return page
        page = _CachedPage()
        self._pages[index] = page
        self.memory.allocate(self.ledger_tag, PAGE)
        return page

    def evict_candidates(self) -> List[Tuple[int, _CachedPage]]:
        """Pages to evict (LRU order) once over capacity; dirty ones first
        need writeback by the caller."""
        excess = len(self._pages) - self.capacity_pages
        if excess <= 0:
            return []
        return [(idx, self._pages[idx])
                for idx in list(self._pages)[:excess]]

    def drop(self, index: int) -> None:
        if self._pages.pop(index, None) is not None:
            self.memory.free(self.ledger_tag, PAGE)

    # -- lookup/update ----------------------------------------------------------

    def lookup_read(self, slba: int, nsectors: int) -> bool:
        """True if the whole range is cached (a buffered-read hit)."""
        covered = all(idx in self._pages and
                      (not self.data_emulation
                       or self._pages[idx].data is not None)
                      for idx in self._page_range(slba, nsectors))
        if covered:
            self.hits += 1
            for idx in self._page_range(slba, nsectors):
                self._pages.move_to_end(idx)
        else:
            self.misses += 1
        return covered

    def read_data(self, slba: int, nsectors: int) -> Optional[bytes]:
        if not self.data_emulation:
            return None
        chunks = []
        for sector in range(slba, slba + nsectors):
            idx, within = divmod(sector, _SECTORS_PER_PAGE)
            page = self._pages[idx]
            data = page.data or bytearray(PAGE)
            chunks.append(bytes(data[within * 512:(within + 1) * 512]))
        return b"".join(chunks)

    def install_read(self, slba: int, nsectors: int,
                     data: Optional[bytes]) -> None:
        """Populate cache pages after a device read.

        Only whole pages covered by the read are installed.
        """
        for idx in self._page_range(slba, nsectors):
            page_first_sector = idx * _SECTORS_PER_PAGE
            if page_first_sector < slba or \
                    page_first_sector + _SECTORS_PER_PAGE > slba + nsectors:
                continue
            page = self._touch(idx)
            if self.data_emulation:
                off = (page_first_sector - slba) * 512
                page.data = bytearray(data[off:off + PAGE]) if data \
                    else bytearray(PAGE)

    def write(self, slba: int, nsectors: int, data: Optional[bytes]) -> bool:
        """Buffered write into the cache.

        Returns True if fully absorbed; False when the range is not
        page-aligned (the caller must read-modify or fall back to direct).
        """
        if slba % _SECTORS_PER_PAGE or nsectors % _SECTORS_PER_PAGE:
            return False
        for i, idx in enumerate(self._page_range(slba, nsectors)):
            page = self._touch(idx)
            page.dirty = True
            if self.data_emulation:
                off = i * PAGE
                page.data = bytearray(
                    data[off:off + PAGE] if data else bytes(PAGE))
        return True

    def dirty_pages(self) -> List[int]:
        return [idx for idx, page in self._pages.items() if page.dirty]

    def clean(self, index: int) -> None:
        page = self._pages.get(index)
        if page is not None:
            page.dirty = False
            self.writebacks += 1

    def page_payload(self, index: int) -> Optional[bytes]:
        page = self._pages[index]
        return bytes(page.data) if page.data is not None else None

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

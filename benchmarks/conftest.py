"""Benchmark configuration.

Set ``REPRO_BENCH_FULL=1`` to run every experiment at the paper's full
sweep resolution; the default keeps each benchmark to roughly a minute
so ``pytest benchmarks/ --benchmark-only`` completes in reasonable time.
"""

import os

import pytest

QUICK = os.environ.get("REPRO_BENCH_FULL", "0") != "1"


@pytest.fixture(scope="session")
def quick_mode():
    return QUICK


def run_experiment(benchmark, module, **kwargs):
    """Run an experiment module once under pytest-benchmark and print
    the paper-style rows it regenerates."""
    result = benchmark.pedantic(
        lambda: module.run(quick=QUICK, **kwargs), rounds=1, iterations=1)
    print()
    print(module.render(result))
    return result

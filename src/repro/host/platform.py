"""Host platform presets (Table II of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.units import GB, GHZ, KB, MB, MHZ
from repro.host.cpu import CpuModel


@dataclass(frozen=True)
class HostPlatform:
    """Static description of a host system (gem5 system configuration)."""

    name: str
    cpu_name: str
    isa: str
    n_cores: int
    frequency: int                     # Hz
    cpu_model: CpuModel = CpuModel.O3
    cpi_scale: float = 1.0             # platform-level CPI adjustment
    l1d: str = ""
    l1i: str = ""
    l2: str = ""
    l3: str = ""
    memory_desc: str = ""
    memory_size: int = 8 * GB
    memory_bandwidth: float = 0.0      # bytes/s
    memory_latency_ns: int = 60
    sysbus_bandwidth: float = 16 * GB

    def table_row(self) -> Dict[str, str]:
        """Render this platform as a Table II row."""
        return {
            "CPU name": self.cpu_name,
            "ISA": self.isa,
            "Core number": str(self.n_cores),
            "Frequency": f"{self.frequency / GHZ:.1f}GHz",
            "L1D cache": self.l1d,
            "L1I cache": self.l1i,
            "L2 cache": self.l2,
            "L3 cache": self.l3,
            "Memory": self.memory_desc,
        }


def pc_platform(frequency: int = int(4.4 * GHZ),
                cpu_model: CpuModel = CpuModel.O3) -> HostPlatform:
    """Table II's PC platform: Intel i7-4790K, DDR4-2400 x2."""
    return HostPlatform(
        name="pc",
        cpu_name="Intel i7-4790K",
        isa="X86",
        n_cores=4,
        frequency=frequency,
        cpu_model=cpu_model,
        cpi_scale=1.0,
        l1d="private, 32KB, 8-way",
        l1i="private, 32KB, 8-way",
        l2="private, 256KB, 8-way",
        l3="shared, 8MB, 16-way",
        memory_desc="DDR4-2400, 2 channel",
        memory_size=16 * GB,
        memory_bandwidth=2 * 2400 * MHZ * 8,   # 2 channels x 19.2 GB/s
        memory_latency_ns=55,
        sysbus_bandwidth=24 * GB,
    )


def mobile_platform(frequency: int = 2 * GHZ,
                    cpu_model: CpuModel = CpuModel.HPI) -> HostPlatform:
    """Table II's mobile platform: NVIDIA Jetson TX2, LPDDR4 x1."""
    return HostPlatform(
        name="mobile",
        cpu_name="NVIDIA Jetson TX2",
        isa="ARM v8",
        n_cores=4,
        frequency=frequency,
        cpu_model=cpu_model,
        cpi_scale=1.5,   # low-power in-order cores retire fewer IPC
        l1d="private, 32KB",
        l1i="private, 48KB",
        l2="shared, 2MB",
        l3="N/A",
        memory_desc="LPDDR4-3733, 1 channel",
        memory_size=8 * GB,
        memory_bandwidth=3733 * MHZ * 8 // 2,  # one 32-bit-ish channel
        memory_latency_ns=80,
        sysbus_bandwidth=12 * GB,
    )

"""Flight recorder: a bounded ring of recent activity, dumped on failure.

Every telemetry-enabled :class:`~repro.sim.Simulator` carries a
:class:`FlightRecorder`: a ring of the last N processed events (time +
event type), plus hooks to capture open spans and the latest metric
sample at the moment something goes wrong.  When a ``run_process`` run
raises — a failed golden, a hypothesis shrink, an orphaned process
failure — the recorder writes a JSON post-mortem next to the run, so
the failure comes with the device's last moments attached instead of
just a traceback.

The ring is a ``collections.deque(maxlen=N)``: recording is O(1) and
memory is bounded regardless of run length.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple


class FlightRecorder:
    """Bounded ring of recent simulator activity plus a JSON dump."""

    __slots__ = ("capacity", "_events", "label", "dumped_to")

    def __init__(self, capacity: int = 256, label: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Tuple[int, str]] = deque(maxlen=capacity)
        self.label = label
        self.dumped_to: Optional[str] = None

    def note_event(self, t_ns: int, kind: str) -> None:
        """Record one processed event; O(1), evicting the oldest."""
        self._events.append((t_ns, kind))

    def recent_events(self) -> List[Tuple[int, str]]:
        """The retained ring, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- dumping -----------------------------------------------------------

    def snapshot(self, sim=None, error: Optional[BaseException] = None,
                 metrics: Optional[Dict[str, float]] = None) -> Dict:
        """Assemble the JSON-ready post-mortem document."""
        doc: Dict = {
            "label": self.label,
            "ring_capacity": self.capacity,
            "recent_events": [[t, kind] for t, kind in self._events],
        }
        if error is not None:
            doc["error"] = {"type": type(error).__name__,
                            "message": str(error)}
        if sim is not None:
            doc["sim"] = {"now_ns": sim.now,
                          "events_processed": sim.events_processed,
                          "queue_length": len(sim._queue)}
            tracer = getattr(sim, "tracer", None)
            if tracer is not None and tracer.enabled:
                doc["open_spans"] = [
                    {"kind": span.kind, "track": span.track,
                     "t_start": span.t_start,
                     "args": {k: str(v) for k, v in (span.args or {}).items()}}
                    for stack in tracer._open.values() for span in stack]
                doc["closed_spans"] = len(
                    [s for s in tracer.spans if s.t_end is not None])
        if metrics is not None:
            doc["last_metrics"] = {name: value
                                   for name, value in sorted(metrics.items())}
        return doc

    def dump(self, path: str, sim=None,
             error: Optional[BaseException] = None,
             metrics: Optional[Dict[str, float]] = None) -> str:
        """Write the post-mortem JSON to ``path``; returns the path."""
        doc = self.snapshot(sim=sim, error=error, metrics=metrics)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        self.dumped_to = path
        return path

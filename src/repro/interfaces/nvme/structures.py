"""NVMe command structures (NVMe 1.2.1).

A submission entry is 64 bytes, a completion entry 16 bytes; the sizes
matter because the device controller DMAs them across PCIe.  The opcode
set covers all mandatory I/O and admin commands plus the optional
features Amber implements (namespace management, SGL support).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import List, Optional, Tuple

SQE_BYTES = 64
CQE_BYTES = 16

_CID = count(1)


class NvmeOpcode(enum.Enum):
    # I/O command set (mandatory)
    FLUSH = 0x00
    WRITE = 0x01
    READ = 0x02
    # optional I/O
    WRITE_UNCORRECTABLE = 0x04
    COMPARE = 0x05
    DATASET_MANAGEMENT = 0x09
    # admin (mandatory)
    DELETE_SQ = 0x100
    CREATE_SQ = 0x101
    GET_LOG_PAGE = 0x102
    DELETE_CQ = 0x104
    CREATE_CQ = 0x105
    IDENTIFY = 0x106
    ABORT = 0x108
    SET_FEATURES = 0x109
    GET_FEATURES = 0x10A
    # optional admin
    NS_MANAGEMENT = 0x10D
    NS_ATTACH = 0x115
    FORMAT_NVM = 0x180


class TransferMode(enum.Enum):
    PRP = "prp"
    SGL = "sgl"


@dataclass
class SubmissionEntry:
    """One 64-byte SQE."""

    opcode: NvmeOpcode
    nsid: int = 1
    slba: int = 0
    nlb: int = 0                      # 0-based: n sectors - 1
    prp_entries: List[Tuple[int, int]] = field(default_factory=list)
    transfer_mode: TransferMode = TransferMode.PRP
    cid: int = field(default_factory=lambda: next(_CID))
    queue_id: int = 1
    # book-keeping for the simulated driver
    context: Optional[object] = None

    @property
    def nsectors(self) -> int:
        return self.nlb + 1


@dataclass
class CompletionEntry:
    """One 16-byte CQE."""

    cid: int
    sq_id: int
    status: int = 0           # 0 = success
    sq_head: int = 0

    @property
    def ok(self) -> bool:
        return self.status == 0


@dataclass(frozen=True)
class Namespace:
    """An NVMe namespace: a slice of the device's logical space."""

    nsid: int
    start_sector: int
    n_sectors: int

    def translate(self, slba: int, nsectors: int) -> int:
        if slba < 0 or slba + nsectors > self.n_sectors:
            raise ValueError(
                f"LBA range [{slba}, {slba + nsectors}) outside namespace "
                f"{self.nsid} ({self.n_sectors} sectors)")
        return self.start_sector + slba

"""Shared interface machinery."""

from __future__ import annotations

import abc
from typing import Dict

from repro.common.iorequest import IORequest

# Fabricated host-buffer address space: each request's data buffer gets a
# page-aligned virtual region; the DMA engine only cares about page
# boundaries, not real contents of the addresses.
_BUFFER_BASE = 0x1_0000_0000
_BUFFER_STRIDE = 4 * 1024 * 1024


def buffer_address(req: IORequest) -> int:
    """Deterministic page-aligned host address for a request's buffer."""
    return _BUFFER_BASE + (req.req_id % 4096) * _BUFFER_STRIDE


class HostAdapter(abc.ABC):
    """Host-side entry point of a storage interface.

    The block layer calls :meth:`submit`, which must return an event that
    fires with the read payload (or None) once the device has completed
    the command and the completion structures have reached the host.
    """

    #: hardware bound on outstanding commands (NCQ slots, SQ capacity...)
    max_outstanding: int = 32

    @abc.abstractmethod
    def submit(self, req: IORequest):
        """Issue a request; returns a sim Event."""

    def describe(self) -> Dict[str, str]:
        return {"type": type(self).__name__,
                "max_outstanding": str(self.max_outstanding)}

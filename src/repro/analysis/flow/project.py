"""Project model for simflow: modules, symbols and the call graph.

A :class:`Project` is built from already-parsed :class:`SourceFile`
objects (the lint driver parses each file exactly once).  It provides:

* a **module resolver** — every file gets a dotted module name derived
  from its path (``src/repro/sim/engine.py`` -> ``repro.sim.engine``),
  and imported names are resolved back to project modules by dotted
  suffix match, so the analysis works on a checkout, an installed
  package, or a bag of fixture files alike;
* a **symbol table** — every function and method with its qualified
  name, defining class and module;
* a **call graph** — best-effort resolution of call expressions to
  project functions: local calls, ``self.method()`` within a class
  (including inherited methods when the base class lives in the
  project), imported functions, and — for plain ``obj.method()``
  attribute calls — a bounded method-name index (a name defined by at
  most :data:`MAX_METHOD_CANDIDATES` project classes resolves to all of
  them; a more common name stays unresolved rather than guessing).

Everything here is deterministic: iteration orders are sorted, and no
state survives between :class:`Project` constructions.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: an attribute-call name defined in more places than this is ambiguous
#: enough that resolving it would do more harm (false edges) than good
MAX_METHOD_CANDIDATES = 4

#: names that anchor a dotted module path; everything left of the last
#: occurrence is installation prefix (``src/``, a venv, a tmpdir)
_PACKAGE_ROOTS = ("repro", "tests", "benchmarks", "examples")


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, rooted at a known package.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``/tmp/xyz/scratch.py`` -> ``scratch`` (no known root: bare stem).
    ``__init__.py`` names the package itself.
    """
    normalized = path.replace(os.sep, "/")
    stem = normalized[:-3] if normalized.endswith(".py") else normalized
    parts = [p for p in stem.split("/") if p]
    root_at = max((i for i, p in enumerate(parts) if p in _PACKAGE_ROOTS),
                  default=-1)
    parts = parts[root_at:] if root_at >= 0 else parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "module"


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted imported thing, for one module.

    ``import time as _t`` -> ``{"_t": "time"}``;
    ``from repro.common.units import US`` ->
    ``{"US": "repro.common.units.US"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name != "*":
                    aliases[name.asname or name.name] = \
                        f"{node.module}.{name.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def expand_alias(dotted: str, aliases: Dict[str, str]) -> str:
    """Expand the leading import alias of a dotted name, if any."""
    head, _, rest = dotted.partition(".")
    expansion = aliases.get(head)
    if expansion is None:
        return dotted
    return f"{expansion}.{rest}" if rest else expansion


def ordered_body(node: ast.AST) -> Iterator[ast.stmt]:
    """The statements of a function/module body in source order,
    descending into compound statements but not nested functions."""
    for stmt in getattr(node, "body", []):
        yield from _ordered_stmt(stmt)
    for attr in ("orelse", "finalbody"):
        for stmt in getattr(node, attr, []):
            yield from _ordered_stmt(stmt)


def _ordered_stmt(stmt: ast.stmt) -> Iterator[ast.stmt]:
    yield stmt
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return
    for attr in ("body", "orelse", "finalbody"):
        for child in getattr(stmt, attr, []):
            yield from _ordered_stmt(child)
    for handler in getattr(stmt, "handlers", []):
        for child in handler.body:
            yield from _ordered_stmt(child)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str                     # "repro.sim.engine.Simulator.run"
    module: "ModuleInfo"
    node: ast.AST                     # FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None  # enclosing class, if a method

    @property
    def name(self) -> str:
        """The bare function name."""
        return self.node.name  # type: ignore[attr-defined]

    @property
    def params(self) -> List[str]:
        """Positional+keyword parameter names, ``self``/``cls`` included."""
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args]
        names.extend(a.arg for a in args.kwonlyargs)
        return names

    @property
    def is_generator(self) -> bool:
        """Whether the function's own body contains a yield."""
        todo: List[ast.AST] = list(ast.iter_child_nodes(self.node))
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                todo.extend(ast.iter_child_nodes(node))
        return False


@dataclass
class ModuleInfo:
    """One parsed module with its symbols and import aliases."""

    name: str
    path: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    #: module-level functions by bare name
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> {method name -> FunctionInfo}
    classes: Dict[str, Dict[str, FunctionInfo]] = field(default_factory=dict)
    #: class name -> base-class dotted names (alias-expanded)
    bases: Dict[str, List[str]] = field(default_factory=dict)


class Project:
    """A set of modules analyzed together, with call resolution."""

    def __init__(self, sources: Sequence[Tuple[str, ast.Module]]) -> None:
        """Build from ``(path, parsed tree)`` pairs."""
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._method_index: Dict[str, List[FunctionInfo]] = {}
        for path, tree in sources:
            self._add_module(path, tree)

    # -- construction ------------------------------------------------------

    def _add_module(self, path: str, tree: ast.Module) -> None:
        name = module_name_for(path)
        if name in self.modules:          # e.g. two scratch files: suffix
            name = f"{name}@{len(self.modules)}"
        mod = ModuleInfo(name=name, path=path, tree=tree,
                         aliases=import_aliases(tree))
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                mod.bases[stmt.name] = [
                    expand_alias(base_name, mod.aliases)
                    for base in stmt.bases
                    if (base_name := dotted_name(base)) is not None]
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        self._add_function(mod, sub, class_name=stmt.name)
        self.modules[name] = mod

    def _add_function(self, mod: ModuleInfo, node: ast.AST,
                      class_name: Optional[str]) -> None:
        bare = node.name  # type: ignore[attr-defined]
        qual = f"{mod.name}.{class_name}.{bare}" if class_name else \
            f"{mod.name}.{bare}"
        info = FunctionInfo(qualname=qual, module=mod, node=node,
                            class_name=class_name)
        self.functions[qual] = info
        if class_name is None:
            mod.functions[bare] = info
        else:
            mod.classes.setdefault(class_name, {})[bare] = info
            self._method_index.setdefault(bare, []).append(info)

    # -- lookup ------------------------------------------------------------

    def module_by_suffix(self, dotted: str) -> Optional[ModuleInfo]:
        """The project module whose name equals or dot-suffixes ``dotted``."""
        if dotted in self.modules:
            return self.modules[dotted]
        for name in sorted(self.modules):
            if name.endswith("." + dotted):
                return self.modules[name]
        return None

    def all_functions(self) -> List[FunctionInfo]:
        """Every function/method, sorted by qualified name."""
        return [self.functions[k] for k in sorted(self.functions)]

    def class_method(self, mod: ModuleInfo, class_name: str,
                     method: str) -> Optional[FunctionInfo]:
        """Resolve a method on a class, following project-local bases."""
        seen = set()
        todo = [(mod, class_name)]
        while todo:
            cur_mod, cur_cls = todo.pop(0)
            if (cur_mod.name, cur_cls) in seen:
                continue
            seen.add((cur_mod.name, cur_cls))
            info = cur_mod.classes.get(cur_cls, {}).get(method)
            if info is not None:
                return info
            for base in cur_mod.bases.get(cur_cls, []):
                base_mod_name, _, base_cls = base.rpartition(".")
                if not base_mod_name:          # local base class
                    todo.append((cur_mod, base))
                else:
                    base_mod = self.module_by_suffix(base_mod_name)
                    if base_mod is not None:
                        todo.append((base_mod, base_cls))
        return None

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> List[FunctionInfo]:
        """Project functions a call may target (empty when external).

        Resolution order: ``self.method()`` in the caller's class
        hierarchy; a bare name that is a module-level function in the
        caller's module; an alias-expanded dotted path into a project
        module; finally the bounded method-name index for attribute
        calls.
        """
        func = call.func
        mod = caller.module

        dotted = dotted_name(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if head in ("self", "cls") and rest and caller.class_name:
                parts = rest.split(".")
                if len(parts) == 1:
                    hit = self.class_method(mod, caller.class_name, parts[0])
                    if hit is not None:
                        return [hit]
                    dotted = None  # self.attr.method(): fall to index
            if dotted is not None and "." not in dotted:
                local = mod.functions.get(dotted)
                if local is not None:
                    return [local]
            if dotted is not None:
                expanded = expand_alias(dotted, mod.aliases)
                hit = self._resolve_dotted(expanded)
                if hit is not None:
                    return [hit]

        if isinstance(func, ast.Attribute):
            candidates = self._method_index.get(func.attr, [])
            if 0 < len(candidates) <= MAX_METHOD_CANDIDATES:
                return sorted(candidates, key=lambda f: f.qualname)
        return []

    def _resolve_dotted(self, expanded: str) -> Optional[FunctionInfo]:
        if expanded in self.functions:
            return self.functions[expanded]
        mod_part, _, leaf = expanded.rpartition(".")
        if not mod_part:
            return None
        target_mod = self.module_by_suffix(mod_part)
        if target_mod is not None:
            return target_mod.functions.get(leaf)
        # module.Class.method: split once more
        mod_part2, _, cls = mod_part.rpartition(".")
        target_mod = self.module_by_suffix(mod_part2) if mod_part2 else None
        if target_mod is not None:
            return self.class_method(target_mod, cls, leaf)
        return None

"""Experiment drivers: one module per table/figure of the evaluation.

Every module exposes ``run(quick=True) -> dict`` returning structured
results and ``render(result) -> str`` producing the paper-style rows.
``quick`` trims sweep points and I/O counts so tests stay fast; the
benchmark harness runs the full versions.
"""

"""Performance-benchmark scenarios and trajectory recording.

The library half of the ``benchmarks/perf/`` harness: scenario
definitions (:mod:`repro.bench.scenarios`) that drive the simulation
kernel and the full system at calibrated sizes, and the ``BENCH_*.json``
recorder (:mod:`repro.bench.record`) that gives every PR a perf
trajectory to beat.

Scenarios report *wall-clock* speed and *deterministic* simulation
facts (``events_processed``, final simulated time) side by side.  The
golden-determinism tests in ``tests/test_golden_determinism.py`` pin
the deterministic half, so a faster number in a ``BENCH_*.json`` is
only mergeable when it provably computed the same simulation.
"""

from repro.bench.record import (
    compare_runs,
    load_bench,
    run_all,
    write_bench,
)
from repro.bench.scenarios import SCENARIOS, ScenarioResult

__all__ = [
    "SCENARIOS",
    "ScenarioResult",
    "compare_runs",
    "load_bench",
    "run_all",
    "write_bench",
]

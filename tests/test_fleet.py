"""The fleet sweep engine: spec expansion, config hashes, the
content-addressed store, resume semantics, and the determinism
guarantee — a 1-worker and an N-worker run of the same spec produce
byte-identical stores and byte-identical merged reports
(``docs/FLEET.md``)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.fleet import (
    ResultStore,
    SCENARIOS,
    SweepSpec,
    builtin_specs,
    config_hash,
    derive_seed,
    merge_results,
    merged_json,
    render_html,
    render_markdown,
    run_scenario,
    run_sweep,
    sweep_status,
)
from repro.obs.histogram import LogHistogram

#: the smoke4 job CI also runs — any drift in the hash scheme (key
#: canonicalization, separators, digest choice) invalidates every
#: content-addressed store in the wild, so it is pinned here
PINNED_PARAMS = {"scenario": "fio", "preset": "intel750", "rw": "randread",
                 "bs": 4096, "iodepth": 8, "total_ios": 160, "channels": 4}
PINNED_HASH = ("dc0f1687f242c83ea6912c4d2bb58bd9"
               "f64811c15ff7790f8162ad91d5a0e992")

#: tiny two-config sweep used for the runner/report/resume tests
TINY = SweepSpec(
    name="tiny", scenario="fio",
    base={"preset": "intel750", "rw": "randread", "total_ios": 60,
          "iodepth": 4, "bs": 4096},
    axes={"channels": (2, 4)})


# -- config hashes and seeds --------------------------------------------------

class TestConfigHash:
    def test_pinned_hash(self):
        assert config_hash(PINNED_PARAMS) == PINNED_HASH

    def test_key_order_does_not_matter(self):
        shuffled = dict(reversed(list(PINNED_PARAMS.items())))
        assert config_hash(shuffled) == PINNED_HASH

    def test_any_value_change_changes_the_hash(self):
        for key in PINNED_PARAMS:
            changed = dict(PINNED_PARAMS)
            changed[key] = "something-else"
            assert config_hash(changed) != PINNED_HASH, key

    def test_derived_seed_is_stable_and_per_job(self):
        other = config_hash(dict(PINNED_PARAMS, bs=8192))
        assert derive_seed(PINNED_HASH) == derive_seed(PINNED_HASH)
        assert derive_seed(PINNED_HASH) != derive_seed(other)
        assert derive_seed(PINNED_HASH, stream=1) != derive_seed(PINNED_HASH)


# -- spec expansion -----------------------------------------------------------

class TestSweepSpec:
    def test_grid_expansion_is_deterministic(self):
        jobs_a = TINY.expand()
        jobs_b = TINY.expand()
        assert [j.config_hash for j in jobs_a] == \
            [j.config_hash for j in jobs_b]
        assert len(jobs_a) == 2
        assert {j.params["channels"] for j in jobs_a} == {2, 4}
        for job in jobs_a:
            assert job.params["scenario"] == "fio"
            assert job.config_hash == config_hash(job.params)

    def test_grid_is_the_full_product(self):
        spec = SweepSpec(name="g", scenario="fio",
                         axes={"a": (1, 2, 3), "b": ("x", "y")})
        jobs = spec.expand()
        assert len(jobs) == 6
        assert len({j.config_hash for j in jobs}) == 6

    def test_random_mode_is_seed_deterministic_and_deduped(self):
        spec = SweepSpec(name="r", scenario="fio",
                         axes={"a": (1, 2), "b": (3, 4)},
                         mode="random", samples=40, sample_seed=7)
        jobs = spec.expand()
        assert jobs == spec.expand()
        hashes = [j.config_hash for j in jobs]
        assert len(hashes) == len(set(hashes)) <= 4
        other = SweepSpec(name="r", scenario="fio",
                          axes={"a": (1, 2), "b": (3, 4)},
                          mode="random", samples=2, sample_seed=8)
        assert other.expand() != jobs[:2]

    def test_spec_name_is_not_part_of_the_hash(self):
        renamed = SweepSpec(name="renamed", scenario=TINY.scenario,
                            base=TINY.base, axes=TINY.axes)
        assert [j.config_hash for j in renamed.expand()] == \
            [j.config_hash for j in TINY.expand()]

    def test_roundtrip_through_dict_and_file(self, tmp_path):
        doc = TINY.to_dict()
        assert SweepSpec.from_dict(doc).expand() == TINY.expand()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        assert SweepSpec.load(path).expand() == TINY.expand()

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="at least one value"):
            SweepSpec(name="bad", scenario="fio", axes={"a": ()})
        with pytest.raises(ValueError, match="also appears in base"):
            SweepSpec(name="bad", scenario="fio", base={"a": 1},
                      axes={"a": (1, 2)})
        with pytest.raises(ValueError, match="mode"):
            SweepSpec(name="bad", scenario="fio", mode="mystery")
        with pytest.raises(ValueError, match="unknown spec keys"):
            SweepSpec.from_dict({"name": "x", "scenario": "fio",
                                 "grid": {}})

    def test_builtins_expand_and_name_real_scenarios(self):
        for name, spec in builtin_specs().items():
            assert spec.scenario in SCENARIOS, name
            assert len(spec.expand()) >= 3, name
        assert len(builtin_specs()["smoke4"].expand()) == 4


# -- the result store ---------------------------------------------------------

class TestResultStore:
    def test_roundtrip_and_fanout(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert not store.has(PINNED_HASH)
        path = store.put(PINNED_HASH, PINNED_PARAMS, {"bw": 1.5})
        assert path.parent.name == PINNED_HASH[:2]
        assert store.has(PINNED_HASH)
        doc = store.get(PINNED_HASH)
        assert doc["params"]["preset"] == "intel750"
        assert doc["result"] == {"bw": 1.5}
        assert store.hashes() == [PINNED_HASH]
        assert store.delete(PINNED_HASH) and not store.has(PINNED_HASH)

    def test_writes_are_byte_stable(self, tmp_path):
        store = ResultStore(tmp_path)
        result = {"bw": 123.456, "hist": {"buckets": [[1, 2, 3]]}}
        first = store.put(PINNED_HASH, PINNED_PARAMS, result).read_bytes()
        second = store.put(PINNED_HASH, PINNED_PARAMS, result).read_bytes()
        assert first == second
        assert not list(Path(tmp_path).rglob("*.tmp"))

    def test_missing_store_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "nowhere")
        assert store.hashes() == [] and store.get("00" * 32) is None


# -- histogram round trip (what makes fleet merging possible) -----------------

class TestHistogramRoundtrip:
    def test_from_dict_preserves_everything(self):
        hist = LogHistogram()
        for value in [3, 17, 900, 4096, 70000, 70001, 1 << 22]:
            hist.record(value)
        clone = LogHistogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()
        assert clone.summary() == hist.summary()

    def test_rebuilt_histograms_merge(self):
        left, right = LogHistogram(), LogHistogram()
        for value in range(0, 2000, 7):
            left.record(value)
        for value in range(1, 4000, 13):
            right.record(value)
        merged = LogHistogram.from_dict(left.to_dict())
        merged.merge(LogHistogram.from_dict(right.to_dict()))
        reference = LogHistogram()
        for value in range(0, 2000, 7):
            reference.record(value)
        for value in range(1, 4000, 13):
            reference.record(value)
        assert merged.to_dict() == reference.to_dict()


# -- scenarios ----------------------------------------------------------------

class TestScenarios:
    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario({"scenario": "teleport"}, 1)

    def test_unknown_fio_parameter_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fio-scenario"):
            run_scenario(dict(PINNED_PARAMS, warp_factor=9), 1)

    def test_unknown_experiment_is_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_scenario({"scenario": "experiment",
                          "experiment": "fig99"}, 1)


# -- the runner: determinism, resume ------------------------------------------

@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One inline run of the tiny sweep: (store, summary, merged doc)."""
    store = ResultStore(tmp_path_factory.mktemp("fleet-j1"))
    summary = run_sweep(TINY, store, jobs=1, resume=True)
    return store, summary, merge_results(TINY, store)


class TestRunner:
    def test_inline_run_executes_every_job(self, baseline):
        store, summary, doc = baseline
        assert summary.planned == 2
        assert sorted(summary.executed) == store.hashes()
        assert summary.skipped == []
        assert doc["merged"] == 2 and doc["missing"] == []
        assert doc["fleet_latency"]["count"] > 0

    def test_n_workers_are_byte_identical_to_one(self, baseline,
                                                 tmp_path_factory):
        """The golden determinism pin: stores AND reports, byte for byte."""
        store_j1, _summary, doc_j1 = baseline
        store_j2 = ResultStore(tmp_path_factory.mktemp("fleet-j2"))
        run_sweep(TINY, store_j2, jobs=2, resume=True)
        assert store_j1.hashes() == store_j2.hashes()
        for job_hash in store_j1.hashes():
            assert store_j1.path_for(job_hash).read_bytes() == \
                store_j2.path_for(job_hash).read_bytes(), job_hash
        doc_j2 = merge_results(TINY, store_j2)
        assert merged_json(doc_j1) == merged_json(doc_j2)
        assert render_markdown(doc_j1) == render_markdown(doc_j2)
        assert render_html(doc_j1) == render_html(doc_j2)

    def test_resume_runs_only_missing_jobs(self, baseline, tmp_path):
        """Half-empty store + --resume => only the hole is re-simulated,
        and the merged report comes back byte-identical."""
        store_j1, _summary, doc_before = baseline
        partial = ResultStore(tmp_path / "partial")
        hashes = store_j1.hashes()
        kept, dropped = hashes[0], hashes[1]
        partial.put(kept, store_j1.get(kept)["params"],
                    store_j1.get(kept)["result"])
        summary = run_sweep(TINY, partial, jobs=1, resume=True)
        assert summary.skipped == [kept]
        assert summary.executed == [dropped]
        assert merged_json(merge_results(TINY, partial)) == \
            merged_json(doc_before)

    def test_resume_false_reexecutes_everything(self, baseline, tmp_path):
        store_j1, _summary, doc_before = baseline
        copy = ResultStore(tmp_path / "copy")
        for job_hash in store_j1.hashes():
            doc = store_j1.get(job_hash)
            copy.put(job_hash, doc["params"], doc["result"])
        summary = run_sweep(TINY, copy, jobs=1, resume=False)
        assert sorted(summary.executed) == store_j1.hashes()
        assert summary.skipped == []
        assert merged_json(merge_results(TINY, copy)) == \
            merged_json(doc_before)

    def test_status_reports_missing(self, baseline, tmp_path):
        store_j1, _summary, _doc = baseline
        state = sweep_status(TINY, store_j1)
        assert state["done"] == 2 and state["missing"] == []
        empty = sweep_status(TINY, ResultStore(tmp_path / "none"))
        assert empty["done"] == 0 and len(empty["missing"]) == 2

    def test_report_marks_missing_configs(self, baseline, tmp_path):
        store_j1, _summary, _doc = baseline
        partial = ResultStore(tmp_path / "gappy")
        kept = store_j1.hashes()[0]
        partial.put(kept, store_j1.get(kept)["params"],
                    store_j1.get(kept)["result"])
        doc = merge_results(TINY, partial)
        assert doc["merged"] == 1 and len(doc["missing"]) == 1
        assert doc["missing"][0] in render_markdown(doc)

    def test_jobs_must_be_positive(self, baseline, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(TINY, ResultStore(tmp_path), jobs=0)


class TestReportRendering:
    def test_markdown_has_every_section(self, baseline):
        _store, _summary, doc = baseline
        text = render_markdown(doc)
        assert "Fleet-wide latency" in text
        assert "Per-axis aggregates" in text
        assert "Per-job results" in text
        assert "`channels`" in text

    def test_html_is_selfcontained_and_escaped(self, baseline):
        _store, _summary, doc = baseline
        page = render_html(doc)
        assert page.startswith("<!DOCTYPE html>")
        assert "<table>" in page and "</html>" in page
        assert "<script" not in page and "http" not in page


# -- the CLI ------------------------------------------------------------------

def _run_cli(*args):
    src_dir = Path(repro.__file__).parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + env.get("PYTHONPATH", "").split(os.pathsep))
    return subprocess.run(
        [sys.executable, "-m", "repro.fleet", *args],
        capture_output=True, text=True, env=env, timeout=300)


class TestCli:
    def test_list_names_builtins_and_scenarios(self):
        proc = _run_cli("--list")
        assert proc.returncode == 0
        assert "smoke4" in proc.stdout and "fio" in proc.stdout

    def test_plan_prints_hashes(self):
        proc = _run_cli("plan", "--builtin", "smoke4")
        assert proc.returncode == 0
        assert PINNED_HASH[:16] in proc.stdout

    def test_dry_run_simulates_nothing(self, tmp_path):
        store = tmp_path / "store"
        proc = _run_cli("run", "--builtin", "smoke4", "--store", str(store),
                        "--jobs", "2", "--dry-run")
        assert proc.returncode == 0
        assert not store.exists()

    def test_run_status_report_from_a_spec_file(self, tmp_path):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps(TINY.to_dict()))
        store = tmp_path / "store"
        proc = _run_cli("run", "--spec", str(spec_path),
                        "--store", str(store), "--jobs", "1", "--resume")
        assert proc.returncode == 0, proc.stderr
        assert "executed 2" in proc.stdout

        proc = _run_cli("status", "--spec", str(spec_path),
                        "--store", str(store))
        assert proc.returncode == 0
        assert "2/2 done" in proc.stdout

        out = tmp_path / "fleet.md"
        proc = _run_cli("report", "--spec", str(spec_path),
                        "--store", str(store), "--out", str(out))
        assert proc.returncode == 0
        assert "Fleet report" in out.read_text()

    def test_status_of_empty_store_fails(self, tmp_path):
        proc = _run_cli("status", "--builtin", "smoke4",
                        "--store", str(tmp_path / "none"))
        assert proc.returncode == 1
        assert "0/4 done" in proc.stdout

    def test_unknown_builtin_is_an_error(self):
        proc = _run_cli("plan", "--builtin", "warp9")
        assert proc.returncode != 0
        assert "unknown built-in" in proc.stderr

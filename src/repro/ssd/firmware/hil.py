"""Host Interface Layer: device-side queue arbitration and request split.

The HIL fetches commands from the device-level queues according to the
interface's discipline — FIFO for h-type storage (SATA/UFS), round-robin
or weighted round-robin across submission queues for s-type (NVMe) — then
splits each command into superpage-aligned line requests and drives them
through the ICL.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from repro.common.instructions import InstructionMix
from repro.obs.tracer import NULL_SPAN_CONTEXT
from repro.common.iorequest import IOKind
from repro.sim import AllOf
from repro.ssd.computation.cores import CpuComplex
from repro.ssd.config import SSDConfig
from repro.ssd.firmware.arbiter import make_arbiter
from repro.ssd.firmware.icl import InternalCacheLayer
from repro.ssd.firmware.requests import DeviceCommand, split_command


class HostInterfaceLayer:
    def __init__(self, sim, config: SSDConfig, cores: CpuComplex,
                 icl: InternalCacheLayer) -> None:
        self.sim = sim
        self.config = config
        self.cores = cores
        self.icl = icl
        self._queues: "OrderedDict[int, Deque[DeviceCommand]]" = OrderedDict()
        self._pending = 0
        self._wakeup = None
        self._slot_wakeup = None
        self._fetch_mix = InstructionMix.typical(config.costs.hil_fetch)
        self._complete_mix = InstructionMix.typical(config.costs.hil_complete)
        self.arbiter = make_arbiter(config.hil)
        self.commands_fetched = 0
        self.commands_completed = 0
        self.in_flight = 0
        sim.process(self._fetch_loop())

    # -- submission (called by the device controller) -----------------------

    def submit(self, cmd: DeviceCommand) -> None:
        if cmd.done_event is None:
            cmd.done_event = self.sim.event()
        queue = self._queues.get(cmd.queue_id)
        if queue is None:
            queue = deque()
            self._queues[cmd.queue_id] = queue
        queue.append(cmd)
        self._pending += 1
        if self._wakeup is not None:
            event, self._wakeup = self._wakeup, None
            event.succeed()

    def queue_depth(self) -> int:
        return self._pending

    # -- arbitration ----------------------------------------------------------

    def _next_command(self) -> Optional[DeviceCommand]:
        if self._pending == 0:
            return None
        queue_ids = [qid for qid, q in self._queues.items() if q]
        if not queue_ids:
            return None
        chosen = self.arbiter.grant(self._queues, queue_ids)
        cmd = self._queues[chosen].popleft()
        self._pending -= 1
        return cmd

    # -- the fetch/serve pipeline ------------------------------------------------

    def _fetch_loop(self):
        while True:
            limit = self.config.hil.inflight_limit
            if limit and self.in_flight >= limit:
                self._slot_wakeup = self.sim.event()
                yield self._slot_wakeup
                continue
            cmd = self._next_command()
            if cmd is None:
                self._wakeup = self.sim.event()
                yield self._wakeup
                continue
            cmd.t_fetched = self.sim.now
            self.commands_fetched += 1
            self.in_flight += 1
            # the fetch cost itself serializes on the HIL core, pacing the
            # rate at which the device can start new commands
            yield from self.cores.execute("hil", self._fetch_mix)
            self.sim.process(self._serve(cmd))

    def _serve(self, cmd: DeviceCommand):
        tracer = self.sim.tracer
        try:
            with (tracer.span("hil.serve", cmd.track, op=cmd.kind.name,
                              sectors=cmd.nsectors)
                  if tracer.enabled else NULL_SPAN_CONTEXT):
                if cmd.kind == IOKind.FLUSH:
                    yield from self.icl.flush_all()
                    result = None
                elif cmd.kind == IOKind.TRIM:
                    lines = split_command(cmd, self.config.geometry.page_size,
                                          self.config.superpage_pages)
                    for line_req in lines:
                        yield from self.icl.trim(line_req)
                    result = None
                else:
                    result = yield from self._serve_rw(cmd)
                yield from self.cores.execute("hil", self._complete_mix)
            self.commands_completed += 1
            cmd.done_event.succeed(result)
        finally:
            self.in_flight -= 1
            if self._slot_wakeup is not None:
                event, self._slot_wakeup = self._slot_wakeup, None
                event.succeed()

    def _serve_rw(self, cmd: DeviceCommand) -> Optional[bytes]:
        lines = split_command(cmd, self.config.geometry.page_size,
                              self.config.superpage_pages)
        if cmd.kind.is_write:
            procs = [self.sim.process(self.icl.write(req)) for req in lines]
            yield AllOf(self.sim, procs)
            return None
        procs = [self.sim.process(self.icl.read(req)) for req in lines]
        done = yield AllOf(self.sim, procs)
        if not self.icl.data_emulation:
            return None
        chunks: List[bytes] = []
        for req, result in zip(lines, done):
            for slot in sorted(req.page_sectors):
                sec_off, sec_n = req.page_sectors[slot]
                piece = result.get(slot)
                chunks.append(piece if piece is not None else bytes(sec_n * 512))
        return b"".join(chunks)

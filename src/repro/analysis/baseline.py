"""The adoption baseline file for simlint.

A baseline lets a whole directory tree (``tests/``, ``benchmarks/``)
join the lint gate without first fixing — or littering with inline
directives — every historical finding.  It is a plain text file, one
entry per line::

    SIM210 tests/test_fleet.py -- replay harness stores real wall time by design
    SIM202 benchmarks/sweep.py:41 -- legacy us field, tracked in #123

Grammar: ``RULE path[:line] -- reason``.  Blank lines and ``#``
comments are ignored.  Exactly like inline suppressions, the reason is
**mandatory** — a baseline entry without one is itself reported as
SIM100, and so is a **stale** entry: one whose file was linted in this
run but which matched nothing (the finding was fixed; delete the
line).  Entries for files outside the run's scope are left alone.

Paths match by "/"-normalized suffix, so a baseline written at the
repo root keeps working when lint is invoked from a subdirectory or
with absolute paths.  Line numbers are optional; a file-level entry
(no line) is preferred — it survives unrelated edits to the file.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.analysis.findings import META_RULE, Finding

_ENTRY_RE = re.compile(
    r"^(?P<rule>[A-Z]+[0-9]+)\s+(?P<path>\S+?)(?::(?P<line>\d+))?"
    r"(?:\s+--\s+(?P<reason>\S.*?))?\s*$")


@dataclass(frozen=True)
class BaselineEntry:
    """One parsed baseline line."""

    rule: str
    path: str            # "/"-normalized, suffix-matched
    line: Optional[int]  # None: whole file
    reason: str
    lineno: int          # position in the baseline file itself

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        if self.line is not None and finding.line != self.line:
            return False
        return _path_matches(finding.path, self.path)

    def in_scope(self, linted_paths: Set[str]) -> bool:
        return any(_path_matches(p, self.path) for p in linted_paths)


def _path_matches(path: str, pattern: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return normalized == pattern or normalized.endswith("/" + pattern)


@dataclass
class Baseline:
    """A parsed baseline file, ready to apply to a finding list."""

    path: str
    entries: List[BaselineEntry]
    malformed: List[Tuple[int, str]]   # (lineno, problem)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            return cls.parse(path, handle.read())

    @classmethod
    def parse(cls, path: str, text: str) -> "Baseline":
        entries: List[BaselineEntry] = []
        malformed: List[Tuple[int, str]] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = _ENTRY_RE.match(line)
            if match is None:
                malformed.append(
                    (lineno, f"unparseable baseline entry: {line!r} "
                             "(expected `RULE path[:line] -- reason`)"))
                continue
            reason = (match.group("reason") or "").strip()
            if not reason:
                malformed.append(
                    (lineno, "baseline entry must carry a reason "
                             "(`RULE path[:line] -- why`)"))
                continue
            line_no = match.group("line")
            entries.append(BaselineEntry(
                rule=match.group("rule").upper(),
                path=match.group("path").replace(os.sep, "/"),
                line=int(line_no) if line_no else None,
                reason=reason, lineno=lineno))
        return cls(path=path, entries=entries, malformed=malformed)

    def apply(self, findings: List[Finding],
              linted_paths: Set[str]) -> List[Finding]:
        """Suppress baselined findings; report malformed/stale entries.

        Returns a new finding list: matches are marked suppressed with
        the entry's reason; every malformed entry, and every entry
        whose file was linted but which silenced nothing, becomes a
        SIM100 finding located in the baseline file itself.
        """
        used: Set[int] = set()
        result: List[Finding] = []
        for finding in findings:
            entry = None
            if not finding.suppressed and finding.rule != META_RULE:
                entry = next((e for e in self.entries
                              if e.matches(finding)), None)
            if entry is None:
                result.append(finding)
                continue
            used.add(entry.lineno)
            result.append(Finding(
                rule=finding.rule, path=finding.path, line=finding.line,
                col=finding.col, message=finding.message, suppressed=True,
                reason=f"baseline: {entry.reason}",
                witness=finding.witness))
        for lineno, problem in self.malformed:
            result.append(Finding(rule=META_RULE, path=self.path,
                                  line=lineno, col=0, message=problem))
        for entry in self.entries:
            if entry.lineno not in used and entry.in_scope(linted_paths):
                result.append(Finding(
                    rule=META_RULE, path=self.path, line=entry.lineno,
                    col=0,
                    message=f"stale baseline entry: {entry.rule} "
                            f"{entry.path} matched no finding in this "
                            "run; delete the line"))
        return result

"""SIM105 fixture: bound timeouts are yielded or cancelled."""


def worker(sim):
    watchdog = sim.timeout(50_000)
    yield watchdog


def speculative(sim):
    watchdog = sim.timeout(50_000)
    yield sim.timeout(1)
    watchdog.cancel()

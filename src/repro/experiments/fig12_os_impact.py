"""Figure 12: performance impact of the operating system.

Runs the five Table III enterprise workloads at user level on kernels
4.4 (CFQ) and 4.14 (refined BFQ), over both NVMe and SATA.  The paper
observes 4.4 underperforming 4.14 by ~63% (reads) / ~69% (writes) on
average: CFQ's shallow dispatch and heavier per-request path cannot
generate enough outstanding I/O to saturate an SSD.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import format_table
from repro.core import presets
from repro.core.system import FullSystem
from repro.workloads.enterprise import ENTERPRISE_WORKLOADS
from repro.workloads.runner import EnterpriseRunner

WORKLOAD_ORDER = ["24HR", "24HRS", "DAP", "CFS", "MSNFS"]
KERNELS = ["4.4", "4.14"]
INTERFACES = ["nvme", "sata"]


def run(quick: bool = True, interfaces=None, n_ios=None,
        concurrency=None, workloads=None) -> Dict:
    """``n_ios``/``concurrency``/``workloads`` shrink the sweep for the
    golden small configs; defaults reproduce the paper's panel."""
    n_ios = n_ios or (400 if quick else 1500)
    concurrency = concurrency or (8 if quick else 16)
    interfaces = interfaces or INTERFACES
    workloads = workloads or WORKLOAD_ORDER
    results: Dict = {"workloads": workloads, "data": {}}
    for interface in interfaces:
        device = (presets.intel750() if interface == "nvme"
                  else presets.samsung850pro())
        for kernel in KERNELS:
            for name in workloads:
                system = FullSystem(device=device, interface=interface,
                                    kernel=kernel)
                system.precondition()
                runner = EnterpriseRunner(system,
                                          ENTERPRISE_WORKLOADS[name],
                                          concurrency=concurrency)
                res = runner.run(total_ios=n_ios)
                results["data"][(interface, kernel, name)] = {
                    "read_mbps": res.read_bandwidth_mbps,
                    "write_mbps": res.write_bandwidth_mbps,
                    "total_mbps": res.bandwidth_mbps,
                }
    results["speedup_4_14"] = _speedups(results, interfaces)
    return results


def _speedups(results: Dict, interfaces) -> Dict[str, float]:
    """How much faster 4.14 is than 4.4, averaged over workloads."""
    ratios = {"read": [], "write": []}
    for interface in interfaces:
        for name in results["workloads"]:
            old = results["data"][(interface, "4.4", name)]
            new = results["data"][(interface, "4.14", name)]
            if old["read_mbps"] > 0:
                ratios["read"].append(new["read_mbps"] / old["read_mbps"])
            if old["write_mbps"] > 0:
                ratios["write"].append(new["write_mbps"] / old["write_mbps"])
    return {kind: (sum(vals) / len(vals) if vals else 0.0)
            for kind, vals in ratios.items()}


def render(results: Dict) -> str:
    rows = []
    for (interface, kernel, name), point in results["data"].items():
        rows.append([interface, kernel, name,
                     round(point["read_mbps"]),
                     round(point["write_mbps"])])
    table = format_table(
        ["interface", "kernel", "workload", "read MB/s", "write MB/s"],
        rows, "Fig 12: enterprise workloads on kernels 4.4 vs 4.14")
    speed = results["speedup_4_14"]
    return (f"{table}\n\n4.14 vs 4.4 speedup: "
            f"reads x{speed['read']:.2f}, writes x{speed['write']:.2f} "
            "(paper: 4.4 is worse by 63% / 69%)")

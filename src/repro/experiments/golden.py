"""Golden result digests: the determinism contract, made executable.

Every experiment here runs a *small config* — the same code paths as the
paper figures, at sizes that finish in seconds — and its full result
dictionary is canonicalized and hashed.  The hashes (and payloads, for
diffability) live in ``tests/golden/*.json``; the tier-1 suite recomputes
them on every run.  Because the simulator is deterministic, any digest
drift means a *behavioural* change: an event reordered, a latency
recomputed differently, a float produced by a different expression.
Performance work must keep every digest bit-identical — that is what
makes a fast-path refactor mergeable (see docs/PERFORMANCE.md).

Wall-clock fields are stripped before hashing (they are the only
legitimately nondeterministic outputs).  Regenerate after an intentional
model change with::

    PYTHONPATH=src python -m repro.experiments.golden --update
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import Callable, Dict

from repro.common.units import KB

#: result keys that legitimately differ run-to-run (never hashed)
VOLATILE_KEYS = {"wall_seconds", "events_per_sec"}

DEFAULT_DIR = Path("tests") / "golden"


# -- canonicalization ---------------------------------------------------------

def _canon_key(key) -> str:
    return key if isinstance(key, str) else repr(key)


def canonicalize(obj):
    """Reduce a result tree to JSON-stable form.

    Dict keys become strings (tuples via ``repr``) and are sorted;
    volatile keys are dropped; tuples become lists; any non-JSON leaf
    falls back to ``repr``.  Floats pass through untouched — CPython's
    shortest-repr float serialization is deterministic, so identical
    doubles always canonicalize identically.
    """
    if isinstance(obj, dict):
        items = sorted((_canon_key(k), canonicalize(v))
                       for k, v in obj.items()
                       if _canon_key(k) not in VOLATILE_KEYS)
        return dict(items)
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, (int, float, str)):
        return obj
    return repr(obj)


def digest(result) -> str:
    """SHA-256 over the canonical JSON encoding of ``result``."""
    payload = json.dumps(canonicalize(result), sort_keys=True,
                         separators=(",", ":"), ensure_ascii=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


# -- the small configs --------------------------------------------------------

def _fig10():
    from repro.experiments import fig10_blocksize
    return fig10_blocksize.run(quick=True, devices=["intel750"],
                               sizes=[4 * KB, 64 * KB],
                               budgets=(1 << 20, 4 << 20))


def _fig11():
    from repro.experiments import fig11_overprovision
    return fig11_overprovision.run(quick=True, sizes=[4 * KB],
                                   op_ratios=[0.20, 0.05],
                                   stress_multiplier=0.15)


def _fig12():
    from repro.experiments import fig12_os_impact
    return fig12_os_impact.run(quick=True, interfaces=["nvme"], n_ios=80,
                               concurrency=4, workloads=["24HR", "MSNFS"])


def _fig13():
    from repro.experiments import fig13_mobile
    return fig13_mobile.run(quick=True, n_ios=80, concurrency=4,
                            workloads=["MSNFS"])


def _fig14():
    from repro.experiments import fig14_frequency
    return fig14_frequency.run(quick=True, n_ios=60, freqs=[2])


def _fig15():
    from repro.experiments import fig15_passive_active
    return fig15_passive_active.run(quick=True, n_ios=60, sizes=[4 * KB],
                                    patterns=["randread", "write"])


def _fig16():
    from repro.experiments import fig16_simspeed
    return fig16_simspeed.run(quick=True, n_ios=100)


def _multi_tenant_noisy():
    """The noisy-neighbor suite: namespaces, arbiters, open-loop arrivals.

    One digest covers the whole multi-tenant stack — per-tenant
    namespaces and queues, all arbitration disciplines the variants
    exercise, banded placement, Poisson/Zipfian generators and the
    per-tenant metric rollups.  Any event reorder anywhere in that
    pipeline shifts a latency and drifts this digest.
    """
    from repro.experiments import noisy_neighbor
    return noisy_neighbor.run(quick=True)


def _perf_scenarios():
    """The benchmark scenarios' deterministic facts at smoke size."""
    from repro.bench.scenarios import SCENARIOS
    return {name: runner("smoke").to_dict()
            for name, runner in SCENARIOS.items()}


#: golden case name -> result producer
GOLDEN_CASES: Dict[str, Callable[[], Dict]] = {
    "fig10_blocksize": _fig10,
    "fig11_overprovision": _fig11,
    "fig12_os_impact": _fig12,
    "fig13_mobile": _fig13,
    "fig14_frequency": _fig14,
    "fig15_passive_active": _fig15,
    "fig16_simspeed": _fig16,
    "multi_tenant_noisy": _multi_tenant_noisy,
    "perf_scenarios": _perf_scenarios,
}


# -- recording / checking -----------------------------------------------------

def golden_path(case: str, directory: Path = DEFAULT_DIR) -> Path:
    return Path(directory) / f"{case}.json"


def record_case(case: str, directory: Path = DEFAULT_DIR) -> Dict:
    """Run one case and write its golden file; returns the document."""
    result = GOLDEN_CASES[case]()
    doc = {"case": case, "digest": digest(result),
           "payload": canonicalize(result)}
    path = golden_path(case, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return doc


def check_case(case: str, directory: Path = DEFAULT_DIR) -> bool:
    """Re-run one case and compare against its committed golden digest."""
    expected = json.loads(golden_path(case, directory).read_text())
    return digest(GOLDEN_CASES[case]()) == expected["digest"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.golden",
        description="record or verify the golden result digests")
    parser.add_argument("--update", action="store_true",
                        help="rewrite golden files from the current code")
    parser.add_argument("--case", action="append", choices=GOLDEN_CASES,
                        help="restrict to one case (repeatable)")
    parser.add_argument("--dir", type=Path, default=DEFAULT_DIR,
                        help="golden directory (default tests/golden)")
    parser.add_argument("--causal", action="store_true",
                        help="re-check with per-request causal capture "
                             "armed: digests must stay identical (capture "
                             "is bit-neutral) and the conservation "
                             "invariant must hold for every request")
    args = parser.parse_args(argv)

    from repro.obs import causal as _causal

    failures = []
    try:
        for case in (args.case or GOLDEN_CASES):
            if args.update:
                doc = record_case(case, args.dir)
                print(f"recorded {case}: {doc['digest'][:16]}…",
                      file=sys.stderr)
                continue
            if args.causal:
                # re-arm per case so the violation count covers only it
                _causal.enable_causal()
            ok = check_case(case, args.dir)
            note = ""
            if args.causal:
                tracers = _causal.collectors()
                violations = sum(t.violations for t in tracers)
                records = sum(t.records for t in tracers)
                note = (f"  [causal: {records} requests, "
                        f"{violations} violations]")
                if violations:
                    ok = False
            print(f"{'ok  ' if ok else 'FAIL'} {case}{note}",
                  file=sys.stderr)
            if not ok:
                failures.append(case)
    finally:
        if args.causal:
            _causal.disable_causal()
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Enterprise workload replay across kernel versions.

Runs the Table III workloads (authentication server, SQL back end, MSN
storage, display-ads payload) at user level on Linux 4.4 (CFQ) and 4.14
(refined BFQ) — the Fig 12 experiment as a library user would script it.
"""

from repro.core import FullSystem, presets
from repro.workloads import ENTERPRISE_WORKLOADS, EnterpriseRunner


def main() -> None:
    print(f"{'workload':<8} {'kernel':<7} {'read MB/s':>10} "
          f"{'write MB/s':>11} {'mean us':>9}")
    print("-" * 50)
    for name in ("24HR", "CFS", "DAP"):
        for kernel in ("4.4", "4.14"):
            system = FullSystem(device=presets.intel750(),
                                interface="nvme", kernel=kernel)
            system.precondition()
            runner = EnterpriseRunner(system, ENTERPRISE_WORKLOADS[name],
                                      concurrency=8)
            res = runner.run(total_ios=600)
            print(f"{name:<8} {kernel:<7} {res.read_bandwidth_mbps:>10.0f} "
                  f"{res.write_bandwidth_mbps:>11.0f} "
                  f"{res.latency.mean_us():>9.0f}")
    print("\nCFQ's per-process idling (a seek-avoidance policy) starves a")
    print("parallel SSD; the refined BFQ of 4.14 keeps it fed.")


if __name__ == "__main__":
    main()

"""Figures 3 & 4: existing simulators vs the real device."""

from repro.experiments import fig03_04_baselines as experiment

from benchmarks.conftest import run_experiment


def test_fig03_04_baseline_comparison(benchmark):
    result = run_experiment(benchmark, experiment)
    trends = result["trend_classes"]
    # the paper's trend classes: MQSim/SSDSim climb linearly,
    # SSD-Extension/FlashSim stay flat, none matches the real device
    assert trends["mqsim"] == "linear"
    assert trends["ssdsim"] == "linear"
    assert trends["flashsim"] == "constant"
    assert trends["ssd-extension"] == "constant"

    depths = result["depths"]
    for sim in ("mqsim", "ssdsim", "ssd-extension", "flashsim"):
        # a simulator may track the real device on one pattern (the
        # paper's MQSim error starts at 3%), but across the full
        # read/write grid the disparity must be large somewhere
        errors = []
        for pattern, per_sim in result["patterns"].items():
            real = per_sim["real-device"]
            curve = per_sim[sim]
            errors.extend(
                abs(curve[d]["bandwidth_mbps"] - real[d]["bandwidth_mbps"])
                / real[d]["bandwidth_mbps"] for d in depths)
        assert max(errors) > 0.3, \
            f"{sim} unexpectedly matches the real device everywhere"

"""SIM210 fixture: nondeterminism crossing call edges into state.

The individual helpers also trip the per-file source rules (SIM101,
SIM102) at the read site — SIM210 is the *transitive* finding at the
store site, where the per-file rules are blind.
"""

import time


class Gauge:
    def _read_clock(self):
        return time.time()

    def _sample(self):
        return self._read_clock()

    def record(self):
        self.last_sample = self._sample()   # wallclock -> model state

    def _ordered_tags(self):
        return list({"read", "program", "erase"})

    def snapshot(self):
        self.order = self._ordered_tags()   # hash order -> model state

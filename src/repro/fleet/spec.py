"""Declarative sweep specifications: config-as-data for the fleet runner.

A :class:`SweepSpec` names a scenario from the registry
(:mod:`repro.fleet.scenarios`) and describes a family of parameter
dictionaries: a ``base`` dict every job shares plus ``axes`` that vary.
Expansion (:meth:`SweepSpec.expand`) turns the spec into concrete
:class:`Job` descriptions, each carrying a **stable config hash** — the
SHA-256 of the job's canonical-JSON parameter dict.  The hash is the
identity of the job everywhere downstream: the result store files under
it, the runner derives the job's RNG seed from it
(:func:`derive_seed`), and merged reports key on it, so any two sweeps
that describe the same configuration agree on what they ran.

The spec's ``name`` is deliberately *excluded* from the hash: renaming
a sweep must not invalidate its cached results.

Grid mode enumerates the cartesian product of the axes (axis names in
sorted order, values in listed order).  Random mode draws ``samples``
assignments from the axes with a ``random.Random(sample_seed)``
sampler — deterministic for a given spec — and de-duplicates by config
hash, keeping first occurrences.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.golden import canonicalize


def config_hash(params: Dict) -> str:
    """Stable SHA-256 hex digest of one job's parameter dictionary.

    Parameters are canonicalized exactly like golden-test results
    (sorted string keys, tuples to lists, volatile keys dropped), so the
    hash is independent of dict insertion order and of how the spec was
    written down.
    """
    payload = json.dumps(canonicalize(params), sort_keys=True,
                         separators=(",", ":"), ensure_ascii=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def derive_seed(job_hash: str, stream: int = 0) -> int:
    """Deterministic per-job RNG seed derived from the config hash.

    Two jobs with different configurations draw from unrelated streams;
    the same configuration always gets the same seed, no matter which
    worker process runs it or in which order.  ``stream`` separates
    multiple independent RNG consumers inside one job.
    """
    return int(job_hash[:16], 16) ^ (stream * 0x9E3779B97F4A7C15
                                     & 0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class Job:
    """One planned simulation: its full parameter dict and its hash."""

    params: Dict
    config_hash: str

    @classmethod
    def from_params(cls, params: Dict) -> "Job":
        """Wrap a parameter dict, computing its config hash."""
        return cls(params=params, config_hash=config_hash(params))


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: scenario + shared base + varying axes."""

    name: str
    scenario: str
    base: Dict = field(default_factory=dict)
    axes: Dict[str, Tuple] = field(default_factory=dict)
    mode: str = "grid"            # "grid" | "random"
    samples: int = 0              # random mode: how many draws
    sample_seed: int = 17         # random mode: sampler seed

    def __post_init__(self) -> None:
        if self.mode not in ("grid", "random"):
            raise ValueError(f"unknown sweep mode {self.mode!r}")
        if self.mode == "random" and self.samples < 1:
            raise ValueError("random mode needs samples >= 1")
        for axis, values in self.axes.items():
            if not isinstance(values, Sequence) or isinstance(values, str) \
                    or len(values) == 0:
                raise ValueError(f"axis {axis!r} must list at least one value")
            if axis in self.base:
                raise ValueError(f"axis {axis!r} also appears in base")

    # -- expansion --------------------------------------------------------

    def _job_params(self, assignment: Dict) -> Dict:
        """Merge scenario + base + one axis assignment into job params."""
        params = {"scenario": self.scenario}
        params.update(self.base)
        params.update(assignment)
        return params

    def expand(self) -> List[Job]:
        """Concrete jobs, in deterministic spec order (see module doc)."""
        names = sorted(self.axes)
        if self.mode == "grid":
            assignments = [dict(zip(names, combo)) for combo in
                           itertools.product(*(tuple(self.axes[n])
                                               for n in names))]
        else:
            rng = random.Random(self.sample_seed)
            assignments = [{n: rng.choice(tuple(self.axes[n]))
                            for n in names}
                           for _ in range(self.samples)]
        jobs: List[Job] = []
        seen = set()
        for assignment in assignments:
            job = Job.from_params(self._job_params(assignment))
            if job.config_hash not in seen:
                seen.add(job.config_hash)
                jobs.append(job)
        return jobs

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready encoding (the on-disk sweep-spec schema)."""
        doc = {
            "name": self.name,
            "scenario": self.scenario,
            "base": dict(self.base),
            "axes": {name: list(values)
                     for name, values in sorted(self.axes.items())},
            "mode": self.mode,
        }
        if self.mode == "random":
            doc["samples"] = self.samples
            doc["sample_seed"] = self.sample_seed
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "SweepSpec":
        """Parse the on-disk schema (see ``docs/FLEET.md``)."""
        unknown = set(doc) - {"name", "scenario", "base", "axes", "mode",
                              "samples", "sample_seed"}
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        for key in ("name", "scenario"):
            if key not in doc:
                raise ValueError(f"spec is missing required key {key!r}")
        return cls(
            name=doc["name"],
            scenario=doc["scenario"],
            base=dict(doc.get("base", {})),
            axes={name: tuple(values)
                  for name, values in doc.get("axes", {}).items()},
            mode=doc.get("mode", "grid"),
            samples=int(doc.get("samples", 0)),
            sample_seed=int(doc.get("sample_seed", 17)),
        )

    @classmethod
    def load(cls, path) -> "SweepSpec":
        """Read a JSON spec file from ``path``."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

"""Universal Flash Storage: h-type storage for handheld platforms."""

from repro.interfaces.ufs.upiu import UPIU_SIZES, Utrd, UpiuType
from repro.interfaces.ufs.utp import UtpEngine
from repro.interfaces.ufs.controller import UfsDeviceController

__all__ = ["UpiuType", "UPIU_SIZES", "Utrd", "UtpEngine",
           "UfsDeviceController"]

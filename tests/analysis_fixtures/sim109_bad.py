"""SIM109 fixture: fleet workers seeded from everything but the config."""

import os
import random


def run_job_worker(job):
    rng = random.Random(1234)            # same stream for every job
    return rng.uniform(0, 50)


def sweep_worker(params):
    rng = random.Random(os.getpid())     # varies by scheduling, not config
    return rng.randrange(100)


def replay_job(entry, counter):
    rng = random.Random(counter * 31)    # depends on completion order
    rng.seed(counter * 31)
    return rng.random()

"""The four prior-simulator behavioural models.

Each model exposes ``reset(sim)`` and ``service(req)`` (a process
generator that completes when the simulator would report the request
done).  All are configured from the same Table I device parameters; the
differences are purely in modeling scope:

================  =========== ========== ========= ==========
                  FlashSim    SSD-Ext.   SSDSim    MQSim
----------------  ----------- ---------- --------- ----------
FTL               page/assoc  page       page      page
parallelism       none        fixed cap  full      full
channel model     no          no         yes       yes
queue/protocol    no          no         no        simple
computation cplx  no          no         no        no
data movement     no          no         no        no
================  =========== ========== ========= ==========
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.iorequest import IORequest
from repro.common.units import US, transfer_ns
from repro.sim import Resource
from repro.ssd.config import SSDConfig


class _BaselineModel:
    """Shared plumbing: Table I geometry/timing, page-level mapping."""

    name = "baseline"

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        self.sim = None
        self.mapping: Dict[int, int] = {}   # functional page map
        self._next_ppn = 0

    def reset(self, sim) -> None:
        self.sim = sim
        self.mapping.clear()
        self._next_ppn = 0
        self._build(sim)

    def _build(self, sim) -> None:
        raise NotImplementedError

    def _map_pages(self, req: IORequest) -> List[int]:
        """Functional page-level FTL shared by every baseline."""
        page_size = self.config.geometry.page_size
        first = req.offset // page_size
        last = (req.offset + req.nbytes - 1) // page_size
        ppns = []
        for lpn in range(first, last + 1):
            if req.kind.is_write or lpn not in self.mapping:
                self.mapping[lpn] = self._next_ppn
                self._next_ppn += 1
            ppns.append(self.mapping[lpn])
        return ppns

    def _flash_ns(self, req: IORequest) -> int:
        timing = self.config.timing
        return int(timing.t_read_avg if req.kind.is_read
                   else timing.t_prog_avg)


class FlashSimModel(_BaselineModel):
    """FlashSim [34]: mapping-algorithm simulator, no flash/queue model.

    One request at a time against a single flash latency: bandwidth is a
    depth-independent constant and latency climbs linearly with depth —
    the 'linear trend curved by unrealistic gradients' of Fig 4.
    """

    name = "flashsim"

    def _build(self, sim) -> None:
        self._server = Resource(sim, 1, name="flashsim")

    def service(self, req: IORequest):
        pages = self._map_pages(req)
        yield self._server.acquire()
        try:
            yield self.sim.timeout(len(pages) * self._flash_ns(req))
        finally:
            self._server.release()


class SSDExtensionModel(_BaselineModel):
    """SSD Extension for DiskSim [13]: page FTL over a simplified flash.

    Fixed per-element service with a small, fixed parallelism and no
    queueing model: both bandwidth and latency go flat almost
    immediately — the constant trend of Figs 3 and 4.
    """

    name = "ssd-extension"
    ELEMENTS = 4    # DiskSim SSD's default flash-element count

    def _build(self, sim) -> None:
        self._elements = Resource(sim, self.ELEMENTS, name="ssdext")

    def service(self, req: IORequest):
        pages = self._map_pages(req)
        yield self._elements.acquire()
        try:
            # DiskSim charges a fixed per-request service, uninfluenced
            # by queue depth (no host-side or interface queueing at all)
            yield self.sim.timeout(len(pages) * self._flash_ns(req) // 2
                                   + 20_000)
        finally:
            self._elements.release()


class SSDSimModel(_BaselineModel):
    """SSDSim [33]: detailed internal parallelism, no interface model.

    Every die/plane is modeled, so requests spread over the full
    parallelism of the array and bandwidth keeps climbing linearly with
    depth through QD 32 — nothing in the model ever saturates.
    """

    name = "ssdsim"

    def _build(self, sim) -> None:
        geom = self.config.geometry
        self._units = [Resource(sim, 1, name=f"unit{i}")
                       for i in range(geom.parallel_units)]
        self._channels = [Resource(sim, 1, name=f"ch{i}")
                          for i in range(geom.channels)]
        self._cursor = 0

    def service(self, req: IORequest):
        geom = self.config.geometry
        pages = self._map_pages(req)
        for ppn in pages:
            unit_index = ppn % geom.parallel_units
            channel = unit_index // (geom.ways_per_channel
                                     * geom.planes_per_die)
            unit = self._units[unit_index]
            yield unit.acquire()
            try:
                yield self.sim.timeout(self._flash_ns(req))
                bus = self._channels[channel]
                yield bus.acquire()
                try:
                    yield self.sim.timeout(transfer_ns(
                        geom.page_size, self.config.timing.channel_bandwidth))
                finally:
                    bus.release()
            finally:
                unit.release()


class MQSimModel(_BaselineModel):
    """MQSim [16]: storage complex + simple protocol/DRAM latency models.

    Adds a per-request protocol cost and a small write cache on top of
    SSDSim-class parallelism, but has no computation complex and no data
    movement: closer to real, yet bandwidth still does not saturate.
    """

    name = "mqsim"
    PROTOCOL_US = 14          # fixed protocol management latency
    CACHE_PORT_NS = 2_200     # single DRAM cache port, per page

    def _build(self, sim) -> None:
        geom = self.config.geometry
        self._units = [Resource(sim, 1, name=f"unit{i}")
                       for i in range(geom.parallel_units)]
        self._cache_port = Resource(sim, 1, name="mqsim-cache")

    def service(self, req: IORequest):
        geom = self.config.geometry
        pages = self._map_pages(req)
        yield self.sim.timeout(self.PROTOCOL_US * US)
        if req.kind.is_write:
            # every write lands in the DRAM cache through one port; the
            # model never charges a drain, so bandwidth keeps climbing
            # with depth — MQSim's signature unsaturating write curve
            yield self._cache_port.acquire()
            try:
                yield self.sim.timeout(self.CACHE_PORT_NS * len(pages))
            finally:
                self._cache_port.release()
            return
        for ppn in pages:
            unit = self._units[ppn % geom.parallel_units]
            yield unit.acquire()
            try:
                yield self.sim.timeout(
                    self._flash_ns(req)
                    + transfer_ns(geom.page_size,
                                  self.config.timing.channel_bandwidth))
            finally:
                unit.release()

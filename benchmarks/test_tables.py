"""Tables I-IV regeneration benchmarks."""

from repro.experiments import tables

from benchmarks.conftest import run_experiment


def test_tables_1_to_4(benchmark):
    result = run_experiment(benchmark, tables)
    assert result["table1"]["Storage back-end"]["Channel"] == 12
    assert "PC platform" in result["table2"]
    assert set(result["table3"]) == {"24HR", "24HRS", "CFS", "MSNFS", "DAP"}
    # Table III: generated streams must match the published statistics
    for name, data in result["table3"].items():
        spec = data["spec"]
        gen = data["generated"]
        assert abs(gen["read_ratio"] * 100 - spec["Read ratio (%)"]) < 8, name
        assert gen["avg_read_kb"] == (
            gen["avg_read_kb"])  # sanity: numeric
    # Table IV: Amber implements every feature, baselines strictly fewer
    amber_col = sum(1 for row in result["table4"]["rows"] if row[1] == "yes")
    assert amber_col == len(result["table4"]["rows"])

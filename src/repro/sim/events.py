"""Event primitives for the simulation kernel.

Hot-path note: this module (with :mod:`repro.sim.engine` and
:mod:`repro.sim.process`) is the innermost loop of every simulation —
hundreds of thousands of events per macro benchmark (see
``docs/PERFORMANCE.md``).  The implementation therefore trades a little
elegance for speed: ``__slots__`` everywhere, direct underscore-field
access between the three kernel modules instead of property calls, and
constructors that initialize fields inline rather than chaining through
``super().__init__``.  Behavioural contracts are pinned by the golden
determinism suite, so any change here must keep event schedules
bit-identical.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, becomes *triggered* when ``succeed`` or
    ``fail`` is called (it is then on the simulator's queue), and becomes
    *processed* once the simulator pops it and runs its callbacks.
    Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_cancelled")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` was called (event is queued)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the simulator popped the event and ran callbacks."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """True if the event was tombstoned before processing."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """False if the event was triggered via :meth:`fail`."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value (or exception); raises while still pending."""
        if not self._processed and not self._triggered:
            raise RuntimeError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully; callbacks run after ``delay`` ns."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        if delay:
            self.sim._enqueue(delay, self)
        else:
            # zero-delay trigger is the overwhelmingly common case:
            # push at the current instant without the _enqueue call
            sim = self.sim
            heappush(sim._queue, (sim._now, next(sim._sequence), self))
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._enqueue(delay, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` on processing (immediately if already done)."""
        if self._processed:
            # Late subscriber: run at the current instant, preserving order.
            immediate = Event(self.sim)
            immediate.callbacks.append(lambda _ev: callback(self))
            immediate.succeed()
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        # NOTE: the simulator inlines this body in its run loops; keep the
        # two in sync (engine.step / engine.run / engine.run_process).
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if not self._ok and not callbacks:
            # a failure nobody is waiting on would otherwise vanish and
            # typically surface as a deadlock; let the simulator report it
            self.sim._record_orphan_failure(self)
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "processed" if self._processed else (
                "triggered" if self._triggered else "pending"))
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation.

    A pending timeout may be :meth:`cancel`-led — e.g. an elevator's
    anticipation timer obsoleted by an arriving request.  Cancellation
    tombstones the heap entry: the simulator drops it lazily when it
    reaches the head of the queue, without rebuilding the heap and
    without counting it in ``events_processed``.
    """

    __slots__ = ("delay",)

    def __init__(self, sim, delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inline the Event/queue setup: this constructor runs once per
        # simulated wait and the super().__init__ chain is measurable.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._cancelled = False
        self.delay = delay = int(delay)
        # delay was validated non-negative above; push directly
        heappush(sim._queue, (sim._now + delay, next(sim._sequence), self))

    def cancel(self) -> None:
        """Tombstone the timeout so it never fires.

        Only meaningful while the timeout is still queued; cancelling a
        processed timeout is an error.  Waiters that registered before
        the cancel will never be resumed by this event, so only cancel
        timeouts you own exclusively (the usual speculative-timer case).
        """
        if self._processed:
            raise RuntimeError("cannot cancel a processed timeout")
        if self._cancelled:
            # double cancel: two owners think they hold this timer —
            # benign for the schedule (tombstoning is idempotent) but
            # worth surfacing when the sanitizer is watching
            sanitizer = getattr(self.sim, "sanitizer", None)
            if sanitizer is not None:
                sanitizer.on_double_cancel(self)
        self._cancelled = True


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim, events) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        child_done = self._child_done
        for event in self.events:
            if event._processed:
                if not event._ok:
                    self.fail(event._value)
                    return
            else:
                self._pending += 1
                # children are pending or queued here, so their callback
                # list exists; append directly (no add_callback dispatch)
                event.callbacks.append(child_done)
        self._check()

    def _child_done(self, event: Event) -> None:
        self._pending -= 1
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._check()

    def _check(self) -> None:
        raise NotImplementedError

    def _results(self):
        return [event._value for event in self.events
                if event._processed and event._ok]


class AllOf(_Condition):
    """Triggers once every child event has been processed."""

    __slots__ = ()

    def _check(self) -> None:
        if self._pending == 0 and not self._triggered:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Triggers as soon as any child event has been processed."""

    __slots__ = ()

    def _check(self) -> None:
        if self._triggered:
            return
        if self._pending < len(self.events) or not self.events:
            done = [event for event in self.events if event._processed]
            self.succeed(done[0]._value if done else None)

"""Generator-driven simulation processes.

Hot-path note: ``_resume`` runs once per generator step — by far the
most frequent call in any simulation — so it reads the waited event's
underscore fields directly and attempts the common wait case (a live
event on the same simulator) inline, deferring to :meth:`_wait_on` only
for error diagnostics and already-processed targets.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator

from repro.sim.events import Event, Interrupt


class Process(Event):
    """A process wraps a generator that yields events to wait on.

    The process itself is an event: it triggers (with the generator's
    return value) when the generator finishes, so processes can wait on
    one another simply by yielding them.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim, generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {type(generator)!r}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event = None
        # Kick off at the current instant (after already-queued events);
        # inlined succeed() — the bootstrap is ours, never pre-triggered.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap._triggered = True
        heappush(sim._queue, (sim._now, next(sim._sequence), bootstrap))
        sanitizer = getattr(sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.watch_process(self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished or failed."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            raise RuntimeError("cannot interrupt a finished process")
        poke = Event(self.sim)
        poke.callbacks.append(lambda _ev: self._throw(Interrupt(cause)))
        poke.succeed()

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise RuntimeError("uncaught Interrupt in process") from exc
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        # Fast path: target is a live event on our simulator — subscribe
        # directly.  Anything else (non-event, foreign simulator,
        # already-processed) falls through to the checked slow path.
        try:
            callbacks = target.callbacks
            target_sim = target.sim
        except AttributeError:
            self._wait_on(target)  # raises the diagnostic TypeError
            return
        if callbacks is not None and target_sim is self.sim \
                and isinstance(target, Event):
            self._waiting_on = target
            callbacks.append(self._resume)
        else:
            self._wait_on(target)

    def _wait_on(self, target) -> None:
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded a non-event: {target!r} "
                "(yield sim.timeout(...), a Store get/put, or another process)")
        if target.sim is not self.sim:
            raise ValueError("yielded event belongs to a different simulator")
        self._waiting_on = target
        target.add_callback(self._resume)
    # NOTE: _resume subscribes via callbacks.append directly on its fast
    # path; add_callback here covers the already-processed target case.

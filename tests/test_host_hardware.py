"""Unit tests for the host hardware models (CPU, memory, buses, DMA)."""

import pytest

from repro.common.instructions import InstructionMix
from repro.common.units import GB, GHZ, MB
from repro.host.bus import SystemBus
from repro.host.cpu import CpuModel, HostCpu
from repro.host.dma import DmaEngine, PointerList
from repro.host.memory import HostMemory
from repro.host.pcie import PcieLink, SataLink, UfsLink
from repro.host.platform import mobile_platform, pc_platform
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestHostCpu:
    def test_atomic_model_costs_nothing(self, sim):
        cpu = HostCpu(sim, 4, 4 * GHZ, model=CpuModel.ATOMIC)
        sim.run_process(cpu.execute(InstructionMix.typical(100_000)))
        assert sim.now == 0

    def test_timing_model_costs_time(self, sim):
        cpu = HostCpu(sim, 4, 4 * GHZ, model=CpuModel.TIMING)
        sim.run_process(cpu.execute(InstructionMix.typical(10_000)))
        assert sim.now > 0

    def test_o3_faster_than_in_order(self, sim):
        mix = InstructionMix.typical(50_000)
        o3 = HostCpu(sim, 1, 4 * GHZ, model=CpuModel.O3)
        timing = HostCpu(sim, 1, 4 * GHZ, model=CpuModel.TIMING)
        assert o3.exec_ns(mix) < timing.exec_ns(mix)

    def test_frequency_scaling(self, sim):
        mix = InstructionMix.typical(50_000)
        slow = HostCpu(sim, 1, 2 * GHZ, model=CpuModel.O3)
        fast = HostCpu(sim, 1, 8 * GHZ, model=CpuModel.O3)
        assert slow.exec_ns(mix) == pytest.approx(4 * fast.exec_ns(mix),
                                                  rel=0.01)

    def test_cores_execute_in_parallel(self, sim):
        cpu = HostCpu(sim, 2, 1 * GHZ, model=CpuModel.TIMING)
        mix = InstructionMix.typical(10_000)

        def both():
            procs = [sim.process(cpu.execute(mix, core=0)),
                     sim.process(cpu.execute(mix, core=1))]
            for proc in procs:
                yield proc

        sim.run_process(both())
        assert sim.now < 2 * cpu.exec_ns(mix)

    def test_same_core_serializes(self, sim):
        cpu = HostCpu(sim, 2, 1 * GHZ, model=CpuModel.TIMING)
        mix = InstructionMix.typical(10_000)

        def both():
            procs = [sim.process(cpu.execute(mix, core=0)),
                     sim.process(cpu.execute(mix, core=0))]
            for proc in procs:
                yield proc

        sim.run_process(both())
        assert sim.now >= 2 * cpu.exec_ns(mix)

    def test_kernel_vs_user_utilization_tracked(self, sim):
        cpu = HostCpu(sim, 1, 1 * GHZ, model=CpuModel.TIMING)
        mix = InstructionMix.typical(10_000)

        def work():
            yield from cpu.execute(mix, core=0, kernel=True)
            yield from cpu.execute(mix, core=0, kernel=False)

        sim.run_process(work())
        assert 0 < cpu.kernel_utilization() < 1
        assert cpu.total_utilization() == pytest.approx(1.0)

    def test_invalid_core_count(self, sim):
        with pytest.raises(ValueError):
            HostCpu(sim, 0, 1 * GHZ)


class TestHostMemory:
    def test_access_takes_time(self, sim):
        mem = HostMemory(sim, 1 * GB, bandwidth=10 * GB)
        sim.run_process(mem.access(4096))
        assert sim.now > 0

    def test_ledger_tracks_usage(self, sim):
        mem = HostMemory(sim, 1 * GB, bandwidth=10 * GB)
        mem.allocate("a", 100 * MB)
        mem.allocate("b", 50 * MB)
        assert mem.used_bytes == 150 * MB
        mem.free("a")
        assert mem.used_bytes == 50 * MB
        assert mem.usage_of("b") == 50 * MB

    def test_overcommit_rejected(self, sim):
        mem = HostMemory(sim, 100 * MB, bandwidth=10 * GB)
        with pytest.raises(MemoryError):
            mem.allocate("big", 200 * MB)

    def test_usage_timeline_records_changes(self, sim):
        mem = HostMemory(sim, 1 * GB, bandwidth=10 * GB)
        sim.schedule(100, lambda: mem.allocate("x", MB))
        sim.schedule(200, lambda: mem.free("x"))
        sim.run()
        timeline = mem.usage_timeline()
        values = [v for _t, v in timeline]
        assert MB in values and values[-1] == 0


class TestLinks:
    def test_pcie_bandwidth_scales_with_lanes(self, sim):
        x4 = PcieLink(sim, gen=3, lanes=4)
        x8 = PcieLink(sim, gen=3, lanes=8)
        assert x8.effective_bandwidth == pytest.approx(
            2 * x4.effective_bandwidth)

    def test_unsupported_gen_rejected(self, sim):
        with pytest.raises(ValueError):
            PcieLink(sim, gen=9)

    def test_sata_half_duplex_serializes_directions(self, sim):
        link = SataLink(sim)

        def both():
            procs = [sim.process(link.send(1 * MB)),
                     sim.process(link.receive(1 * MB))]
            for proc in procs:
                yield proc

        sim.run_process(both())
        one_way = Simulator()
        link2 = SataLink(one_way)
        one_way.run_process(link2.send(1 * MB))
        # both directions share one lane: total >= 2x one transfer
        assert sim.now >= 2 * (one_way.now - link2.latency_ns)

    def test_pcie_full_duplex_overlaps(self, sim):
        link = PcieLink(sim)

        def both():
            procs = [sim.process(link.send(1 * MB)),
                     sim.process(link.receive(1 * MB))]
            for proc in procs:
                yield proc

        sim.run_process(both())
        solo = Simulator()
        link2 = PcieLink(solo)
        solo.run_process(link2.send(1 * MB))
        assert sim.now < 1.5 * solo.now

    def test_ufs_slower_than_pcie(self, sim):
        assert UfsLink(sim).effective_bandwidth < \
            PcieLink(sim).effective_bandwidth


class TestDmaEngine:
    def _engine(self, sim, model=CpuModel.O3):
        cpu = HostCpu(sim, 4, 4 * GHZ, model=model)
        mem = HostMemory(sim, 1 * GB, bandwidth=20 * GB)
        bus = SystemBus(sim, 16 * GB)
        link = PcieLink(sim)
        return DmaEngine(sim, cpu, mem, bus, link)

    def test_pointer_list_covers_buffer(self):
        pointers = PointerList.for_buffer(0x1000, 10_000, page_size=4096)
        assert pointers.total_bytes == 10_000
        assert len(pointers) == 3

    def test_pointer_list_honours_page_alignment(self):
        pointers = PointerList.for_buffer(0x1800, 8192, page_size=4096)
        # unaligned start: first entry only reaches the page boundary
        assert pointers.entries[0][1] == 4096 - 0x800
        assert pointers.total_bytes == 8192

    def test_timing_cpu_walks_every_entry(self, sim):
        engine = self._engine(sim)
        pointers = PointerList.for_buffer(0, 64 * 1024)
        sim.run_process(engine.to_device(pointers))
        timing_time = sim.now

        sim2 = Simulator()
        engine2 = self._engine(sim2, model=CpuModel.ATOMIC)
        sim2.run_process(engine2.to_device(pointers))
        # aggregated (functional CPU) transfer pays fewer fixed costs
        assert sim2.now < timing_time

    def test_transfer_counters(self, sim):
        engine = self._engine(sim)
        pointers = PointerList.for_buffer(0, 8192)
        sim.run_process(engine.to_device(pointers))
        sim.run_process(engine.to_host(pointers))
        assert engine.bytes_to_device == 8192
        assert engine.bytes_to_host == 8192
        assert engine.transfers == 2


class TestPlatforms:
    def test_table2_rows_match_paper(self):
        pc = pc_platform().table_row()
        assert pc["CPU name"] == "Intel i7-4790K"
        assert pc["Frequency"] == "4.4GHz"
        assert pc["Memory"] == "DDR4-2400, 2 channel"
        mobile = mobile_platform().table_row()
        assert mobile["CPU name"] == "NVIDIA Jetson TX2"
        assert mobile["ISA"] == "ARM v8"
        assert mobile["L3 cache"] == "N/A"

    def test_mobile_slower_than_pc(self):
        assert mobile_platform().frequency < pc_platform().frequency
        assert mobile_platform().memory_bandwidth < \
            pc_platform().memory_bandwidth

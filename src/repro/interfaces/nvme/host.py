"""Host-side NVMe driver.

Builds 64-byte SQEs with PRP (or SGL) pointer lists, writes them into
submission queues in host memory, rings doorbells over PCIe MMIO, and
reaps completions delivered through CQEs + MSI-X.  There is no host
*controller* — that is the defining property of s-type storage.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.iorequest import IOKind, IORequest
from repro.host.dma import PointerList
from repro.host.memory import HostMemory
from repro.host.pcie import PcieLink
from repro.interfaces.base import HostAdapter, buffer_address
from repro.interfaces.nvme.queues import QueuePair
from repro.interfaces.nvme.structures import (
    CQE_BYTES,
    SQE_BYTES,
    Namespace,
    NvmeOpcode,
    SubmissionEntry,
    TransferMode,
)

_HOST_PAGE = 4096
_PRP_ENTRY_BYTES = 8


class NvmeDriver(HostAdapter):
    def __init__(self, sim, memory: HostMemory, link: PcieLink,
                 n_io_queues: int = 4, queue_depth: int = 1024,
                 transfer_mode: TransferMode = TransferMode.PRP,
                 total_sectors: int = 0) -> None:
        self.sim = sim
        self.memory = memory
        self.link = link
        self.n_io_queues = n_io_queues
        self.queue_depth = queue_depth
        self.transfer_mode = transfer_mode
        self.qpairs: Dict[int, QueuePair] = {
            qid: QueuePair(qid, queue_depth)
            for qid in range(1, n_io_queues + 1)}
        self.admin = QueuePair(0, 64)
        self.namespaces: Dict[int, Namespace] = {}
        if total_sectors:
            self.namespaces[1] = Namespace(1, 0, total_sectors)
        self.controller = None              # set by the device controller
        self._completions: Dict[int, Tuple[IORequest, object]] = {}
        self._waiting: Dict[int, Deque] = {qid: deque() for qid in self.qpairs}
        self.max_outstanding = n_io_queues * (queue_depth - 1)
        self.commands_issued = 0
        self.interrupts_received = 0
        # protocol structures live in system memory (Fig 15c footprint)
        ring_bytes = (n_io_queues + 1) * queue_depth * (SQE_BYTES + CQE_BYTES)
        memory.allocate("nvme-driver", ring_bytes + 2 * 1024 * 1024)

    # -- introspection --------------------------------------------------------

    def sq_depth(self) -> int:
        """Entries currently occupying the I/O submission queues (telemetry)."""
        return sum(qp.sq.occupancy for qp in self.qpairs.values())

    def outstanding(self) -> int:
        """Commands issued to the device and not yet reaped via a CQE."""
        return len(self._completions)

    # -- admin ----------------------------------------------------------------

    def attach_controller(self, controller) -> None:
        self.controller = controller

    def create_namespace(self, nsid: int, start_sector: int,
                         n_sectors: int) -> Namespace:
        """NVMe namespace management (optional admin feature)."""
        if nsid in self.namespaces:
            raise ValueError(f"namespace {nsid} already exists")
        for ns in self.namespaces.values():
            if not (start_sector + n_sectors <= ns.start_sector
                    or ns.start_sector + ns.n_sectors <= start_sector):
                raise ValueError(f"namespace {nsid} overlaps namespace {ns.nsid}")
        ns = Namespace(nsid, start_sector, n_sectors)
        self.namespaces[nsid] = ns
        return ns

    def delete_namespace(self, nsid: int) -> None:
        """Drop a namespace; its LBA range becomes unallocated."""
        if nsid not in self.namespaces:
            raise ValueError(f"namespace {nsid} does not exist")
        del self.namespaces[nsid]

    def provision_namespaces(self, sizes: List[int]) -> List[Namespace]:
        """Repartition the device into ``len(sizes)`` namespaces.

        Replaces the current namespace map with namespaces 1..N laid
        out back-to-back from sector 0, sized per ``sizes`` (sectors).
        This is the multi-tenant setup path: tenant ``i`` gets namespace
        ``i + 1`` (see :mod:`repro.core.tenants`).
        """
        total = sum(sizes)
        capacity = max((ns.start_sector + ns.n_sectors
                        for ns in self.namespaces.values()), default=total)
        if total > capacity:
            raise ValueError(f"namespaces need {total} sectors; "
                             f"device has {capacity}")
        if any(size <= 0 for size in sizes):
            raise ValueError("namespace sizes must be positive")
        self.namespaces.clear()
        created: List[Namespace] = []
        start = 0
        for index, size in enumerate(sizes):
            created.append(self.create_namespace(index + 1, start, size))
            start += size
        return created

    def identify(self) -> Dict[str, object]:
        return {
            "n_io_queues": self.n_io_queues,
            "queue_depth": self.queue_depth,
            "namespaces": sorted(self.namespaces),
            "transfer_mode": self.transfer_mode.value,
        }

    def admin_command(self, opcode: NvmeOpcode, **params):
        """Process generator: issue one admin command through the admin
        queue pair (SQE write + doorbell + CQE/interrupt round trip).

        Returns the command's result payload (e.g. the SMART log for
        GET_LOG_PAGE, the controller data structure for IDENTIFY).
        """
        if self.controller is None:
            raise RuntimeError("no NVMe controller attached")
        event = self.sim.event()
        sqe = SubmissionEntry(opcode=opcode, context=params)
        yield from self.memory.access(SQE_BYTES, write=True)
        self.admin.sq.push(sqe)
        self.admin.ring_sq_doorbell()
        self._completions[sqe.cid] = (None, event)
        yield from self.link.mmio_write()
        self.controller.admin_doorbell()
        result = yield event
        return result

    def create_io_queue_pair(self, qid: int,
                             depth: Optional[int] = None) -> QueuePair:
        """Driver-side bookkeeping for CREATE_CQ + CREATE_SQ."""
        if qid in self.qpairs:
            raise ValueError(f"queue pair {qid} already exists")
        qpair = QueuePair(qid, depth or self.queue_depth)
        self.qpairs[qid] = qpair
        self._waiting[qid] = deque()
        self.n_io_queues = len(self.qpairs)
        self.max_outstanding = sum(qp.sq.depth - 1
                                   for qp in self.qpairs.values())
        return qpair

    def delete_io_queue_pair(self, qid: int) -> None:
        if qid not in self.qpairs:
            raise ValueError(f"queue pair {qid} does not exist")
        if self.qpairs[qid].sq.occupancy:
            raise RuntimeError(f"queue pair {qid} still has work queued")
        del self.qpairs[qid]
        del self._waiting[qid]
        self.n_io_queues = len(self.qpairs)

    # -- I/O ----------------------------------------------------------------

    def _qid_for(self, req: IORequest) -> int:
        return 1 + (req.queue_id % self.n_io_queues)

    def _build_pointers(self, req: IORequest) -> PointerList:
        return PointerList.for_buffer(buffer_address(req), req.nbytes,
                                      _HOST_PAGE)

    def submit(self, req: IORequest):
        """Issue one request (called by the block layer); returns an event."""
        if self.controller is None:
            raise RuntimeError("no NVMe controller attached")
        event = self.sim.event()
        qid = self._qid_for(req)
        req.queue_id = qid - 1
        self.sim.process(self._submit_proc(req, qid, event))
        return event

    def _submit_proc(self, req: IORequest, qid: int, event):
        with self.sim.tracer.span("nvme.sq", req.req_id, qid=qid):
            qpair = self.qpairs[qid]
            if qpair.sq.is_full:
                waiter = self.sim.event()
                self._waiting[qid].append(waiter)
                yield waiter

            opcode = {IOKind.READ: NvmeOpcode.READ,
                      IOKind.WRITE: NvmeOpcode.WRITE,
                      IOKind.FLUSH: NvmeOpcode.FLUSH,
                      IOKind.TRIM: NvmeOpcode.DATASET_MANAGEMENT}[req.kind]
            if req.nsid:
                ns = self.namespaces.get(req.nsid)
                if ns is None:
                    raise ValueError(f"request targets unknown namespace "
                                     f"{req.nsid}")
            else:
                ns = self.namespaces.get(1)
            slba = ns.translate(req.slba, req.nsectors) if ns and \
                req.kind in (IOKind.READ, IOKind.WRITE) else req.slba
            pointers = self._build_pointers(req)
            sqe = SubmissionEntry(
                opcode=opcode, nsid=req.nsid or 1, slba=slba,
                nlb=max(0, req.nsectors - 1),
                prp_entries=list(pointers.entries),
                transfer_mode=self.transfer_mode, context=req)

            # write the SQE into the SQ ring in system memory
            yield from self.memory.access(SQE_BYTES, write=True)
            # PRP list beyond the two in-SQE pointers needs a list page write;
            # SGL writes one descriptor per segment
            extra = len(pointers) - 2 if sqe.transfer_mode is TransferMode.PRP \
                else len(pointers)
            if extra > 0:
                yield from self.memory.access(extra * _PRP_ENTRY_BYTES,
                                              write=True)
            qpair.sq.push(sqe)
            qpair.ring_sq_doorbell()
            self._completions[sqe.cid] = (req, event)
            self.commands_issued += 1
            # doorbell: posted MMIO write through PCIe
            yield from self.link.mmio_write()
        self.controller.doorbell(qid)

    # -- completion path (called by the controller after MSI-X) -----------------

    def interrupt_admin(self) -> None:
        """MSI-X for the admin CQ: complete pending admin commands."""
        self.interrupts_received += 1
        while True:
            cqe = self.admin.cq.reap()
            if cqe is None:
                break
            _req, event = self._completions.pop(cqe.cid)
            event.succeed(getattr(cqe, "payload", None))
        self.admin.ring_cq_doorbell()

    def interrupt(self, qid: int) -> None:
        """MSI-X arrival for a CQ: reap every posted completion."""
        self.interrupts_received += 1
        qpair = self.qpairs[qid]
        while True:
            cqe = qpair.cq.reap()
            if cqe is None:
                break
            req, event = self._completions.pop(cqe.cid)
            payload = getattr(cqe, "payload", None)
            event.succeed(payload)
            if self._waiting[qid]:
                self._waiting[qid].popleft().succeed()
        qpair.ring_cq_doorbell()

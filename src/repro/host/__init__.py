"""Host hardware model (the gem5 substitute).

CPU models (atomic/functional and timing in-order / out-of-order
approximations), host DRAM with a usage ledger, the system crossbar,
PCIe links and the revised DMA engine with pointer-list walkers — the
pieces of gem5 the paper modifies (Figure 5b).
"""

from repro.host.cpu import CpuModel, HostCpu
from repro.host.memory import HostMemory
from repro.host.bus import SystemBus
from repro.host.pcie import PcieLink, SataLink, UfsLink
from repro.host.dma import DmaEngine, PointerList
from repro.host.platform import HostPlatform, mobile_platform, pc_platform

__all__ = [
    "CpuModel",
    "HostCpu",
    "HostMemory",
    "SystemBus",
    "PcieLink",
    "SataLink",
    "UfsLink",
    "DmaEngine",
    "PointerList",
    "HostPlatform",
    "pc_platform",
    "mobile_platform",
]

"""Clone-consistency check for the engine's inlined hot loops (SIM108).

``repro.sim.engine`` deliberately keeps three copies of the
pop-and-process event-loop body — ``Simulator.step`` (which delegates
the processing half to ``Event._process``), ``Simulator.run`` and
``Simulator.run_process`` (which inline it) — because the loop runs
hundreds of thousands of times per benchmark and locals beat attribute
lookups.  The docstrings have always warned "all three copies must stay
semantically identical"; this module makes the warning executable.

The approach is *normalize and diff*:

1. every loop body is rewritten into a canonical form — preamble
   aliases (``queue = self._queue``, ``pop = heapq.heappop``, …) and a
   fixed local-name table map to placeholder names, and
   ``event._process()`` is expanded to the canonical body of
   ``Event._process`` from ``events.py``;
2. per-entry-point variants that are *allowed* to differ (the
   ``until`` deadline guard, ``step``'s trailing ``return``) are
   stripped;
3. what remains must be statement-for-statement identical across the
   three clones, with ``step`` (+ the expanded ``Event._process``) as
   the reference.

Any other difference — a reordered counter, a dropped telemetry hook, a
new statement added to only one copy — is reported as a divergence with
the expected and actual statement text.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional

#: fixed canonical names for the loop locals every clone shares
_BASE_RENAMES = {
    "self": "SELF",
    "event": "EVENT",
    "when": "WHEN",
    "_seq": "SEQ",
    "callbacks": "CALLBACKS",
    "callback": "CALLBACK",
}

#: canonical attribute accesses on the simulator -> placeholder locals
_SELF_ATTR_CANON = {
    "_queue": "QUEUE",
    "telemetry": "TELEMETRY",
    "sanitizer": "SANITIZER",
    "_record_orphan_failure": "ORPHAN_FN",
}

#: the loop entry points that carry a clone of the event-processing body
CLONE_METHODS = ("step", "run", "run_process")


@dataclass(frozen=True)
class CloneDivergence:
    """One semantic difference between a clone and the reference body."""

    method: str
    lineno: int
    message: str


class _Canonicalize(ast.NodeTransformer):
    """Rewrite one statement into the canonical placeholder form."""

    def __init__(self, renames: Dict[str, str], self_name: str) -> None:
        self.renames = renames
        self.self_name = self_name

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        # self.<known attr>  ->  placeholder Name
        if isinstance(node.value, ast.Name) and \
                node.value.id == self.self_name and \
                node.attr in _SELF_ATTR_CANON:
            return ast.copy_location(
                ast.Name(id=_SELF_ATTR_CANON[node.attr], ctx=node.ctx), node)
        # heapq.heappop -> POP
        if isinstance(node.value, ast.Name) and node.value.id == "heapq" \
                and node.attr == "heappop":
            return ast.copy_location(ast.Name(id="POP", ctx=node.ctx), node)
        # event.sim._record_orphan_failure (Event._process form) -> ORPHAN_FN
        if node.attr == "_record_orphan_failure" and \
                isinstance(node.value, ast.Attribute) and \
                node.value.attr == "sim" and \
                isinstance(node.value.value, ast.Name) and \
                node.value.value.id == self.self_name:
            return ast.copy_location(ast.Name(id="ORPHAN_FN", ctx=node.ctx),
                                     node)
        return self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> ast.AST:
        new = self.renames.get(node.id)
        if new is not None:
            return ast.copy_location(ast.Name(id=new, ctx=node.ctx), node)
        return node


def _canon_stmt(stmt: ast.stmt, renames: Dict[str, str],
                self_name: str = "self") -> str:
    tree = ast.parse(ast.unparse(stmt))  # private copy; transform freely
    tree = _Canonicalize(renames, self_name).visit(tree)
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _preamble_renames(func: ast.FunctionDef,
                      loop: ast.While) -> Dict[str, str]:
    """Alias map from the local-binding preamble before the hot loop.

    ``pop = heapq.heappop`` makes ``pop`` canonical ``POP`` — whatever
    the local is actually called, so renaming a local cannot fool (or
    break) the diff.
    """
    renames = dict(_BASE_RENAMES)
    for stmt in func.body:
        if stmt is loop:
            break
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            value = _canon_stmt(ast.Expr(value=stmt.value), renames)
            # the attribute rewrite usually already yields the
            # placeholder itself, hence the identity entries
            canon = {"QUEUE": "QUEUE", "POP": "POP",
                     "TELEMETRY": "TELEMETRY", "SANITIZER": "SANITIZER",
                     "ORPHAN_FN": "ORPHAN_FN"}.get(value)
            if canon is not None:
                renames[stmt.targets[0].id] = canon
    return renames


def _is_until_guard(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.If):
        return False
    return ast.unparse(stmt.test).startswith("until is not None")


def _process_reference(events_source: str) -> List[str]:
    """Canonical statements of ``Event._process`` from events.py."""
    tree = ast.parse(events_source)
    event_cls = _find_class(tree, "Event")
    if event_cls is None:
        raise ValueError("events.py defines no Event class")
    process = _method(event_cls, "_process")
    if process is None:
        raise ValueError("Event defines no _process method")
    renames = dict(_BASE_RENAMES)
    renames["self"] = "EVENT"  # _process's self *is* the event
    return [_canon_stmt(stmt, renames, self_name="self")
            for stmt in process.body
            if not _is_docstring(stmt)]


def _is_docstring(stmt: ast.stmt) -> bool:
    return isinstance(stmt, ast.Expr) and \
        isinstance(stmt.value, ast.Constant) and \
        isinstance(stmt.value.value, str)


def _loop_of(func: ast.FunctionDef) -> Optional[ast.While]:
    loops = [n for n in ast.walk(func) if isinstance(n, ast.While)]
    return loops[0] if len(loops) == 1 else None


def _clone_body(func: ast.FunctionDef, loop: ast.While,
                process_ref: List[str]) -> List[str]:
    """The canonical core statement sequence of one clone's loop body."""
    renames = _preamble_renames(func, loop)
    out: List[str] = []
    for stmt in loop.body:
        if _is_until_guard(stmt):
            continue  # per-entry-point deadline handling may differ
        if isinstance(stmt, ast.Return) and stmt.value is None:
            continue  # step returns after one event; run keeps looping
        canon = _canon_stmt(stmt, renames)
        if canon == "EVENT._process()":
            out.extend(process_ref)  # step delegates; run/run_process inline
        else:
            out.append(canon)
    return out


def compare_clones(engine_source: str,
                   events_source: str) -> List[CloneDivergence]:
    """Diff the three engine loop clones; empty list means consistent."""
    divergences: List[CloneDivergence] = []
    tree = ast.parse(engine_source)
    simulator = _find_class(tree, "Simulator")
    if simulator is None:
        return [CloneDivergence("Simulator", 1,
                                "engine.py defines no Simulator class")]
    process_ref = _process_reference(events_source)

    bodies: Dict[str, List[str]] = {}
    linenos: Dict[str, int] = {}
    for name in CLONE_METHODS:
        method = _method(simulator, name)
        if method is None:
            divergences.append(CloneDivergence(
                name, simulator.lineno, f"Simulator.{name} is missing"))
            continue
        loop = _loop_of(method)
        if loop is None:
            divergences.append(CloneDivergence(
                name, method.lineno,
                "expected exactly one while loop (the inlined event loop)"))
            continue
        bodies[name] = _clone_body(method, loop, process_ref)
        linenos[name] = loop.lineno

    if "step" not in bodies:
        return divergences
    reference = bodies["step"]
    for name in CLONE_METHODS[1:]:
        if name not in bodies:
            continue
        actual = bodies[name]
        lineno = linenos[name]
        for index in range(max(len(reference), len(actual))):
            expected_stmt = reference[index] if index < len(reference) else \
                "<nothing: step's loop body ends here>"
            actual_stmt = actual[index] if index < len(actual) else \
                "<nothing: this loop body ends here>"
            if expected_stmt != actual_stmt:
                divergences.append(CloneDivergence(
                    name, lineno,
                    f"statement {index + 1} is `{actual_stmt}` but the "
                    f"reference clone (step/Event._process) has "
                    f"`{expected_stmt}`"))
                break  # one aligned diff per method keeps the report readable
    return divergences

"""SIM203 fixture: byte->time conversion through the sanctioned helpers."""

from repro.common.units import ns_per_byte, transfer_ns


def drain(sim, nbytes, bandwidth):
    yield sim.timeout(transfer_ns(nbytes, bandwidth))


def settle(sim, nbytes, bandwidth):
    total_ns = round(nbytes * ns_per_byte(bandwidth))
    yield sim.timeout(total_ns)

"""UTP engine: the UFS host controller, living on the SoC system bus.

Functionally the SATA HBA's equivalent (Section IV-A), but attached to
AXI instead of a PCI endpoint: the CPU reaches it through UFSHCI
memory-mapped registers, and a small FIFO bridges the frequency domains
between the UTP engine and the device's M-PHY.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.common.iorequest import IOKind, IORequest
from repro.host.memory import HostMemory
from repro.host.pcie import UfsLink
from repro.interfaces.base import HostAdapter, buffer_address
from repro.interfaces.ufs.upiu import (
    UPIU_SIZES,
    UTRD_SLOTS,
    UpiuType,
    Utrd,
    utrd_for,
)

_UTRD_BYTES = 32
_PRDT_ENTRY_BYTES = 16
_UTP_PROCESS_NS = 900           # SoC-integrated controller pipeline
_DOMAIN_FIFO_NS = 400           # frequency-domain crossing FIFO


class UtpEngine(HostAdapter):
    max_outstanding = UTRD_SLOTS

    def __init__(self, sim, memory: HostMemory, link: UfsLink) -> None:
        self.sim = sim
        self.memory = memory
        self.link = link
        self.controller = None
        self._free_slots: Deque[int] = deque(range(UTRD_SLOTS))
        self._slot_waiters: Deque = deque()
        self._outstanding: Dict[int, tuple] = {}
        self.commands_issued = 0
        self.interrupts_raised = 0
        memory.allocate("ufshci", UTRD_SLOTS * 1024)

    def attach_controller(self, controller) -> None:
        self.controller = controller

    def submit(self, req: IORequest):
        if self.controller is None:
            raise RuntimeError("no UFS device controller attached")
        event = self.sim.event()
        self.sim.process(self._submit_proc(req, event))
        return event

    def _submit_proc(self, req: IORequest, event):
        with self.sim.tracer.span("ufs.utp.submit", req.req_id):
            if not self._free_slots:
                waiter = self.sim.event()
                self._slot_waiters.append(waiter)
                yield waiter
            slot = self._free_slots.popleft()
            req.queue_id = 0
            utrd = utrd_for(slot, req.kind.is_write, req.slba, req.nsectors,
                            buffer_address(req))
            if req.kind == IOKind.FLUSH:
                utrd.prdt = []

            # driver fills the UTRD + command UPIU through UFSHCI registers
            table_bytes = (_UTRD_BYTES + UPIU_SIZES[UpiuType.COMMAND]
                           + len(utrd.prdt) * _PRDT_ENTRY_BYTES)
            yield from self.memory.access(table_bytes, write=True)
            yield from self.memory.access(table_bytes)
            yield self.sim.timeout(_UTP_PROCESS_NS + _DOMAIN_FIFO_NS)
            # command UPIU over M-PHY
            yield from self.link.send(UPIU_SIZES[UpiuType.COMMAND])
            self._outstanding[slot] = (utrd, req, event)
            self.commands_issued += 1
        self.controller.command_arrived(utrd, req)

    def command_done(self, slot: int, payload: Optional[bytes]):
        """Process generator: response UPIU -> interrupt -> slot recycle."""
        utrd, req, event = self._outstanding.pop(slot)
        with self.sim.tracer.span("ufs.utp.complete", req.req_id):
            yield from self.link.receive(UPIU_SIZES[UpiuType.RESPONSE])
            yield self.sim.timeout(_UTP_PROCESS_NS + _DOMAIN_FIFO_NS)
        self.interrupts_raised += 1
        if req.t_backend_done < 0:
            req.t_backend_done = self.sim.now
        self._free_slots.append(utrd.slot)
        if self._slot_waiters:
            self._slot_waiters.popleft().succeed()
        event.succeed(payload)

"""SimSanitizer runtime checks: each violation class provoked on a toy
simulator, post-mortem dumps, and the golden pin that a sanitized run
is bit-identical to a plain one (docs/ANALYSIS.md, "Runtime sanitizer").
"""

import json
import os
import subprocess
import sys
from heapq import heappush
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    SanitizerError,
    all_violations,
    disable_sanitizer,
    enable_sanitizer,
    sanitizer_enabled,
    sanitizers,
)
from repro.sim import Resource, Simulator
from repro.sim.events import Event

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _reset_sanitizer():
    """Every test leaves the process-wide switch off (the tier-1 state)."""
    yield
    disable_sanitizer()


def _kinds(violations):
    return [v.kind for v in violations]


# -- arming -------------------------------------------------------------------

class TestArming:
    def test_off_by_default(self):
        assert not sanitizer_enabled()
        assert Simulator().sanitizer is None

    def test_enable_attaches_to_new_simulators(self):
        enable_sanitizer()
        sim = Simulator()
        assert sim.sanitizer is not None
        assert sim.sanitizer.sim is sim
        assert sim.sanitizer in sanitizers()

    def test_disable_detaches_and_forgets(self):
        enable_sanitizer()
        Simulator()
        disable_sanitizer()
        assert Simulator().sanitizer is None
        assert sanitizers() == []

    def test_env_var_arms_a_fresh_process(self):
        src_dir = Path(repro.__file__).parents[1]
        env = dict(os.environ, REPRO_SANITIZE="1", PYTHONPATH=str(src_dir))
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.sim import Simulator; "
             "raise SystemExit(0 if Simulator().sanitizer is not None "
             "else 1)"],
            env=env, timeout=120)
        assert proc.returncode == 0


# -- violation classes --------------------------------------------------------

class TestViolations:
    def test_causality_violation_detected(self):
        enable_sanitizer()
        sim = Simulator()
        sim.timeout(100)
        sim.run()
        assert sim.now == 100
        # force-schedule into the past, bypassing _enqueue's guard
        ghost = Event(sim)
        ghost._triggered = True
        heappush(sim._queue, (5, next(sim._sequence), ghost))
        sim.run()
        assert _kinds(sim.sanitizer.violations) == ["causality"]
        assert "scheduled into the past" in sim.sanitizer.violations[0].detail

    def test_clean_run_records_nothing(self):
        enable_sanitizer()
        sim = Simulator()

        def worker(gate):
            yield gate.acquire()
            try:
                yield sim.timeout(7)
            finally:
                gate.release()

        gate = Resource(sim, capacity=1)
        sim.process(worker(gate))
        sim.process(worker(gate))
        sim.run()
        assert sim.sanitizer.violations == []
        sim.sanitizer.check()  # no raise

    def test_leaked_token_and_stuck_waiter_at_drain(self):
        enable_sanitizer()
        sim = Simulator()
        gate = Resource(sim, capacity=1, name="gate")

        def hog():
            yield gate.acquire()
            yield sim.timeout(5)  # ends still holding the token

        def starved():
            yield gate.acquire()  # never granted

        sim.process(hog())
        sim.process(starved())
        sim.run()
        kinds = _kinds(sim.sanitizer.violations)
        assert "leaked-token" in kinds
        assert "stuck-waiter" in kinds
        assert "stuck-process" in kinds  # starved() never finished

    def test_stuck_process_alone_at_drain(self):
        enable_sanitizer()
        sim = Simulator()

        def waiter():
            yield Event(sim)  # nobody will ever trigger this

        sim.process(waiter())
        sim.run()
        assert _kinds(sim.sanitizer.violations) == ["stuck-process"]

    def test_deadline_cut_run_skips_the_drain_audit(self):
        """`run(until=...)` is not a drain: held tokens are legitimate."""
        enable_sanitizer()
        sim = Simulator()
        gate = Resource(sim, capacity=1)

        def worker():
            yield gate.acquire()
            try:
                yield sim.timeout(100)
            finally:
                gate.release()

        sim.process(worker())
        sim.run(until=50)  # mid-hold; not a leak
        assert sim.sanitizer.violations == []

    def test_double_cancel_detected(self):
        enable_sanitizer()
        sim = Simulator()
        timer = sim.timeout(5)
        timer.cancel()
        timer.cancel()
        assert _kinds(sim.sanitizer.violations) == ["double-cancel"]
        assert all_violations() == sim.sanitizer.violations

    def test_single_cancel_is_fine(self):
        enable_sanitizer()
        sim = Simulator()
        sim.timeout(10)
        timer = sim.timeout(5)
        timer.cancel()
        sim.run()
        assert sim.sanitizer.violations == []


# -- reporting and dumps ------------------------------------------------------

class TestReporting:
    def test_check_raises_with_every_violation_listed(self, tmp_path):
        enable_sanitizer(dump_dir=str(tmp_path))
        sim = Simulator()
        timer = sim.timeout(5)
        timer.cancel()
        timer.cancel()
        with pytest.raises(SanitizerError, match="double-cancel"):
            sim.sanitizer.check()

    def test_check_dumps_a_post_mortem(self, tmp_path):
        enable_sanitizer(dump_dir=str(tmp_path))
        sim = Simulator()
        timer = sim.timeout(5)
        timer.cancel()
        timer.cancel()
        with pytest.raises(SanitizerError):
            sim.sanitizer.check()
        dumps = list(tmp_path.glob("sanitizer-*.json"))
        assert len(dumps) == 1
        doc = json.loads(dumps[0].read_text())
        assert doc["violations"][0]["kind"] == "double-cancel"
        assert sim.sanitizer.dumped_to == str(dumps[0])

    def test_run_failure_dumps_through_the_sanitizer(self, tmp_path):
        enable_sanitizer(dump_dir=str(tmp_path))
        sim = Simulator()

        def doomed():
            yield sim.timeout(30)
            raise RuntimeError("die overheated")

        with pytest.raises(RuntimeError, match="overheated"):
            sim.run_process(doomed())
        dumps = list(tmp_path.glob("sanitizer-*.json"))
        assert len(dumps) == 1
        doc = json.loads(dumps[0].read_text())
        assert doc["error"]["type"] == "RuntimeError"
        assert doc["sim"]["now_ns"] == 30

    def test_report_summarizes(self):
        enable_sanitizer()
        sim = Simulator()
        assert "no violations" in sim.sanitizer.report()
        timer = sim.timeout(5)
        timer.cancel()
        timer.cancel()
        assert "1 violation(s)" in sim.sanitizer.report()


# -- determinism pins ---------------------------------------------------------

def _recorded_perf():
    doc = json.loads((GOLDEN_DIR / "perf_scenarios.json").read_text())
    return doc["payload"]


class TestDeterminismPins:
    def test_sanitized_run_is_bit_identical_to_plain(self):
        """The sanitizer observes only: golden facts are unchanged."""
        from repro.bench.scenarios import kernel_churn, randread_nvme
        recorded = _recorded_perf()
        enable_sanitizer()
        churn = kernel_churn("smoke")
        read = randread_nvme("smoke")
        assert churn.events == recorded["kernel_churn"]["events"]
        assert churn.sim_ns == recorded["kernel_churn"]["sim_ns"]
        assert read.events == recorded["randread_nvme"]["events"]
        assert read.sim_ns == recorded["randread_nvme"]["sim_ns"]

    def test_benchmarks_are_sanitizer_clean(self):
        """Regression for the kernel_churn gate leak: a full smoke pass
        over the pinned scenarios records zero violations."""
        from repro.bench.scenarios import kernel_churn, randread_nvme
        enable_sanitizer()
        kernel_churn("smoke")
        randread_nvme("smoke")
        assert all_violations() == []

"""Figures 3 & 4: real device vs existing SSD simulators, I/O depth 1-32.

Replays 4 KB FIO block traces through the four baseline simulator models
(their only supported evaluation mode) and contrasts bandwidth/latency
curves with the digitized real-device (Intel 750) reference.  The trend
classes — linear (MQSim/SSDSim), constant (SSD-Extension/FlashSim),
sublinear-saturating (real device) — are the reproduction target.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import format_series
from repro.baselines.models import (
    FlashSimModel,
    MQSimModel,
    SSDExtensionModel,
    SSDSimModel,
)
from repro.baselines.reference import reference_at
from repro.baselines.replay import ClosedLoopReplayer
from repro.core import presets
from repro.experiments.common import FULL_DEPTHS, QUICK_DEPTHS
from repro.workloads.synthetic import PATTERN_RW

SIMULATORS = {
    "mqsim": MQSimModel,
    "ssdsim": SSDSimModel,
    "ssd-extension": SSDExtensionModel,
    "flashsim": FlashSimModel,
}


def run(quick: bool = True) -> Dict:
    depths = QUICK_DEPTHS if quick else FULL_DEPTHS
    n_ios = 400 if quick else 1500
    config = presets.intel750()
    results: Dict = {"depths": depths, "patterns": {}}
    for pattern in PATTERN_RW:
        per_sim: Dict[str, Dict[int, Dict[str, float]]] = {}
        for sim_name, model_cls in SIMULATORS.items():
            replayer = ClosedLoopReplayer(model_cls(config))
            per_sim[sim_name] = {}
            for depth in depths:
                res = replayer.run(pattern, bs=4096, iodepth=depth,
                                   n_ios=n_ios)
                per_sim[sim_name][depth] = {
                    "bandwidth_mbps": res.bandwidth_mbps,
                    "latency_us": res.mean_latency_us,
                }
        per_sim["real-device"] = {
            depth: {
                "bandwidth_mbps": reference_at("intel750", pattern, depth),
                "latency_us": reference_at("intel750", pattern, depth,
                                           "latency"),
            } for depth in depths}
        results["patterns"][pattern] = per_sim
    results["trend_classes"] = _classify(results)
    return results


def _classify(results: Dict) -> Dict[str, str]:
    """Label each simulator's bandwidth trend on random reads.

    * constant   — flat from depth 1 (or flat past the first step);
    * saturating — grew substantially, then went flat in the tail;
    * linear     — still climbing at the deepest point.
    """
    out = {}
    data = results["patterns"]["randread"]
    depths = results["depths"]
    for sim, curve in data.items():
        first = curve[depths[0]]["bandwidth_mbps"]
        last = curve[depths[-1]]["bandwidth_mbps"]
        mid = curve[depths[len(depths) // 2]]["bandwidth_mbps"]
        flat_tail = mid > 0 and last <= 1.15 * mid
        if flat_tail and (first <= 0 or last <= 2.0 * first
                          or mid <= 1.05 * curve[depths[1]]["bandwidth_mbps"]):
            out[sim] = "constant"
        elif flat_tail:
            out[sim] = "saturating"
        else:
            out[sim] = "linear"
    return out


def render(results: Dict) -> str:
    blocks = []
    for pattern, per_sim in results["patterns"].items():
        bw = {sim: {d: round(v["bandwidth_mbps"]) for d, v in curve.items()}
              for sim, curve in per_sim.items()}
        lat = {sim: {d: round(v["latency_us"], 1) for d, v in curve.items()}
               for sim, curve in per_sim.items()}
        blocks.append(format_series(bw, "depth",
                                    f"Fig 3 ({pattern}) bandwidth MB/s"))
        blocks.append(format_series(lat, "depth",
                                    f"Fig 4 ({pattern}) latency us"))
    blocks.append(f"trend classes (randread): {results['trend_classes']}")
    return "\n\n".join(blocks)

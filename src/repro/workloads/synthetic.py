"""Synthetic FIO microbenchmark patterns used throughout the evaluation."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.fio import FioJob

#: the four micro-benchmarks of Figs 3, 4, 8, 9, 10
PATTERN_RW = {
    "seqread": "read",
    "randread": "randread",
    "seqwrite": "write",
    "randwrite": "randwrite",
}


def standard_patterns(bs: int = 4096, iodepth: int = 16,
                      total_ios: int = 1000) -> Dict[str, FioJob]:
    """The seq/rand x read/write grid as FIO jobs."""
    return {
        name: FioJob(rw=rw, bs=bs, iodepth=iodepth, total_ios=total_ios)
        for name, rw in PATTERN_RW.items()
    }


def depth_sweep(pattern: str, depths: Iterable[int], bs: int = 4096,
                total_ios: int = 1000) -> List[FioJob]:
    """One job per I/O depth for bandwidth/latency-vs-depth figures."""
    rw = PATTERN_RW[pattern]
    return [FioJob(rw=rw, bs=bs, iodepth=depth, total_ios=total_ios)
            for depth in depths]


def blocksize_sweep(pattern: str, sizes: Iterable[int], iodepth: int = 16,
                    total_ios: int = 500) -> List[FioJob]:
    """One job per block size for the Fig 10 sweep (4 KB - 1024 KB)."""
    rw = PATTERN_RW[pattern]
    return [FioJob(rw=rw, bs=size, iodepth=iodepth, total_ios=total_ios)
            for size in sizes]

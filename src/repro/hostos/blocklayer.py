"""The block layer: request creation, merging, scheduling, dispatch.

Sits between the syscall layer and a storage adapter (SATA HBA, UFS UTP
engine, NVMe/OCSSD driver).  Charges kernel CPU per the active kernel
profile, merges adjacent sequential requests when the profile allows,
runs the configured elevator, and respects both the scheduler's and the
hardware's outstanding-request limits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.instructions import InstructionMix
from repro.common.iorequest import IOKind, IORequest
from repro.host.cpu import HostCpu
from repro.hostos.iosched import make_scheduler
from repro.hostos.kernel import KernelProfile


class BlockLayer:
    def __init__(self, sim, cpu: HostCpu, profile: KernelProfile,
                 adapter) -> None:
        self.sim = sim
        self.cpu = cpu
        self.profile = profile
        self.adapter = adapter
        self.scheduler = make_scheduler(profile.scheduler)
        self.inflight = 0
        self.inflight_limit = min(profile.inflight_limit,
                                  adapter.max_outstanding)
        self._wake = None
        self._completion_events: Dict[int, object] = {}   # req_id -> user event
        self._merge_children: Dict[int, List[Tuple[IORequest, object, int]]] = {}
        self._mergeable: Dict[Tuple[str, int, int], IORequest] = {}
        self._mix = {
            "block": InstructionMix.typical(profile.block_submit_instr),
            "sched": InstructionMix.typical(profile.sched_instr),
            "driver": InstructionMix.typical(profile.driver_submit_instr),
            "isr": InstructionMix.typical(profile.isr_instr),
            "complete": InstructionMix.typical(profile.complete_instr),
        }
        self.requests_submitted = 0
        self.requests_merged = 0
        self.requests_dispatched = 0
        sim.process(self._dispatch_loop())

    # -- submission ------------------------------------------------------------

    def submit(self, req: IORequest, stream_id: int = 0,
               core: Optional[int] = None):
        """Process generator: enqueue a request; returns the completion event.

        The returned event fires with the read payload (or None) once the
        ISR and completion path have run.
        """
        # The block-layer span covers queueing through ISR/completion, so
        # it cannot be a with-block here: it closes from the completion
        # event's callback.  The registration is guarded on the tracer so
        # disabled runs add no callbacks (and stay event-identical).
        tracer = self.sim.tracer
        span = tracer.begin("os.blocklayer", req.req_id, slba=req.slba) \
            if tracer.enabled else None
        yield from self.cpu.execute(self._mix["block"], core=core, kernel=True)
        self.requests_submitted += 1
        user_event = self.sim.event()

        if self.profile.merge and self._try_merge(req, user_event):
            self.requests_merged += 1
            if span is not None:
                user_event.add_callback(lambda _ev: tracer.end(span))
            return user_event

        self._completion_events[req.req_id] = user_event
        self.scheduler.add(req, stream_id)
        if req.kind in (IOKind.READ, IOKind.WRITE):
            self._mergeable[(req.kind.value, req.nsid,
                             req.slba + req.nsectors)] = req
        self._kick()
        if span is not None:
            user_event.add_callback(lambda _ev: tracer.end(span))
        return user_event

    def _try_merge(self, req: IORequest, user_event) -> bool:
        key = (req.kind.value, req.nsid, req.slba)
        parent = self._mergeable.get(key)
        if parent is None:
            return False
        if parent.nsectors + req.nsectors > self.profile.max_merge_sectors:
            return False
        # extend the parent in place (back-merge)
        del self._mergeable[(parent.kind.value, parent.nsid,
                             parent.slba + parent.nsectors)]
        offset = parent.nsectors
        parent.nsectors += req.nsectors
        if parent.data is not None and req.data is not None:
            parent.data = parent.data + req.data
        self._merge_children.setdefault(parent.req_id, []).append(
            (req, user_event, offset))
        self._mergeable[(parent.kind.value, parent.nsid,
                         parent.slba + parent.nsectors)] = parent
        return True

    def _kick(self) -> None:
        if self._wake is not None:
            event, self._wake = self._wake, None
            event.succeed()

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self):
        served_in_turn = 0
        while True:
            if len(self.scheduler) == 0 or self.inflight >= self.inflight_limit:
                self._wake = self.sim.event()
                yield self._wake
                continue
            yield from self.cpu.execute(self._mix["sched"], kernel=True)
            req = self.scheduler.next(self.sim.now)
            if req is None:
                # the elevator is idling (CFQ anticipation): sleep it out
                idle_until = getattr(self.scheduler, "idle_until", 0)
                wait = max(10_000, idle_until - self.sim.now)
                yield self.sim.timeout(wait)
                continue
            self._mergeable.pop((req.kind.value, req.nsid,
                                 req.slba + req.nsectors), None)
            yield from self.cpu.execute(self._mix["driver"], kernel=True)
            req.t_driver = self.sim.now
            device_event = self.adapter.submit(req)
            self.inflight += 1
            self.requests_dispatched += 1
            self.sim.process(self._completion(req, device_event))

            served_in_turn += 1
            if (self.profile.dispatch_quantum
                    and served_in_turn >= self.profile.dispatch_quantum
                    and self.profile.dispatch_gap_ns):
                served_in_turn = 0
                yield self.sim.timeout(self.profile.dispatch_gap_ns)

    def _completion(self, req: IORequest, device_event):
        payload = yield device_event
        self.inflight -= 1
        self._kick()
        irq_core = req.queue_id % self.cpu.n_cores
        yield from self.cpu.execute(self._mix["isr"], core=irq_core, kernel=True)
        yield from self.cpu.execute(self._mix["complete"], core=irq_core,
                                    kernel=True)
        req.t_complete = self.sim.now
        children = self._merge_children.pop(req.req_id, [])
        user_event = self._completion_events.pop(req.req_id, None)
        if user_event is not None:
            own_payload = payload
            if children and payload is not None and req.kind.is_read:
                # the parent's own data is the prefix before the first merge
                own_payload = payload[:children[0][2] * 512]
            user_event.succeed(own_payload)
        for child, child_event, offset in children:
            child.t_complete = self.sim.now
            if payload is not None and child.kind.is_read:
                start = offset * 512
                child_event.succeed(payload[start:start + child.nbytes])
            else:
                child_event.succeed(None)

"""Open-Channel SSD: the passive storage architecture (host-side FTL)."""

from repro.interfaces.ocssd.geometry import ChunkState, OcssdGeometry
from repro.interfaces.ocssd.controller import OcssdController
from repro.interfaces.ocssd.pblk import PblkDriver

__all__ = ["OcssdGeometry", "ChunkState", "OcssdController", "PblkDriver"]

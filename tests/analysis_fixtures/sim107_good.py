"""SIM107 fixture: None defaults, materialized per call."""


def run_batch(jobs=None):
    jobs = list(jobs or ())
    jobs.append("warmup")
    return jobs


def build_stats(counters=None, *, labels=None):
    return counters or {}, labels or {}

"""Configuration tree for the SSD model.

Every reconfigurable aspect the paper lists — flash geometry and timing,
internal DRAM, embedded cores, cache associativity/replacement, FTL
mapping and GC policy, HIL arbitration, FIL parallelism order — has a
field here.  Presets for the four validated devices live in
``repro.core.presets``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.common.units import GB, KB, MB, MHZ, MS, US


@dataclass(frozen=True)
class FlashGeometry:
    """Physical organisation of the storage complex (Figure 2)."""

    channels: int = 12
    packages_per_channel: int = 5
    dies_per_package: int = 1
    planes_per_die: int = 2
    blocks_per_plane: int = 64          # scaled-down from 512 (see DESIGN.md)
    pages_per_block: int = 256
    page_size: int = 4 * KB

    @property
    def ways_per_channel(self) -> int:
        return self.packages_per_channel * self.dies_per_package

    @property
    def total_dies(self) -> int:
        return self.channels * self.ways_per_channel

    @property
    def parallel_units(self) -> int:
        """Independent program/read units: every (die, plane)."""
        return self.total_dies * self.planes_per_die

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def total_physical_pages(self) -> int:
        return self.parallel_units * self.pages_per_plane

    @property
    def physical_capacity(self) -> int:
        return self.total_physical_pages * self.page_size

    @property
    def block_size(self) -> int:
        return self.pages_per_block * self.page_size


@dataclass(frozen=True)
class FlashTiming:
    """NAND timing; fast/slow pairs model ISPP page-to-page variation.

    Defaults follow Table I (MLC: tPROG 820.62/2250 us, tR 59.975/104.956
    us, tERASE 3 ms) with the eval section's wider variation applied per
    preset.
    """

    t_read_fast: int = 59_975            # ns
    t_read_slow: int = 104_956
    t_prog_fast: int = 820_620
    t_prog_slow: int = 2_250_000
    t_erase: int = 3 * MS
    bits_per_cell: int = 2               # 1=SLC-like (Z-SSD), 2=MLC, 3=TLC
    channel_bus_mhz: int = 333           # ONFi 3
    channel_bus_width: int = 8           # bits, DDR
    t_cmd: int = 300                     # command/address cycle overhead (ns)

    @property
    def channel_bandwidth(self) -> float:
        """Bytes/s on one channel (DDR: two transfers per clock)."""
        return self.channel_bus_mhz * MHZ * 2 * (self.channel_bus_width / 8)

    def t_read(self, page_index: int) -> int:
        """Read latency for a page, fast/slow interleaved per ISPP pairing."""
        if self.bits_per_cell == 1:
            return self.t_read_fast
        return self.t_read_fast if page_index % 2 == 0 else self.t_read_slow

    def t_prog(self, page_index: int) -> int:
        if self.bits_per_cell == 1:
            return self.t_prog_fast
        return self.t_prog_fast if page_index % 2 == 0 else self.t_prog_slow

    @property
    def t_prog_avg(self) -> float:
        if self.bits_per_cell == 1:
            return float(self.t_prog_fast)
        return (self.t_prog_fast + self.t_prog_slow) / 2

    @property
    def t_read_avg(self) -> float:
        if self.bits_per_cell == 1:
            return float(self.t_read_fast)
        return (self.t_read_fast + self.t_read_slow) / 2


@dataclass(frozen=True)
class NandReliability:
    """Media error injection (disabled by default).

    ``read_retry_probability`` — chance a page read needs an ECC-driven
    retry (transient; costs an extra sense);
    ``erase_fail_probability`` — chance an erase fails permanently, at
    which point the firmware retires the block (bad-block management).
    Wear multiplies both: a block at its rated cycle count fails more.
    """

    read_retry_probability: float = 0.0
    erase_fail_probability: float = 0.0
    max_read_retries: int = 3
    wear_acceleration: float = 0.0    # extra probability per 1000 erases
    seed: int = 1009


@dataclass(frozen=True)
class NandPower:
    """Per-operation NAND energy (NANDFlashSim-style), joules."""

    e_read_page: float = 6e-6
    e_prog_page: float = 30e-6
    e_erase_block: float = 200e-6
    e_transfer_per_byte: float = 2e-12   # channel I/O energy
    p_standby_per_die: float = 2e-3      # watts


@dataclass(frozen=True)
class DramConfig:
    """Internal DRAM (DDR3L by default) and its controller."""

    size: int = 1 * GB
    channels: int = 1
    ranks: int = 1
    banks: int = 8
    bus_mhz: int = 800                   # DDR3L-1600
    bus_width: int = 64                  # bits
    t_rp: int = 14                       # ns, row precharge
    t_rcd: int = 14                      # ns, RAS-to-CAS
    t_cl: int = 14                       # ns, CAS latency
    burst_bytes: int = 64
    page_policy: str = "open"            # "open" | "close"
    row_size: int = 8 * KB
    # DRAMPower-style energy parameters
    e_activate: float = 3.0e-9           # J per ACT+PRE pair
    e_read_burst: float = 1.6e-9
    e_write_burst: float = 1.8e-9
    p_background: float = 0.12           # W per rank, active standby
    p_self_refresh: float = 0.015

    @property
    def bandwidth(self) -> float:
        """Peak bytes/s (DDR)."""
        return self.bus_mhz * MHZ * 2 * (self.bus_width / 8) * self.channels


@dataclass(frozen=True)
class CoreConfig:
    """Embedded computation complex: ARMv8 cores running the firmware."""

    n_cores: int = 3
    frequency: int = 500 * MHZ           # Hz
    # McPAT-style power parameters
    energy_per_instruction: float = 120e-12   # J, average dynamic
    leakage_per_core: float = 0.08            # W
    # per-class CPI overrides (falls back to common.instructions defaults)
    cpi: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class CacheConfig:
    """ICL data cache in internal DRAM."""

    enabled: bool = True
    fraction_of_dram: float = 0.75       # share of DRAM used for data cache
    associativity: str = "full"          # "full" | "set" | "direct"
    n_sets: int = 64                     # for set/direct
    ways: int = 8                        # for set-associative
    replacement: str = "lru"             # "lru" | "fifo" | "random"
    # parallelism-aware readahead (Section IV-C)
    readahead: bool = True
    readahead_threshold: int = 2         # sequential hits before triggering
    readahead_superpages: int = 4        # depth of the prefetch
    # write-back watermarks (fractions of cache lines dirty)
    flush_high_watermark: float = 0.7
    flush_low_watermark: float = 0.5


@dataclass(frozen=True)
class FTLConfig:
    mapping: str = "page"                # "page" | "block" | "hybrid"
    gc_policy: str = "greedy"            # "greedy" | "costbenefit"
    overprovision: float = 0.20          # fraction of physical space reserved
    gc_threshold_free_blocks: int = 2    # per parallel unit
    wear_leveling: bool = True
    wear_delta_threshold: int = 16       # erase-count spread triggering WL
    # super-page hashmap partial-update optimisation (Section IV-C)
    partial_update_hashmap: bool = True
    # hybrid mapping: number of log blocks per unit
    hybrid_log_blocks: int = 8


@dataclass(frozen=True)
class HILConfig:
    arbitration: str = "rr"              # "fifo" | "rr" | "wrr" | "wfq"
    wrr_weights: Tuple[int, ...] = (4, 2, 1)   # high/medium/low priorities
    fetch_burst: int = 8                 # commands fetched per arbitration turn
    # per-queue WFQ weights, indexed by queue_id - 1 (missing entries -> 1)
    qos_weights: Tuple[int, ...] = ()
    # max commands in service at once; 0 = unbounded (legacy behaviour).
    # A finite limit backs commands up in the submission queues, which is
    # what makes arbitration policy actually shape tail latency.
    inflight_limit: int = 0


@dataclass(frozen=True)
class FILConfig:
    # Order in which striped pages spread over resources (Sprinkler-style).
    parallelism_order: str = "channel_first"   # or "way_first"
    transfer_whole_page: bool = False    # False: partial page I/O on reads
    # Superpage line placement: "rotate" interleaves consecutive lines over
    # all channel/way groups (max parallelism); "banded" maps contiguous LBA
    # bands to disjoint groups, confining each namespace's traffic — and its
    # GC — to its own dies (die-level tenant isolation).
    placement: str = "rotate"


@dataclass(frozen=True)
class FirmwareCosts:
    """Instruction budgets per firmware operation (ARMv8 counts).

    These set the computation-complex service rates — the mechanism behind
    Amber's saturating bandwidth curves.  Values are per host command
    (hil_*), per cache line op (icl_*), per translation (ftl_*) and per
    flash transaction (fil_*).
    """

    hil_fetch: int = 450          # queue entry fetch + protocol parse
    hil_complete: int = 350       # completion + interrupt posting
    icl_lookup: int = 500         # cache tag walk
    icl_fill: int = 250           # line allocation / bookkeeping
    ftl_translate: int = 420      # mapping lookup + update
    ftl_gc_per_page: int = 350    # migration bookkeeping
    fil_issue: int = 180          # transaction scheduling
    doorbell_service: int = 150   # NVMe doorbell ISR on the device


@dataclass(frozen=True)
class SSDConfig:
    """Everything that defines one simulated SSD."""

    name: str = "generic-ssd"
    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    timing: FlashTiming = field(default_factory=FlashTiming)
    nand_power: NandPower = field(default_factory=NandPower)
    reliability: NandReliability = field(default_factory=NandReliability)
    dram: DramConfig = field(default_factory=DramConfig)
    cores: CoreConfig = field(default_factory=CoreConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    ftl: FTLConfig = field(default_factory=FTLConfig)
    hil: HILConfig = field(default_factory=HILConfig)
    fil: FILConfig = field(default_factory=FILConfig)
    costs: FirmwareCosts = field(default_factory=FirmwareCosts)
    # superpage span: how many channels/ways a superpage stripes across
    superpage_channels: int = 0          # 0 = all channels
    superpage_ways: int = 1

    def with_overrides(self, **kwargs) -> "SSDConfig":
        """Functional update, e.g. ``cfg.with_overrides(ftl=new_ftl)``."""
        return replace(self, **kwargs)

    @property
    def superpage_pages(self) -> int:
        """Flash pages per superpage (the ICL cache-line unit)."""
        channels = self.superpage_channels or self.geometry.channels
        return channels * self.superpage_ways * self.geometry.planes_per_die

    @property
    def superpage_size(self) -> int:
        return self.superpage_pages * self.geometry.page_size

    @property
    def logical_capacity(self) -> int:
        """User-visible bytes after over-provisioning."""
        usable = self.geometry.physical_capacity * (1.0 - self.ftl.overprovision)
        # round down to a whole number of superpages
        n_super = int(usable) // self.superpage_size
        return n_super * self.superpage_size

    @property
    def logical_pages(self) -> int:
        return self.logical_capacity // self.geometry.page_size

    @property
    def logical_sectors(self) -> int:
        return self.logical_capacity // 512

    def validate(self) -> None:
        geom = self.geometry
        if geom.channels < 1 or geom.packages_per_channel < 1:
            raise ValueError("geometry must have at least one channel/package")
        if self.superpage_channels > geom.channels:
            raise ValueError("superpage cannot span more channels than exist")
        if self.superpage_ways > geom.ways_per_channel:
            raise ValueError("superpage cannot span more ways than exist")
        if not 0.0 <= self.ftl.overprovision < 0.9:
            raise ValueError("overprovision must be in [0, 0.9)")
        if self.cache.associativity not in ("full", "set", "direct"):
            raise ValueError(f"unknown associativity {self.cache.associativity!r}")
        if self.ftl.mapping not in ("page", "block", "hybrid"):
            raise ValueError(f"unknown mapping {self.ftl.mapping!r}")
        if self.ftl.gc_policy not in ("greedy", "costbenefit"):
            raise ValueError(f"unknown GC policy {self.ftl.gc_policy!r}")
        if self.hil.arbitration not in ("fifo", "rr", "wrr", "wfq"):
            raise ValueError(f"unknown arbitration {self.hil.arbitration!r}")
        if self.hil.inflight_limit < 0:
            raise ValueError("inflight_limit must be >= 0 (0 = unbounded)")
        if any(weight < 1 for weight in self.hil.qos_weights):
            raise ValueError("qos_weights must be positive integers")
        if self.fil.placement not in ("rotate", "banded"):
            raise ValueError(f"unknown placement {self.fil.placement!r}")
        if self.logical_pages < 1:
            raise ValueError("device too small for its overprovision ratio")

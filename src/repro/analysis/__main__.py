"""CLI for the simulation-safety analyzer.

Usage::

    python -m repro.analysis lint [PATH ...] [--json] [--show-suppressed]
                                  [--baseline FILE] [--changed [REF]]
                                  [--exclude FRAGMENT ...]
    python -m repro.analysis rules

``lint`` exits 0 when every finding is suppressed (each suppression must
carry a reason), 1 otherwise — CI gates on exactly this
(docs/ANALYSIS.md).  With no paths it lints ``src/repro`` relative to
the current directory, falling back to the installed package location.

``--changed [REF]`` scopes *reporting* to files changed versus a git
ref (default ``HEAD``); the whole project is still parsed so the
cross-file analyses keep their precision.  Outside a git checkout it
degrades to a full run.  ``--baseline FILE`` applies an adoption
baseline (:mod:`repro.analysis.baseline`); ``--exclude`` drops paths
containing a fragment (e.g. lint fixtures).

``--json`` emits the versioned ``repro.analysis/1`` document: a single
object with ``schema``, sorted ``findings`` (rule, file:line, message,
witness chain, suppression state) and a ``summary``; key order is
byte-stable (``sort_keys``) so reports diff cleanly across runs.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Set

from repro.analysis.baseline import Baseline
from repro.analysis.findings import FindingSet
from repro.analysis.registry import (
    all_project_rules,
    all_rules,
    iter_python_files,
    lint_paths,
)

#: version tag of the --json document; bump on breaking shape changes
JSON_SCHEMA = "repro.analysis/1"


def _default_paths() -> List[str]:
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    import repro
    return [os.path.dirname(os.path.abspath(repro.__file__))]


def changed_files(ref: str) -> Optional[Set[str]]:
    """Files changed vs ``ref`` (committed + worktree), or None when
    not in a git checkout (callers fall back to a full run)."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return {line.strip() for line in proc.stdout.splitlines()
            if line.strip()}


def _report_scope(paths: List[str], ref: str,
                  exclude: List[str]) -> Optional[Set[str]]:
    """The ``report_only`` set for ``--changed``: linted files that are
    also changed vs ``ref`` (path-normalized)."""
    changed = changed_files(ref)
    if changed is None:
        print("simlint: not a git checkout; --changed ignored",
              file=sys.stderr)
        return None
    normalized_changed = {os.path.normpath(p) for p in changed}
    return {candidate for candidate in iter_python_files(paths, exclude)
            if os.path.normpath(candidate) in normalized_changed}


def _print_text(result: FindingSet, show_suppressed: bool) -> None:
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        print(finding.format())
    counts = result.by_rule()
    if counts:
        summary = ", ".join(f"{rule_id}: {n}"
                            for rule_id, n in sorted(counts.items()))
        print(f"simlint: {len(result.unsuppressed)} finding(s) ({summary}), "
              f"{len(result.suppressed)} suppressed", file=sys.stderr)
    else:
        print(f"simlint: clean ({len(result.suppressed)} suppressed "
              "finding(s) with documented reasons)", file=sys.stderr)


def json_document(result: FindingSet) -> dict:
    """The ``repro.analysis/1`` report document (stable order)."""
    return {
        "schema": JSON_SCHEMA,
        "findings": [
            {"rule": f.rule,
             "location": f"{f.path}:{f.line}",
             "path": f.path, "line": f.line, "col": f.col,
             "message": f.message,
             "witness": list(f.witness),
             "suppressed": f.suppressed,
             "reason": f.reason}
            for f in result.findings],
        "summary": {
            "total": len(result.findings),
            "unsuppressed": len(result.unsuppressed),
            "suppressed": len(result.suppressed),
            "by_rule": result.by_rule(),
            "exit_code": result.exit_code(),
        },
    }


def _print_json(result: FindingSet) -> None:
    print(json.dumps(json_document(result), sort_keys=True))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: simulation-safety static analysis")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="lint files or directories")
    lint.add_argument("paths", nargs="*", help="files/dirs (default src/repro)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable repro.analysis/1 report")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print suppressed findings")
    lint.add_argument("--baseline", metavar="FILE",
                      help="adoption baseline file "
                           "(`RULE path[:line] -- reason` per line)")
    lint.add_argument("--changed", nargs="?", const="HEAD", metavar="REF",
                      help="report only files changed vs REF "
                           "(default HEAD); full run outside git")
    lint.add_argument("--exclude", action="append", default=[],
                      metavar="FRAGMENT",
                      help="skip paths containing FRAGMENT "
                           "(repeatable)")

    sub.add_parser("rules", help="list every rule with its rationale")

    args = parser.parse_args(argv)
    if args.command == "rules":
        for rule in all_rules():
            print(f"{rule.id} {rule.name}")
            print(f"    {rule.rationale}")
        for prule in all_project_rules():
            print(f"{prule.id} {prule.name} (whole-project)")
            print(f"    {prule.rationale}")
        return 0

    paths = args.paths or _default_paths()
    report_only: Optional[Set[str]] = None
    if args.changed is not None:
        report_only = _report_scope(paths, args.changed, args.exclude)
        if report_only is not None and not report_only:
            print("simlint: no linted files changed vs "
                  f"{args.changed}; nothing to do", file=sys.stderr)
            return 0

    baseline = Baseline.load(args.baseline) if args.baseline else None
    result = lint_paths(paths, baseline=baseline, exclude=args.exclude,
                        report_only=report_only)
    if args.as_json:
        _print_json(result)
    else:
        _print_text(result, args.show_suppressed)
    return result.exit_code()


if __name__ == "__main__":
    raise SystemExit(main())

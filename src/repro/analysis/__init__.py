"""Result rendering and comparison utilities."""

from repro.analysis.tables import format_series, format_table
from repro.analysis.featurematrix import FEATURES, SIMULATOR_FEATURES, feature_table

__all__ = ["format_table", "format_series", "FEATURES",
           "SIMULATOR_FEATURES", "feature_table"]

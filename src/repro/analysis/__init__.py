"""Analysis tools: result rendering, simlint, and the runtime sanitizer.

Two halves live here:

* result-side utilities used by the experiments (``tables``,
  ``featurematrix``);
* the simulation-safety toolchain (docs/ANALYSIS.md): **simlint**, an
  AST linter encoding the simulator's determinism/resource invariants
  (``python -m repro.analysis lint``), its clone-consistency check for
  the engine's inlined hot loops, and **SimSanitizer**, the opt-in
  observe-only runtime checker (``REPRO_SANITIZE=1`` or
  :func:`enable_sanitizer`).
"""

from repro.analysis.featurematrix import FEATURES, SIMULATOR_FEATURES, feature_table
from repro.analysis.findings import Finding, FindingSet
from repro.analysis.registry import all_rules, lint_paths, lint_source
from repro.analysis.sanitizer import (
    SanitizerError,
    SimSanitizer,
    Violation,
    all_violations,
    disable_sanitizer,
    enable_sanitizer,
    sanitizer_enabled,
    sanitizer_for,
    sanitizers,
)
from repro.analysis.tables import format_series, format_table

__all__ = [
    "format_table", "format_series", "FEATURES",
    "SIMULATOR_FEATURES", "feature_table",
    "Finding", "FindingSet", "all_rules", "lint_paths", "lint_source",
    "SimSanitizer", "SanitizerError", "Violation",
    "enable_sanitizer", "disable_sanitizer", "sanitizer_enabled",
    "sanitizer_for", "sanitizers", "all_violations",
]

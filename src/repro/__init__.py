"""Amber (SimpleSSD 2.0) reproduction.

A full-system SSD simulation framework in Python: detailed models of all
SSD resources (embedded cores, internal DRAM, multi-channel flash, full
firmware stack) co-simulated with a host system (CPUs, memory, buses, OS
storage stack) across SATA, UFS, NVMe and OCSSD interfaces.

Quick start::

    from repro.core import FullSystem, FioJob, presets

    system = FullSystem(device=presets.intel750(), interface="nvme")
    result = system.run_fio(FioJob(rw="randread", bs=4096, iodepth=16,
                                   total_ios=2000))
    print(result.bandwidth_mbps, result.latency.mean_us())
"""

__version__ = "2.0.0"

"""The simlint rule registry and lint driver.

Two kinds of rules register here:

* **per-file rules** (:func:`rule`) — ``(SourceFile) -> iterator of
  (node_or_line, col, message)``; pragmatic single-module AST checks.
  They live in :mod:`repro.analysis.rules`.
* **project rules** (:func:`project_rule`) — ``(Project) -> iterator of
  ProjectSite``; whole-program dataflow checks that see every module at
  once (call graph, unit lattice, taint, lock order).  They live in
  :mod:`repro.analysis.flow`.

The driver (:func:`lint_source` / :func:`lint_paths`) parses each file
once, runs both rule families, applies the per-line suppressions from
:mod:`repro.analysis.findings` and finally the adoption baseline from
:mod:`repro.analysis.baseline` when one is given.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.findings import (
    META_RULE,
    Finding,
    FindingSet,
    Suppression,
    parse_suppressions,
)

#: what a per-file rule yields: (AST node or 1-based line, column, message)
Site = Tuple[Union[ast.AST, int], int, str]


@dataclass(frozen=True)
class ProjectSite:
    """One whole-project finding site: where, what, and how we got there.

    ``witness`` is the human-readable evidence chain — inferred units
    and their origins, the call path a tainted value travelled, the
    acquire sites forming a lock cycle — rendered one hop per entry.
    """

    path: str
    line: int
    col: int
    message: str
    witness: Tuple[str, ...] = ()


@dataclass
class SourceFile:
    """One parsed module: path, text, AST, and parsed suppressions."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Suppression]

    @classmethod
    def parse(cls, path: str, source: Optional[str] = None) -> "SourceFile":
        if source is None:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   suppressions=parse_suppressions(source))

    def functions(self) -> Iterator[ast.AST]:
        """Every function/method definition, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


@dataclass(frozen=True)
class Rule:
    """A registered per-file rule: stable ID, name, rationale, checker."""

    id: str
    name: str
    rationale: str
    check: Callable[[SourceFile], Iterable[Site]]


@dataclass(frozen=True)
class ProjectRule:
    """A registered whole-project rule."""

    id: str
    name: str
    rationale: str
    check: Callable[..., Iterable[ProjectSite]]


_RULES: Dict[str, Rule] = {}
_PROJECT_RULES: Dict[str, ProjectRule] = {}


def rule(rule_id: str, name: str,
         rationale: str) -> Callable[[Callable[[SourceFile], Iterable[Site]]],
                                     Callable[[SourceFile], Iterable[Site]]]:
    """Decorator: register ``func`` as the checker for ``rule_id``."""
    def wrap(func: Callable[[SourceFile], Iterable[Site]]
             ) -> Callable[[SourceFile], Iterable[Site]]:
        if rule_id in _RULES or rule_id in _PROJECT_RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = Rule(rule_id, name, rationale, func)
        return func
    return wrap


def project_rule(rule_id: str, name: str, rationale: str) -> Callable:
    """Decorator: register a whole-project checker for ``rule_id``."""
    def wrap(func: Callable[..., Iterable[ProjectSite]]) -> Callable:
        if rule_id in _RULES or rule_id in _PROJECT_RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _PROJECT_RULES[rule_id] = ProjectRule(rule_id, name, rationale, func)
        return func
    return wrap


def all_rules() -> List[Rule]:
    """Every per-file rule, by ID (importing ``rules`` populates them)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return [_RULES[k] for k in sorted(_RULES)]


def all_project_rules() -> List[ProjectRule]:
    """Every project rule, by ID (importing ``flow`` populates them)."""
    import repro.analysis.flow  # noqa: F401  (registration side effect)
    return [_PROJECT_RULES[k] for k in sorted(_PROJECT_RULES)]


def _site_location(site: Site) -> Tuple[int, int]:
    node, col, _msg = site
    if isinstance(node, int):
        return node, col
    return getattr(node, "lineno", 1), getattr(node, "col_offset", col)


def _apply_suppression(finding: Finding,
                       suppressions: Dict[int, Suppression]) -> Finding:
    """Mark ``finding`` suppressed when a covering directive sits on
    its line."""
    supp = suppressions.get(finding.line)
    if supp is not None and supp.covers(finding.rule):
        return Finding(rule=finding.rule, path=finding.path,
                       line=finding.line, col=finding.col,
                       message=finding.message, suppressed=True,
                       reason=supp.reason, witness=finding.witness)
    return finding


def _file_findings(src: SourceFile, rules: Sequence[Rule]) -> List[Finding]:
    """Per-file rule findings for one module, suppressions applied."""
    findings: List[Finding] = []
    for lint_rule in rules:
        for site in lint_rule.check(src):
            line, col = _site_location(site)
            findings.append(_apply_suppression(
                Finding(rule=lint_rule.id, path=src.path, line=line,
                        col=col, message=site[2]), src.suppressions))
    return findings


def _suppression_meta(src: SourceFile,
                      findings: Sequence[Finding]) -> List[Finding]:
    """SIM100 findings for bare or useless suppressions in one file."""
    meta: List[Finding] = []
    hit_lines = {f.line for f in findings
                 if f.suppressed and f.path == src.path}
    for lineno, supp in sorted(src.suppressions.items()):
        if not supp.reason:
            meta.append(Finding(
                rule=META_RULE, path=src.path, line=lineno, col=0,
                message="suppression must carry a reason "
                        "(`# simlint: disable=RULE -- why`)"))
        elif lineno not in hit_lines:
            meta.append(Finding(
                rule=META_RULE, path=src.path, line=lineno, col=0,
                message=f"useless suppression of {', '.join(supp.rules)}: "
                        "nothing to silence on this line"))
    return meta


def _project_findings(sources: Sequence[SourceFile],
                      project_rules: Sequence[ProjectRule]) -> List[Finding]:
    """Whole-project findings over ``sources``, suppressions applied."""
    if not project_rules:
        return []
    from repro.analysis.flow import Project
    project = Project([(src.path, src.tree) for src in sources])
    supp_by_path = {src.path: src.suppressions for src in sources}
    findings: List[Finding] = []
    for prule in project_rules:
        for site in prule.check(project):
            findings.append(_apply_suppression(
                Finding(rule=prule.id, path=site.path, line=site.line,
                        col=site.col, message=site.message,
                        witness=site.witness),
                supp_by_path.get(site.path, {})))
    return findings


def _sort_findings(findings: List[Finding]) -> List[Finding]:
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings


def lint_source(path: str, source: Optional[str] = None,
                rules: Optional[Iterable[Rule]] = None,
                project_rules: Optional[Iterable[ProjectRule]] = None,
                ) -> List[Finding]:
    """Lint one module; returns every finding (suppressed ones marked).

    Project rules run over a one-module project: interprocedural
    analysis still covers every flow *within* the file.
    """
    selected = list(rules) if rules is not None else all_rules()
    selected_project = list(project_rules) if project_rules is not None \
        else all_project_rules()
    try:
        src = SourceFile.parse(path, source)
    except SyntaxError as exc:
        return [Finding(rule=META_RULE, path=path, line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}")]
    findings = _file_findings(src, selected)
    findings.extend(_project_findings([src], selected_project))
    findings.extend(_suppression_meta(src, findings))
    return _sort_findings(findings)


def iter_python_files(paths: Iterable[str],
                      exclude: Sequence[str] = ()) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``*.py`` paths.

    ``exclude`` drops any path containing one of the given fragments
    (matched against the "/"-normalized path).
    """
    def excluded(path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return any(fragment in normalized for fragment in exclude)

    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        full = os.path.join(dirpath, name)
                        if not excluded(full):
                            yield full
        elif not excluded(path):
            yield path


def lint_paths(paths: Iterable[str],
               rules: Optional[Iterable[Rule]] = None,
               project_rules: Optional[Iterable[ProjectRule]] = None,
               baseline: Optional["object"] = None,
               exclude: Sequence[str] = (),
               report_only: Optional[Set[str]] = None) -> FindingSet:
    """Lint every ``*.py`` under ``paths``; returns the full finding set.

    ``report_only`` (``lint --changed``): the whole project is still
    parsed — so call graphs and summaries keep their cross-file
    precision — but findings are only *reported* for the given paths,
    and per-file rules skip unchanged modules entirely.

    ``baseline`` is a parsed :class:`repro.analysis.baseline.Baseline`;
    matching findings are marked suppressed with the entry's reason,
    and stale entries for linted files are reported as SIM100.
    """
    selected = list(rules) if rules is not None else all_rules()
    selected_project = list(project_rules) if project_rules is not None \
        else all_project_rules()

    def reported(path: str) -> bool:
        return report_only is None or path in report_only

    sources: List[SourceFile] = []
    findings: List[Finding] = []
    for filename in iter_python_files(paths, exclude=exclude):
        try:
            src = SourceFile.parse(filename)
        except SyntaxError as exc:
            if reported(filename):
                findings.append(Finding(
                    rule=META_RULE, path=filename, line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}"))
            continue
        sources.append(src)
        if reported(filename):
            findings.extend(_file_findings(src, selected))

    findings.extend(f for f in _project_findings(sources, selected_project)
                    if reported(f.path))
    for src in sources:
        if reported(src.path):
            findings.extend(_suppression_meta(src, findings))

    if baseline is not None:
        findings = baseline.apply(
            findings, linted_paths={src.path for src in sources
                                    if reported(src.path)})
    result = FindingSet()
    result.extend(_sort_findings(findings))
    return result

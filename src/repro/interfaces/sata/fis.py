"""Frame Information Structures (FIS): SATA's wire-level packets.

Every exchange on the SATA PHY is a FIS; the sizes matter because the
half-duplex link serializes them.  NCQ read/write commands use
Register H2D for the command, DMA Setup + Data FISes for payload, and
Set Device Bits for out-of-order completion notification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import List, Tuple


class FisType(enum.Enum):
    REGISTER_H2D = 0x27     # host-to-device command
    REGISTER_D2H = 0x34     # device-to-host status
    DMA_ACTIVATE = 0x39
    DMA_SETUP = 0x41
    DATA = 0x46
    BIST = 0x58
    PIO_SETUP = 0x5F
    SET_DEVICE_BITS = 0xA1  # NCQ completion notification


FIS_SIZES = {
    FisType.REGISTER_H2D: 20,
    FisType.REGISTER_D2H: 20,
    FisType.DMA_ACTIVATE: 4,
    FisType.DMA_SETUP: 28,
    FisType.DATA: 8192 + 4,   # max data FIS payload + header
    FisType.BIST: 12,
    FisType.PIO_SETUP: 20,
    FisType.SET_DEVICE_BITS: 8,
}

#: maximum payload carried by one Data FIS
DATA_FIS_PAYLOAD = 8192

_CMD_SEQ = count(1)


@dataclass
class PrdtEntry:
    """Physical Region Descriptor Table entry: one host-memory segment."""

    address: int
    nbytes: int


@dataclass
class AhciCommand:
    """One entry of the AHCI command list (32 NCQ slots)."""

    slot: int
    is_write: bool
    slba: int
    nsectors: int
    prdt: List[PrdtEntry] = field(default_factory=list)
    ncq_tag: int = 0
    seq: int = field(default_factory=lambda: next(_CMD_SEQ))

    @property
    def nbytes(self) -> int:
        return self.nsectors * 512

    def data_fis_count(self) -> int:
        return max(1, -(-self.nbytes // DATA_FIS_PAYLOAD))


def prdt_for(address: int, nbytes: int,
             segment: int = 4096) -> List[PrdtEntry]:
    """Build a PRDT covering a buffer in page-sized segments."""
    entries = []
    offset = 0
    while offset < nbytes:
        take = min(segment, nbytes - offset)
        entries.append(PrdtEntry(address + offset, take))
        offset += take
    return entries

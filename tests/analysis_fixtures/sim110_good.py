"""SIM110 fixture: simulation code that keeps the wall clock contained.

Timestamps come from ``sim.now``; the one display-only wall read is
routed through the journal's blessed accessor, so no raw clock call
appears outside the designated modules.
"""

from repro.obs.journal import wall_now


def measure_step(sim):
    started_ns = sim.now
    sim.step()
    return sim.now - started_ns


def heartbeat_age(last_beat_wall_ts):
    return wall_now() - last_beat_wall_ts

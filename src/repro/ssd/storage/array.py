"""Flash cell-array state: page lifecycle, in-order programming, wear.

The array enforces the physical constraints the paper describes:
erase-before-write (a page can only be programmed when FREE), per-page
reads/writes vs per-block erases, and strictly in-order page programming
within a block (MLC/TLC interference rule).
"""

from __future__ import annotations

import enum
from typing import Iterator, List

from repro.ssd.config import FlashGeometry
from repro.ssd.storage.address import AddressMapper


class PageState(enum.IntEnum):
    FREE = 0
    VALID = 1
    INVALID = 2


class BlockState:
    """State of one physical block within a parallel unit."""

    __slots__ = ("index", "next_page", "valid_count", "erase_count",
                 "_valid_bits", "_programmed_bits", "last_write_time")

    def __init__(self, index: int) -> None:
        self.index = index
        self.next_page = 0          # in-order write pointer
        self.valid_count = 0
        self.erase_count = 0
        self._valid_bits = 0        # bit i set => page i VALID
        self._programmed_bits = 0   # bit i set => page i programmed
        self.last_write_time = 0    # for cost-benefit GC "age"

    def page_state(self, page: int) -> PageState:
        if not self._programmed_bits >> page & 1:
            return PageState.FREE
        if self._valid_bits >> page & 1:
            return PageState.VALID
        return PageState.INVALID

    def program(self, page: int, now: int) -> None:
        if page != self.next_page:
            raise RuntimeError(
                f"out-of-order program: block {self.index} expects page "
                f"{self.next_page}, got {page}")
        self._programmed_bits |= 1 << page
        self._valid_bits |= 1 << page
        self.next_page += 1
        self.valid_count += 1
        self.last_write_time = now

    def invalidate(self, page: int) -> None:
        if not self._programmed_bits >> page & 1:
            raise RuntimeError(f"invalidate of FREE page {page}")
        if not self._valid_bits >> page & 1:
            raise RuntimeError(f"double invalidate of page {page}")
        self._valid_bits &= ~(1 << page)
        self.valid_count -= 1

    def erase(self) -> None:
        self.next_page = 0
        self.valid_count = 0
        self._valid_bits = 0
        self._programmed_bits = 0
        self.erase_count += 1

    def valid_pages(self) -> Iterator[int]:
        bits = self._valid_bits
        page = 0
        while bits:
            if bits & 1:
                yield page
            bits >>= 1
            page += 1

    @property
    def is_full(self) -> bool:
        return self.next_page >= 0 and self._programmed_bits != 0

    def is_fully_programmed(self, pages_per_block: int) -> bool:
        return self.next_page >= pages_per_block


class FlashArray:
    """All block states, organised per parallel unit (die-plane)."""

    def __init__(self, geometry: FlashGeometry) -> None:
        self.geometry = geometry
        self.mapper = AddressMapper(geometry)
        self._blocks: List[List[BlockState]] = [
            [BlockState(b) for b in range(geometry.blocks_per_plane)]
            for _ in range(geometry.parallel_units)
        ]
        self.total_programs = 0
        self.total_erases = 0

    def block(self, unit: int, block: int) -> BlockState:
        return self._blocks[unit][block]

    def blocks_of_unit(self, unit: int) -> List[BlockState]:
        return self._blocks[unit]

    def page_state(self, ppn: int) -> PageState:
        unit = self.mapper.unit_of_ppn(ppn)
        block = self.mapper.block_of_ppn(ppn)
        page = self.mapper.page_of_ppn(ppn)
        return self._blocks[unit][block].page_state(page)

    def program_ppn(self, ppn: int, now: int) -> None:
        unit = self.mapper.unit_of_ppn(ppn)
        block = self.mapper.block_of_ppn(ppn)
        page = self.mapper.page_of_ppn(ppn)
        self._blocks[unit][block].program(page, now)
        self.total_programs += 1

    def invalidate_ppn(self, ppn: int) -> None:
        unit = self.mapper.unit_of_ppn(ppn)
        block = self.mapper.block_of_ppn(ppn)
        page = self.mapper.page_of_ppn(ppn)
        self._blocks[unit][block].invalidate(page)

    def erase_block(self, unit: int, block: int) -> None:
        state = self._blocks[unit][block]
        if state.valid_count != 0:
            raise RuntimeError(
                f"erasing block {block} of unit {unit} with "
                f"{state.valid_count} valid pages would lose data")
        state.erase()
        self.total_erases += 1

    def erase_counts(self) -> List[int]:
        return [blk.erase_count for unit in self._blocks for blk in unit]

    def wear_spread(self) -> int:
        counts = self.erase_counts()
        return max(counts) - min(counts) if counts else 0

    def valid_page_total(self) -> int:
        return sum(blk.valid_count for unit in self._blocks for blk in unit)

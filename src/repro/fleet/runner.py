"""The fleet runner: execute a sweep's jobs across worker processes.

Determinism contract (pinned by ``tests/test_fleet.py``):

* every job's RNG seed derives from its config hash
  (:func:`repro.fleet.spec.derive_seed`) — never from worker identity,
  scheduling order, pids or the clock — so a job computes the same
  result whichever worker runs it, whenever;
* results land in the content-addressed store keyed by hash, so
  completion order (which *does* vary with ``--jobs``) can never leak
  into the merged output — reports read the store in sorted-hash order;
* therefore a 1-worker and an N-worker run of the same spec produce
  byte-identical stores and byte-identical merged reports.

``resume=True`` skips any job whose hash already has a stored result,
which is also what makes a killed overnight sweep restartable: rerun
the same command and only the missing configurations execute.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fleet.spec import Job, SweepSpec, derive_seed
from repro.fleet.store import ResultStore


@dataclass
class RunSummary:
    """What one ``run_sweep`` invocation planned, skipped and executed."""

    planned: int = 0
    skipped: List[str] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        """JSON-ready counts plus the executed/skipped hash lists."""
        return {"planned": self.planned, "executed": sorted(self.executed),
                "skipped": sorted(self.skipped)}


def run_one_job(job: Job) -> Tuple[str, Dict]:
    """Execute a single planned job; the unit of work a worker runs.

    Module-level (not a closure) so it pickles under any multiprocessing
    start method.  The scenario seed comes from the job's config hash —
    simlint's SIM109 rule guards this property for every worker entry
    point in the tree.
    """
    from repro.fleet.scenarios import run_scenario
    seed = derive_seed(job.config_hash)
    return job.config_hash, run_scenario(job.params, seed)


def run_sweep(spec: SweepSpec, store: ResultStore, jobs: int = 1,
              resume: bool = True,
              progress: Optional[Callable[[str], None]] = None) -> RunSummary:
    """Run every job of ``spec`` into ``store``; returns the summary.

    ``jobs=1`` executes inline in this process (no pool), in
    sorted-hash order.  ``jobs>1`` fans out over a
    ``ProcessPoolExecutor``; completion order is nondeterministic but
    harmless (see module doc).  ``resume=False`` re-executes and
    overwrites even configurations that already have results.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    summary = RunSummary()
    planned = sorted(spec.expand(), key=lambda job: job.config_hash)
    summary.planned = len(planned)
    pending: List[Job] = []
    for job in planned:
        if resume and store.has(job.config_hash):
            summary.skipped.append(job.config_hash)
        else:
            pending.append(job)

    def note(message: str) -> None:
        """Forward a progress line to the caller's callback, if any."""
        if progress is not None:
            progress(message)

    note(f"{spec.name}: {summary.planned} planned, "
         f"{len(summary.skipped)} cached, {len(pending)} to run "
         f"({jobs} worker{'s' if jobs != 1 else ''})")

    if jobs == 1 or len(pending) <= 1:
        for job in pending:
            job_hash, result = run_one_job(job)
            store.put(job_hash, job.params, result)
            summary.executed.append(job_hash)
            note(f"done {job_hash[:12]} "
                 f"({len(summary.executed)}/{len(pending)})")
        return summary

    by_hash = {job.config_hash: job for job in pending}
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {pool.submit(run_one_job, job): job for job in pending}
        for future in as_completed(futures):
            job_hash, result = future.result()
            store.put(job_hash, by_hash[job_hash].params, result)
            summary.executed.append(job_hash)
            note(f"done {job_hash[:12]} "
                 f"({len(summary.executed)}/{len(pending)})")
    return summary


def sweep_status(spec: SweepSpec, store: ResultStore) -> Dict:
    """Completion status of a spec against a store (for ``status``)."""
    planned = sorted(spec.expand(), key=lambda job: job.config_hash)
    done = [job.config_hash for job in planned if store.has(job.config_hash)]
    missing = [job.config_hash for job in planned
               if not store.has(job.config_hash)]
    return {"spec": spec.name, "planned": len(planned), "done": len(done),
            "missing": missing}

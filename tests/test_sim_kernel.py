"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    PriorityStore,
    Resource,
    Simulator,
    Store,
)
from repro.sim.engine import EmptySchedule


@pytest.fixture
def sim():
    return Simulator()


class TestEventLoop:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_schedule_runs_callback_at_delay(self, sim):
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(50, lambda: order.append("b"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(99, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, sim):
        order = []
        for tag in range(10):
            sim.schedule(5, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_run_until_stops_clock(self, sim):
        sim.schedule(1000, lambda: None)
        sim.run(until=500)
        assert sim.now == 500
        sim.run()
        assert sim.now == 1000

    def test_step_on_empty_raises(self, sim):
        with pytest.raises(EmptySchedule):
            sim.step()

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_run_until_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=5)

    def test_events_processed_counter(self, sim):
        for _ in range(7):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callback_after_processed_still_runs(self, sim):
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [7]

    def test_timeout_value(self, sim):
        def proc():
            value = yield sim.timeout(10, value="done")
            return value

        assert sim.run_process(proc()) == "done"
        assert sim.now == 10

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-5)


class TestProcess:
    def test_sequential_timeouts_accumulate(self, sim):
        marks = []

        def proc():
            yield sim.timeout(10)
            marks.append(sim.now)
            yield sim.timeout(25)
            marks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert marks == [10, 35]

    def test_process_return_value(self, sim):
        def child():
            yield sim.timeout(5)
            return "payload"

        def parent():
            result = yield sim.process(child())
            return result

        assert sim.run_process(parent()) == "payload"

    def test_exception_propagates_to_run_process(self, sim):
        def bad():
            yield sim.timeout(1)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            sim.run_process(bad())

    def test_failed_event_raises_inside_process(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        p = sim.process(proc())
        ev.fail(RuntimeError("dead"))
        sim.run()
        assert p.value == "caught dead"

    def test_yield_non_event_raises(self, sim):
        def proc():
            yield 123

        with pytest.raises(TypeError):
            sim.run_process(proc())

    def test_interrupt_wakes_waiter(self, sim):
        def sleeper():
            try:
                yield sim.timeout(10_000)
                return "slept"
            except Interrupt as intr:
                return f"interrupted:{intr.cause}"

        p = sim.process(sleeper())
        sim.schedule(50, p.interrupt, "wakeup")
        sim.run()
        assert p.value == "interrupted:wakeup"
        assert sim.now < 10_000 or p.processed

    def test_interrupt_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(1)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_two_processes_interleave(self, sim):
        trace = []

        def ticker(name, period):
            for _ in range(3):
                yield sim.timeout(period)
                trace.append((name, sim.now))

        sim.process(ticker("a", 10))
        sim.process(ticker("b", 15))
        sim.run()
        # At t=30 both fire; b's timeout was enqueued earlier (t=15 vs t=20)
        # so FIFO tie-breaking runs b first.
        assert trace == [("a", 10), ("b", 15), ("a", 20), ("b", 30),
                         ("a", 30), ("b", 45)]


class TestConditions:
    def test_all_of_waits_for_every_event(self, sim):
        def proc():
            results = yield AllOf(sim, [sim.timeout(10, "x"), sim.timeout(30, "y")])
            return (sim.now, sorted(results))

        assert sim.run_process(proc()) == (30, ["x", "y"])

    def test_any_of_fires_on_first(self, sim):
        def proc():
            result = yield AnyOf(sim, [sim.timeout(10, "fast"), sim.timeout(30, "slow")])
            return (sim.now, result)

        assert sim.run_process(proc()) == (10, "fast")

    def test_all_of_empty_fires_immediately(self, sim):
        def proc():
            yield AllOf(sim, [])
            return sim.now

        assert sim.run_process(proc()) == 0

    def test_all_of_propagates_failure(self, sim):
        ev = sim.event()

        def proc():
            yield AllOf(sim, [sim.timeout(5), ev])

        p = sim.process(proc())
        ev.fail(KeyError("gone"))
        sim.run()
        assert not p.ok
        assert isinstance(p.value, KeyError)


class TestResource:
    def test_serializes_access(self, sim):
        res = Resource(sim, capacity=1)
        spans = []

        def worker(hold):
            yield res.acquire()
            start = sim.now
            yield sim.timeout(hold)
            res.release()
            spans.append((start, sim.now))

        sim.process(worker(10))
        sim.process(worker(10))
        sim.run()
        assert spans == [(0, 10), (10, 20)]

    def test_capacity_two_overlaps(self, sim):
        res = Resource(sim, capacity=2)
        done = []

        def worker():
            yield res.acquire()
            yield sim.timeout(10)
            res.release()
            done.append(sim.now)

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert done == [10, 10, 20]

    def test_release_idle_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_utilization_tracks_busy_time(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            yield res.acquire()
            yield sim.timeout(40)
            res.release()
            yield sim.timeout(60)

        sim.process(worker())
        sim.run()
        assert res.busy_time() == 40
        assert res.utilization() == pytest.approx(0.4)

    def test_fifo_granting(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(tag):
            yield res.acquire()
            order.append(tag)
            yield sim.timeout(1)
            res.release()

        for tag in range(5):
            sim.process(worker(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def proc():
            yield store.put("item")
            value = yield store.get()
            return value

        assert sim.run_process(proc()) == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            value = yield store.get()
            got.append((sim.now, value))

        def producer():
            yield sim.timeout(100)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(100, "late")]

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        out = []

        def consumer():
            for _ in range(5):
                out.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            timeline.append(("put-a", sim.now))
            yield store.put("b")
            timeline.append(("put-b", sim.now))

        def consumer():
            yield sim.timeout(50)
            item = yield store.get()
            timeline.append((f"got-{item}", sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put-a", 0) in timeline
        assert ("put-b", 50) in timeline

    def test_try_put_respects_capacity(self, sim):
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)

    def test_try_get_empty(self, sim):
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None


class TestPriorityStore:
    def test_orders_by_priority(self, sim):
        store = PriorityStore(sim)
        store.put("low", priority=10)
        store.put("high", priority=1)
        store.put("mid", priority=5)
        out = []

        def consumer():
            for _ in range(3):
                out.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert out == ["high", "mid", "low"]

    def test_ties_break_fifo(self, sim):
        store = PriorityStore(sim)
        for i in range(4):
            store.put(f"item{i}", priority=0)
        out = []

        def consumer():
            for _ in range(4):
                out.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert out == ["item0", "item1", "item2", "item3"]

    def test_waiting_getter_served_on_put(self, sim):
        store = PriorityStore(sim)
        got = []

        def consumer():
            got.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        store.put("x", priority=3)
        sim.run()
        assert got == ["x"]

"""SIM202 fixture: values changing units as they flow."""


def mislabel(nbytes):
    lat_ns = nbytes                 # bytes stored under an ns name
    return lat_ns


def wait(sim, delay_ns):
    yield sim.timeout(delay_ns)


def caller(sim, delay_us):
    yield from wait(sim, delay_us)  # us passed for an ns parameter

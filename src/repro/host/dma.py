"""The DMA engine Amber adds to gem5 (Section III-B, "data transfer
emulation").

Host drivers/controllers never move payloads themselves: they build a
*pointer list* (PRDT for SATA/UFS, PRP or SGL for NVMe) whose entries
name system-memory pages.  The DMA engine walks the list and moves each
page between host DRAM and the device across the system bus and the
physical link.

The walk's granularity depends on the host CPU model, exactly as the
paper describes: under a functional (atomic) CPU the whole request is
aggregated into one transfer task; under timing CPUs every pointer-list
entry is a separate timed bus/link/memory transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.host.bus import SystemBus
from repro.host.cpu import HostCpu
from repro.host.memory import HostMemory


@dataclass
class PointerList:
    """A scatter list of (host_address, length) system-memory segments."""

    entries: List[Tuple[int, int]] = field(default_factory=list)

    @classmethod
    def for_buffer(cls, base_address: int, nbytes: int,
                   page_size: int = 4096) -> "PointerList":
        """Build page-granular entries covering a virtually-contiguous buffer."""
        entries = []
        offset = 0
        while offset < nbytes:
            take = min(page_size - (base_address + offset) % page_size,
                       nbytes - offset)
            entries.append((base_address + offset, take))
            offset += take
        return cls(entries)

    @property
    def total_bytes(self) -> int:
        return sum(length for _addr, length in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class DmaEngine:
    def __init__(self, sim, cpu: HostCpu, memory: HostMemory,
                 bus: SystemBus, link) -> None:
        self.sim = sim
        self.cpu = cpu
        self.memory = memory
        self.bus = bus
        self.link = link
        self.transfers = 0
        self.bytes_to_device = 0
        self.bytes_to_host = 0

    def _segments(self, pointers: PointerList):
        if self.cpu.model.is_functional:
            # functional CPU: aggregate the whole request into one task
            return [(pointers.entries[0][0] if pointers.entries else 0,
                     pointers.total_bytes)]
        return pointers.entries

    def to_device(self, pointers: PointerList, track: int = 0):
        """Process: pull host pages and push them down the link."""
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span("dma.to_device", track,
                             bytes=pointers.total_bytes):
                for _address, length in self._segments(pointers):
                    yield from self.memory.access(length)
                    yield from self.bus.transfer(length)
                    yield from self.link.send(length)
        else:
            for _address, length in self._segments(pointers):
                yield from self.memory.access(length)
                yield from self.bus.transfer(length)
                yield from self.link.send(length)
        self.transfers += 1
        self.bytes_to_device += pointers.total_bytes

    def to_host(self, pointers: PointerList, track: int = 0):
        """Process: pull data up the link and scatter it into host pages."""
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span("dma.to_host", track,
                             bytes=pointers.total_bytes):
                for _address, length in self._segments(pointers):
                    yield from self.link.receive(length)
                    yield from self.bus.transfer(length)
                    yield from self.memory.access(length, write=True)
        else:
            for _address, length in self._segments(pointers):
                yield from self.link.receive(length)
                yield from self.bus.transfer(length)
                yield from self.memory.access(length, write=True)
        self.transfers += 1
        self.bytes_to_host += pointers.total_bytes

    def control_to_device(self, nbytes: int):
        """Process: small control structure fetch (SQE, FIS, UTRD...)."""
        yield from self.memory.access(nbytes)
        yield from self.bus.transfer(nbytes)
        yield from self.link.send(nbytes)

    def control_to_host(self, nbytes: int):
        """Process: completion/interrupt structure write (CQE, MSI vector)."""
        yield from self.link.receive(nbytes)
        yield from self.bus.transfer(nbytes)
        yield from self.memory.access(nbytes, write=True)

#!/usr/bin/env python3
"""Power and energy study: where the watts go inside an SSD.

Amber's claim is that power questions need all-resource modeling: the
embedded CPU, internal DRAM and NAND respond differently to workload
shape.  This example measures the component breakdown across workloads
and derives energy-per-gigabyte — then shows DRAM self-refresh kicking
in on an idle device.
"""

from repro.core import FioJob, FullSystem, presets


def run_workload(rw: str, bs: int, depth: int = 16, n_ios: int = 1200):
    system = FullSystem(device=presets.intel750(), interface="nvme")
    system.precondition()
    result = system.run_fio(FioJob(rw=rw, bs=bs, iodepth=depth,
                                   total_ios=n_ios))
    return result, system


def main() -> None:
    print("SSD power breakdown by workload (Intel 750 preset)")
    print(f"{'workload':<16} {'MB/s':>7} {'CPU W':>6} {'DRAM W':>7} "
          f"{'NAND W':>7} {'J/GB':>7}")
    print("-" * 56)
    for rw, bs in (("randread", 4096), ("read", 131072),
                   ("randwrite", 4096), ("write", 131072)):
        result, _system = run_workload(rw, bs)
        power = result.ssd_power
        elapsed_s = result.elapsed_ns / 1e9
        energy_j = power["total"] * elapsed_s
        gb = result.total_bytes / (1 << 30)
        label = f"{rw} {bs // 1024}K"
        print(f"{label:<16} {result.bandwidth_mbps:>7.0f} "
              f"{power['cpu']:>6.2f} {power['dram']:>7.2f} "
              f"{power['nand']:>7.2f} {energy_j / gb:>7.2f}")

    # idle behaviour: after I/O stops, the internal DRAM self-refreshes
    result, system = run_workload("randread", 4096, n_ios=400)
    system.run_process(_idle(system), until=system.sim.now + 50_000_000)
    fraction = system.ssd.dram.self_refresh_fraction()
    print(f"\nAfter 50 ms idle, internal DRAM spent "
          f"{fraction * 100:.0f}% of total time in self-refresh")
    print("\nReading: small random I/O is CPU-bound (firmware work per")
    print("byte is highest); large sequential I/O moves the energy into")
    print("NAND and the channel transfers.")


def _idle(system):
    yield system.sim.timeout(50_000_000)


if __name__ == "__main__":
    main()

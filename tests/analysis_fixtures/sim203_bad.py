"""SIM203 fixture: hand-rolled byte->time math with a bare literal."""


def drain(sim, nbytes):
    yield sim.timeout(nbytes * 3)       # ad-hoc "bandwidth" constant


def settle(sim, nbytes):
    total_ns = nbytes // 2              # raw literal, lands in an ns name
    yield sim.timeout(total_ns)

"""SIM104 fixture: every wait primitive is yielded; processes yield."""


def worker(sim, mailbox):
    yield sim.timeout(5)
    item = yield mailbox.get()
    return item


def boot(sim, mailbox):
    sim.process(worker(sim, mailbox))

"""ICL cache behaviour: associativity, replacement, RMW, pass-through."""

import pytest

from repro.sim import Simulator
from repro.ssd.config import CacheConfig, FTLConfig
from repro.ssd.device import SSD

from tests.conftest import tiny_ssd_config


def build(sim, **overrides):
    return SSD(sim, tiny_ssd_config(**overrides), data_emulation=False)


def line_sectors(ssd):
    return ssd.config.superpage_size // 512


class TestAssociativity:
    def test_direct_mapped_conflicts_evict(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(associativity="direct", n_sets=4,
                                           readahead=False))
        sectors = line_sectors(ssd)

        def scenario():
            # lines 0 and 4 map to the same set in a 4-set direct cache
            yield from ssd.read(0, sectors)
            yield from ssd.read(4 * sectors, sectors)
            yield from ssd.read(0, sectors)   # evicted: miss again

        sim.run_process(scenario())
        assert ssd.icl.read_misses == 3
        assert ssd.icl.read_hits == 0

    def test_set_associative_keeps_both_ways(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(associativity="set", n_sets=4,
                                           ways=2, readahead=False))
        sectors = line_sectors(ssd)

        def scenario():
            yield from ssd.read(0, sectors)
            yield from ssd.read(4 * sectors, sectors)   # same set, way 2
            yield from ssd.read(0, sectors)             # still cached

        sim.run_process(scenario())
        assert ssd.icl.read_hits == 1

    def test_fully_associative_uses_whole_capacity(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(associativity="full",
                                           readahead=False))
        sectors = line_sectors(ssd)

        def scenario():
            for line in range(6):
                yield from ssd.read(line * sectors, sectors)
            for line in range(6):
                yield from ssd.read(line * sectors, sectors)

        sim.run_process(scenario())
        assert ssd.icl.read_hits == 6


class TestReplacement:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_policies_run_and_bound_capacity(self, policy):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(replacement=policy,
                                           readahead=False))
        sectors = line_sectors(ssd)
        n_lines = ssd.icl.capacity_lines + 8

        def scenario():
            for line in range(n_lines):
                yield from ssd.read((line % (n_lines)) * sectors, sectors)

        sim.run_process(scenario())
        assert ssd.icl.cached_line_count() <= ssd.icl.capacity_lines

    def test_lru_keeps_recently_used(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(replacement="lru",
                                           readahead=False))
        sectors = line_sectors(ssd)
        capacity = ssd.icl.capacity_lines

        def scenario():
            for line in range(capacity):
                yield from ssd.read(line * sectors, sectors)
            # touch line 0, then overflow by one: line 1 (LRU) must go
            yield from ssd.read(0, sectors)
            yield from ssd.read(capacity * sectors, sectors)
            hits_before = ssd.icl.read_hits
            yield from ssd.read(0, sectors)            # still cached
            assert ssd.icl.read_hits == hits_before + 1

        sim.run_process(scenario())


class TestReadModifyWrite:
    def test_subpage_write_triggers_rmw_on_flush(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(readahead=False))
        sectors_per_page = ssd.config.geometry.page_size // 512

        del sectors_per_page
        # the page exists on flash but is NOT cached (preconditioned)
        ssd.precondition_sequential()

        def scenario():
            yield from ssd.write(0, 1)    # half of a 2 KB page
            yield from ssd.flush()

        sim.run_process(scenario())
        assert ssd.icl.rmw_fetches >= 1
        assert ssd.backend.reads_issued >= 1

    def test_fullpage_write_avoids_rmw(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(readahead=False))
        sectors_per_page = ssd.config.geometry.page_size // 512

        def scenario():
            yield from ssd.write(0, sectors_per_page)
            yield from ssd.flush()

        sim.run_process(scenario())
        assert ssd.icl.rmw_fetches == 0

    def test_hashmap_off_forces_whole_line_flush(self):
        sim = Simulator()
        ssd = build(sim,
                    cache=CacheConfig(readahead=False),
                    ftl=FTLConfig(partial_update_hashmap=False,
                                  overprovision=0.25))
        sectors_per_page = ssd.config.geometry.page_size // 512

        def scenario():
            yield from ssd.write(0, sectors_per_page)   # one page of a line
            yield from ssd.flush()

        sim.run_process(scenario())
        # the whole superpage (4 pages in the tiny config) was written
        assert ssd.backend.programs_issued == ssd.config.superpage_pages

    def test_hashmap_on_writes_only_dirty_page(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(readahead=False))
        sectors_per_page = ssd.config.geometry.page_size // 512

        def scenario():
            yield from ssd.write(0, sectors_per_page)
            yield from ssd.flush()

        sim.run_process(scenario())
        assert ssd.backend.programs_issued == 1
        assert len(ssd.ftl.mapping.partial_hashmap) == 1


class TestPassThrough:
    def test_disabled_cache_goes_straight_to_flash(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(enabled=False))
        sectors_per_page = ssd.config.geometry.page_size // 512

        def scenario():
            yield from ssd.write(0, sectors_per_page)
            yield from ssd.read(0, sectors_per_page)

        sim.run_process(scenario())
        assert ssd.icl.writes_absorbed == 0
        assert ssd.backend.programs_issued >= 1
        assert ssd.backend.reads_issued >= 1

    def test_disabled_cache_subpage_write_rmw(self):
        sim = Simulator()
        ssd = build(sim, cache=CacheConfig(enabled=False))

        def scenario():
            yield from ssd.write(0, 1)

        sim.run_process(scenario())
        assert ssd.icl.rmw_fetches >= 1

"""SIM102 fixture: draws from process-global, wall-clock-seeded RNGs."""

import random
from random import randint


def jitter_ns():
    return random.uniform(0, 50)


def pick_victim(blocks):
    return blocks[randint(0, len(blocks) - 1)]


def fresh_rng():
    return random.Random()

"""Host operating-system storage stack.

Models the software the paper executes on gem5's Linux: syscall entry,
the block layer with pluggable I/O schedulers (CFQ for kernel 4.4, BFQ
for 4.14), a page cache, and per-interface drivers including lightNVM +
pblk for OCSSD's host-side FTL.
"""

from repro.hostos.kernel import KernelProfile, kernel_4_4, kernel_4_14
from repro.hostos.iosched import BfqScheduler, CfqScheduler, NoopScheduler, make_scheduler
from repro.hostos.blocklayer import BlockLayer
from repro.hostos.pagecache import PageCache

__all__ = [
    "KernelProfile",
    "kernel_4_4",
    "kernel_4_14",
    "NoopScheduler",
    "CfqScheduler",
    "BfqScheduler",
    "make_scheduler",
    "BlockLayer",
    "PageCache",
]

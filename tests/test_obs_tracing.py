"""Tests for repro.obs: span tracing, metrics registry, exporters,
the process-wide switch, and the zero-cost-when-disabled guarantee."""

import json

import pytest

from repro.common.iorequest import IOKind, IORequest
from repro.core.system import FullSystem
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    format_breakdown,
    latency_breakdown,
    merge_spans,
    metric_snapshots,
    tracers,
    tracing_enabled,
    write_chrome_trace,
    write_metrics_csv,
)
from repro.obs.runtime import collect_metrics
from repro.sim import Simulator, TimeAverage, UtilizationTracker

from tests.conftest import tiny_ssd_config


@pytest.fixture
def traced():
    """Enable process-wide tracing for one test, always cleaning up."""
    enable_tracing()
    yield
    disable_tracing()


class _Clock:
    def __init__(self):
        self.now = 0


# -- Tracer unit behaviour ---------------------------------------------------


class TestTracer:
    def test_spans_nest_by_track(self):
        clock = _Clock()
        tracer = Tracer(clock)
        outer = tracer.begin("io.submit", 1)
        clock.now = 10
        inner = tracer.begin("flash.read", 1)
        other = tracer.begin("ftl.gc", 0)     # different track: no nesting
        clock.now = 30
        tracer.end(inner)
        clock.now = 50
        tracer.end(outer)
        tracer.end(other)
        assert inner.parent is outer
        assert outer.parent is None
        assert other.parent is None
        assert inner.depth == 1 and outer.depth == 0
        assert (inner.t_start, inner.t_end) == (10, 30)
        assert outer.duration == 50

    def test_out_of_order_end_is_safe(self):
        clock = _Clock()
        tracer = Tracer(clock)
        a = tracer.begin("a", 1)
        b = tracer.begin("b", 1)
        clock.now = 5
        tracer.end(a)               # a closes before its child b
        clock.now = 9
        tracer.end(b)
        assert a.duration == 5 and b.duration == 9
        assert tracer._open[1] == []

    def test_context_manager_closes_on_exception(self):
        clock = _Clock()
        tracer = Tracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("x", 2):
                clock.now = 7
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.t_end == 7

    def test_queries(self):
        clock = _Clock()
        tracer = Tracer(clock)
        with tracer.span("a", 1):
            clock.now = 4
        with tracer.span("b", 2):
            clock.now = 10
        assert tracer.kinds() == ["a", "b"]
        assert [s.kind for s in tracer.by_track(2)] == ["b"]
        assert tracer.durations("a") == [4]

    def test_null_tracer_records_nothing(self):
        span = NULL_TRACER.begin("anything", 42, detail=1)
        NULL_TRACER.end(span)
        with NULL_TRACER.span("more", 7):
            pass
        assert NULL_TRACER.spans == []
        assert not NULL_TRACER.enabled


# -- metrics registry --------------------------------------------------------


class TestMetricsRegistry:
    def test_register_read_and_snapshot(self):
        reg = MetricsRegistry()
        reg.register("a.b", lambda: 2.5)
        counter = reg.counter("a.count")
        counter.add(3)
        gauge = reg.gauge("c.depth")
        gauge.set(7)
        assert reg.read("a.b") == 2.5
        snap = reg.snapshot()
        assert snap == {"a.b": 2.5, "a.count": 3.0, "c.depth": 7.0}
        assert reg.snapshot("a") == {"a.b": 2.5, "a.count": 3.0}

    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.register("x", lambda: 0.0)
        with pytest.raises(ValueError):
            reg.register("x", lambda: 1.0)

    def test_scoped_prefixing(self):
        reg = MetricsRegistry()
        scope = reg.scoped("ssd.ch0")
        scope.register("util", lambda: 0.5)
        assert reg.read("ssd.ch0.util") == 0.5

    def test_reads_instruments_lazily(self, sim):
        reg = MetricsRegistry()
        avg = TimeAverage(sim, initial=2.0)
        busy = UtilizationTracker(sim)
        reg.register("avg", avg.mean)
        reg.register("busy", busy)

        def proc():
            busy.begin()
            yield sim.timeout(50)
            busy.end()
            yield sim.timeout(50)

        sim.run_process(proc())
        assert reg.read("busy") == pytest.approx(0.5)
        assert reg.read("avg") == pytest.approx(2.0)

    def test_csv_round_trip(self):
        reg = MetricsRegistry()
        reg.register("m.one", lambda: 1.0)
        reg.register("m.two", lambda: 0.25)
        lines = reg.to_csv().strip().splitlines()
        assert lines[0] == "metric,value"
        assert "m.one,1" in lines[1]


# -- exporters ---------------------------------------------------------------


class TestExport:
    def _tracer_with_spans(self):
        clock = _Clock()
        tracer = Tracer(clock)
        tracer.label = "unit"
        with tracer.span("io.submit", 3, op="READ"):
            clock.now = 4000
            with tracer.span("flash.read", 3):
                clock.now = 9000
        return tracer

    def test_chrome_trace_json_round_trip(self, tmp_path):
        tracer = self._tracer_with_spans()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), [tracer])
        assert count == 2
        trace = json.loads(path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "unit"
        by_name = {e["name"]: e for e in spans}
        # ns -> fractional µs, thread id = track
        assert by_name["io.submit"]["dur"] == pytest.approx(9.0)
        assert by_name["flash.read"]["ts"] == pytest.approx(4.0)
        assert by_name["io.submit"]["tid"] == 3
        assert by_name["io.submit"]["args"]["op"] == "READ"

    def test_latency_breakdown_percentiles(self):
        clock = _Clock()
        tracer = Tracer(clock)
        for duration in (1000, 2000, 3000, 4000):
            clock.now = 0
            span = tracer.begin("flash.read", 1)
            clock.now = duration
            tracer.end(span)
        stats = latency_breakdown(merge_spans([tracer]))["flash.read"]
        assert stats["count"] == 4
        assert stats["mean_us"] == pytest.approx(2.5)
        assert stats["p50_us"] == pytest.approx(2.5)
        assert stats["max_us"] == pytest.approx(4.0)
        table = format_breakdown({"flash.read": stats})
        assert "flash.read" in table and "p99_us" in table

    def test_open_spans_excluded_from_breakdown(self):
        tracer = Tracer(_Clock())
        tracer.begin("never.closed", 1)
        assert latency_breakdown(tracer.spans) == {}

    def test_metrics_csv(self, tmp_path):
        path = tmp_path / "metrics.csv"
        rows = write_metrics_csv(
            str(path), [("sysA", {"ssd.ch0.util": 0.5, "a": 1.0})])
        assert rows == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "system,metric,value"
        assert lines[1] == "sysA,a,1"


# -- the process-wide switch -------------------------------------------------


class TestRuntimeSwitch:
    def test_simulator_gets_live_tracer_only_when_enabled(self, traced):
        assert tracing_enabled()
        sim = Simulator()
        assert sim.tracer.enabled
        assert sim.tracer in tracers()
        disable_tracing()
        assert Simulator().tracer is NULL_TRACER

    def test_collect_metrics_noop_when_off(self):
        collect_metrics("ignored", {"x": 1.0})
        assert metric_snapshots() == []

    def test_default_is_off(self):
        assert not tracing_enabled()
        assert Simulator().tracer is NULL_TRACER


# -- full-stack integration ---------------------------------------------------


def _run_small_workload(system):
    system.precondition(0.5)        # mapped LPNs so reads reach flash

    def scenario():
        data = system.pattern_data(0, 8)
        yield from system.write(0, 8, data=data)
        yield from system.read(0, 8)
        yield from system.read(256, 8)

    system.run_process(scenario())


STACK_KINDS = {
    "nvme": {"io.submit", "os.blocklayer", "nvme.sq", "nvme.cmd",
             "hil.serve", "icl.read", "ftl.translate", "flash.read",
             "dma.to_host"},
    "sata": {"io.submit", "os.blocklayer", "ahci.submit", "ahci.complete",
             "sata.cmd", "hil.serve", "icl.read", "flash.read"},
    "ufs": {"io.submit", "os.blocklayer", "ufs.utp.submit",
            "ufs.utp.complete", "ufs.cmd", "hil.serve", "flash.read"},
    "ocssd": {"io.submit", "os.blocklayer", "ocssd.pblk.write",
              "ocssd.pblk.read"},
}


class TestFullStackTracing:
    @pytest.mark.parametrize("interface", sorted(STACK_KINDS))
    def test_span_kinds_cover_the_stack(self, interface, traced):
        system = FullSystem(device=tiny_ssd_config(), interface=interface)
        _run_small_workload(system)
        tracer = system.sim.tracer
        assert STACK_KINDS[interface] <= set(tracer.kinds())
        if interface != "ocssd":    # pblk absorbs this workload host-side
            # >= 5 distinct kinds spanning hostos -> interface -> device
            assert len(tracer.kinds()) >= 5

    def test_spans_nest_along_the_request_path(self, traced):
        system = FullSystem(device=tiny_ssd_config(), interface="nvme")
        _run_small_workload(system)
        tracer = system.sim.tracer
        # every traced host request nests under io.submit on its track
        for span in tracer.by_kind("nvme.cmd"):
            chain = set()
            node = span.parent
            while node is not None:
                chain.add(node.kind)
                node = node.parent
            assert "io.submit" in chain
        # flash work attributed to a real request sits on its track
        read_tracks = {s.track for s in tracer.by_kind("flash.read")}
        assert any(track > 0 for track in read_tracks)
        # all spans closed once the workload drained
        assert all(s.t_end is not None for s in tracer.spans)

    def test_background_flush_lands_on_track_zero(self, traced):
        system = FullSystem(device=tiny_ssd_config(), interface="nvme")

        def scenario():
            for i in range(24):
                yield from system.write(
                    i * 8, 8, data=system.pattern_data(i * 8, 8))
            yield from system.ssd.icl.flush_all()

        system.sim.process(scenario())
        system.sim.run()
        programs = system.sim.tracer.by_kind("flash.program")
        assert programs, "writes should reach flash"
        assert {s.track for s in programs} == {0}, \
            "write-back flushing is background work"

    def test_chrome_export_of_a_real_run(self, tmp_path, traced):
        system = FullSystem(device=tiny_ssd_config(), interface="nvme")
        _run_small_workload(system)
        path = tmp_path / "run.json"
        count = write_chrome_trace(str(path), tracers())
        trace = json.loads(path.read_text())
        assert count == len(
            [e for e in trace["traceEvents"] if e["ph"] == "X"])
        assert count >= 10

    def test_metrics_registry_reflects_the_run(self, tiny_config):
        system = FullSystem(device=tiny_config, interface="nvme")
        _run_small_workload(system)
        snap = system.metrics.snapshot()
        assert snap["os.block.submitted"] >= 3.0
        assert snap["ssd.flash.reads"] >= 1.0
        assert snap["ssd.hil.completed"] >= 3.0
        assert 0.0 <= snap["ssd.channel0.util"] <= 1.0
        assert snap["sim.events_processed"] > 0
        names = system.metrics.names("host.cpu")
        assert "host.cpu.core0.kernel.util" in names


# -- the zero-cost guarantee -------------------------------------------------


class TestDisabledTracingIsInvisible:
    def _run(self):
        system = FullSystem(device=tiny_ssd_config(), interface="nvme")
        _run_small_workload(system)
        return (system.sim.events_processed, system.sim.now,
                system.ssd.backend.reads_issued)

    def test_disabled_tracing_is_invisible(self):
        baseline = self._run()          # tracing off: the tier-1 state
        enable_tracing()
        try:
            traced_run = self._run()
        finally:
            disable_tracing()
        again = self._run()
        assert baseline == again, "disabled runs must be deterministic"
        assert baseline == traced_run, \
            "tracing must not perturb events or simulated time"


# -- satellite regressions ---------------------------------------------------


class TestRunProcessDeadline:
    def test_clock_reaches_deadline_when_queue_drains_early(self, sim):
        def stalls_forever():
            yield sim.event()       # never succeeds

        with pytest.raises(RuntimeError, match="deadline"):
            sim.run_process(stalls_forever(), until=5_000)
        assert sim.now == 5_000

    def test_success_keeps_completion_time(self, sim):
        def quick():
            yield sim.timeout(100)

        sim.run_process(quick(), until=10_000)
        assert sim.now == 100


class TestInstrumentMemoryBounds:
    def test_utilization_marks_are_capped(self, sim):
        tracker = UtilizationTracker(sim, max_points=32)

        def proc():
            for _ in range(200):
                tracker.begin()
                yield sim.timeout(5)
                tracker.end()
                tracker.mark()

        sim.run_process(proc())
        assert len(tracker._marks) <= 32
        # cumulative busy time survives the thinning
        assert tracker.busy_ns() == 1000

"""Tables I-IV of the paper, regenerated from the library's own state."""

from __future__ import annotations

from typing import Dict

from repro.analysis.featurematrix import feature_headers, feature_table
from repro.analysis.tables import format_table
from repro.core import presets
from repro.host.platform import mobile_platform, pc_platform
from repro.workloads.enterprise import ENTERPRISE_WORKLOADS, EnterpriseGenerator


def table1() -> Dict:
    """Table I: real-device hardware configuration."""
    return presets.table1_configuration()


def table2() -> Dict:
    """Table II: gem5 system configurations (PC + mobile)."""
    return {"PC platform": pc_platform().table_row(),
            "Mobile platform": mobile_platform().table_row()}


def table3(n_samples: int = 3000) -> Dict:
    """Table III: workload characteristics — spec vs what our generators
    actually produce (the empirical columns validate the generators)."""
    out = {}
    for name, spec in ENTERPRISE_WORKLOADS.items():
        generator = EnterpriseGenerator(spec, region_sectors=1 << 22)
        empirical = generator.sample_statistics(n_samples)
        out[name] = {"spec": spec.table_row(), "generated": empirical}
    return out


def table4() -> Dict:
    """Table IV: feature matrix across simulators."""
    return {"headers": feature_headers(), "rows": feature_table()}


def run(quick: bool = True) -> Dict:
    return {
        "table1": table1(),
        "table2": table2(),
        "table3": table3(600 if quick else 5000),
        "table4": table4(),
    }


def render(results: Dict) -> str:
    blocks = []
    t1 = results["table1"]
    rows = [[section, ", ".join(f"{k}={v}" for k, v in values.items())]
            for section, values in t1.items()]
    blocks.append(format_table(["section", "configuration"], rows,
                               "Table I: real-device hardware configuration"))

    t2 = results["table2"]
    keys = list(next(iter(t2.values())))
    rows = [[key] + [t2[platform][key] for platform in t2] for key in keys]
    blocks.append(format_table([""] + list(t2), rows,
                               "Table II: gem5 system configurations"))

    rows = []
    for name, data in results["table3"].items():
        spec, gen = data["spec"], data["generated"]
        rows.append([
            name,
            f"{spec['Avg. read length (KB)']} / {gen['avg_read_kb']:.1f}",
            f"{spec['Avg. write length (KB)']} / {gen['avg_write_kb']:.1f}",
            f"{spec['Read ratio (%)']} / {gen['read_ratio'] * 100:.0f}",
            f"{spec['Random read (%)']} / {gen['random_read'] * 100:.0f}",
            f"{spec['Random write (%)']} / {gen['random_write'] * 100:.0f}",
        ])
    blocks.append(format_table(
        ["workload", "read KB (spec/gen)", "write KB", "read %",
         "rand read %", "rand write %"], rows,
        "Table III: workload characteristics (spec vs generated)"))

    t4 = results["table4"]
    blocks.append(format_table(t4["headers"], t4["rows"],
                               "Table IV: feature comparison"))
    return "\n\n".join(blocks)

"""Shared fixtures: small SSD configurations that keep tests fast."""

import pytest

from repro.sim import Simulator
from repro.ssd.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    FlashGeometry,
    FlashTiming,
    FTLConfig,
    SSDConfig,
)


def tiny_ssd_config(**overrides) -> SSDConfig:
    """A 1 MB SSD: 2 channels x 1 package x 2 planes x 8 blocks x 16 pages."""
    base = dict(
        name="tiny",
        geometry=FlashGeometry(
            channels=2, packages_per_channel=1, dies_per_package=1,
            planes_per_die=2, blocks_per_plane=8, pages_per_block=16,
            page_size=2048),
        timing=FlashTiming(
            t_read_fast=20_000, t_read_slow=35_000,
            t_prog_fast=200_000, t_prog_slow=500_000,
            t_erase=1_000_000, channel_bus_mhz=200, t_cmd=200),
        dram=DramConfig(size=256 * 1024),
        cores=CoreConfig(n_cores=3, frequency=400_000_000),
        cache=CacheConfig(readahead_superpages=2),
        ftl=FTLConfig(overprovision=0.25, gc_threshold_free_blocks=1,
                      wear_delta_threshold=4),
    )
    base.update(overrides)
    return SSDConfig(**base)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tiny_config():
    return tiny_ssd_config()

"""Ablations of the design choices DESIGN.md calls out.

Each benchmark toggles one Section IV-C mechanism (or firmware policy)
and checks the performance consequence the paper attributes to it.
"""

import os

import pytest

from repro.core import presets
from repro.core.fio import FioJob
from repro.core.system import FullSystem
from repro.ssd.config import CacheConfig, FTLConfig, HILConfig

QUICK = os.environ.get("REPRO_BENCH_FULL", "0") != "1"
N_IOS = 500 if QUICK else 2000


def _run(device, job):
    system = FullSystem(device=device, interface="nvme")
    system.precondition()
    return system.run_fio(job), system


def _with_cache(device, **cache_kwargs):
    merged = {"fraction_of_dram": 0.5}
    merged.update(cache_kwargs)
    return device.with_overrides(cache=CacheConfig(**merged))


def test_ablation_readahead(benchmark):
    """Parallelism-aware readahead: sequential reads should benefit."""
    device_on = _with_cache(presets.intel750(), readahead=True)
    device_off = _with_cache(presets.intel750(), readahead=False)

    def both():
        job = FioJob(rw="read", bs=4096, iodepth=4, total_ios=N_IOS)
        res_on, _sys_on = _run(device_on, job)
        res_off, _sys_off = _run(device_off, job)
        return res_on, res_off

    res_on, res_off = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nreadahead on: {res_on.bandwidth_mbps:.0f} MB/s, "
          f"off: {res_off.bandwidth_mbps:.0f} MB/s")
    assert res_on.bandwidth_mbps > res_off.bandwidth_mbps
    assert res_on.ssd_stats["readaheads"] > 0
    assert res_off.ssd_stats["readaheads"] == 0


def test_ablation_partial_update_hashmap(benchmark):
    """Super-page hashmap vs naive read-modify-write on small writes."""
    base = presets.intel750().with_overrides(
        cache=CacheConfig(fraction_of_dram=0.003))  # force flush pressure

    def both():
        job = FioJob(rw="randwrite", bs=4096, iodepth=16, total_ios=N_IOS)
        res_on, sys_on = _run(base.with_overrides(
            ftl=FTLConfig(partial_update_hashmap=True,
                          gc_threshold_free_blocks=1)), job)
        res_off, sys_off = _run(base.with_overrides(
            ftl=FTLConfig(partial_update_hashmap=False,
                          gc_threshold_free_blocks=1)), job)
        return res_on, res_off

    res_on, res_off = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nhashmap on: {res_on.bandwidth_mbps:.0f} MB/s "
          f"(rmw {res_on.ssd_stats['rmw_fetches']}), "
          f"off: {res_off.bandwidth_mbps:.0f} MB/s "
          f"(rmw {res_off.ssd_stats['rmw_fetches']})")
    # without the hashmap, partial-line flushes force whole-superpage RMW
    assert res_off.ssd_stats["rmw_fetches"] > res_on.ssd_stats["rmw_fetches"]
    assert res_on.bandwidth_mbps > res_off.bandwidth_mbps


def test_ablation_gc_policy(benchmark):
    """Greedy vs cost-benefit victim selection under random overwrite."""
    from tests.conftest import tiny_ssd_config
    import random

    def run_policy(policy):
        from repro.sim import Simulator
        from repro.ssd.device import SSD
        sim = Simulator()
        config = tiny_ssd_config(ftl=FTLConfig(
            overprovision=0.25, gc_threshold_free_blocks=1,
            gc_policy=policy))
        ssd = SSD(sim, config)
        rng = random.Random(9)
        pages = config.logical_pages
        spp = config.geometry.page_size // 512

        def scenario():
            for _ in range(3 * pages):
                page = rng.randrange(pages)
                yield from ssd.write(page * spp, spp)
            yield from ssd.flush()

        sim.run_process(scenario())
        return ssd.ftl.write_amplification(), ssd.ftl.gc_runs

    def both():
        return run_policy("greedy"), run_policy("costbenefit")

    (wa_greedy, gc_greedy), (wa_cb, gc_cb) = benchmark.pedantic(
        both, rounds=1, iterations=1)
    print(f"\ngreedy: WA {wa_greedy:.2f} ({gc_greedy} GCs); "
          f"cost-benefit: WA {wa_cb:.2f} ({gc_cb} GCs)")
    assert gc_greedy > 0 and gc_cb > 0
    # both policies must keep WA in a sane range on uniform random
    assert 1.0 <= wa_greedy < 8.0
    assert 1.0 <= wa_cb < 8.0


def test_ablation_hil_arbitration(benchmark):
    """FIFO vs RR vs WRR device-queue arbitration under multi-queue load."""
    def run_policy(policy):
        device = presets.intel750().with_overrides(
            hil=HILConfig(arbitration=policy))
        system = FullSystem(device=device, interface="nvme")
        system.precondition()
        res = system.run_fio(FioJob(rw="randread", bs=4096, iodepth=8,
                                    numjobs=4, total_ios=N_IOS // 4))
        return res

    def all_policies():
        return {policy: run_policy(policy)
                for policy in ("fifo", "rr", "wrr")}

    results = benchmark.pedantic(all_policies, rounds=1, iterations=1)
    print()
    for policy, res in results.items():
        print(f"{policy}: {res.bandwidth_mbps:.0f} MB/s, "
              f"p99 {res.latency.percentile(99) / 1000:.0f} us")
    bws = [res.bandwidth_mbps for res in results.values()]
    # arbitration changes fairness, not aggregate throughput (same work)
    assert max(bws) / min(bws) < 1.3


def test_ablation_atomic_vs_timing_cpu(benchmark):
    """Functional vs timing host CPU: the timing stack costs bandwidth."""
    from repro.host.cpu import CpuModel

    def both():
        out = {}
        for model in (CpuModel.ATOMIC, CpuModel.O3):
            system = FullSystem(device=presets.intel750(), interface="nvme",
                                cpu_model=model)
            system.precondition()
            out[model] = system.run_fio(
                FioJob(rw="randread", bs=4096, iodepth=16, total_ios=N_IOS))
        return out

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    atomic = results[CpuModel.ATOMIC]
    timing = results[CpuModel.O3]
    print(f"\natomic: {atomic.bandwidth_mbps:.0f} MB/s, "
          f"timing: {timing.bandwidth_mbps:.0f} MB/s")
    # a functional CPU hides all kernel cost: never slower than timing
    assert atomic.bandwidth_mbps >= timing.bandwidth_mbps
    assert atomic.host_kernel_utilization == 0.0
    assert timing.host_kernel_utilization > 0.0

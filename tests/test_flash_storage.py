"""Unit tests for the storage complex: addressing, array state, backend timing."""

import pytest

from repro.sim import Simulator
from repro.ssd.config import FlashGeometry, FlashTiming, SSDConfig
from repro.ssd.storage.address import PPA, AddressMapper
from repro.ssd.storage.array import FlashArray, PageState
from repro.ssd.storage.backend import FlashBackend

from tests.conftest import tiny_ssd_config


@pytest.fixture
def geometry():
    return FlashGeometry(channels=2, packages_per_channel=2, dies_per_package=1,
                         planes_per_die=2, blocks_per_plane=4, pages_per_block=8,
                         page_size=2048)


class TestAddressMapper:
    def test_ppn_roundtrip_all_pages(self, geometry):
        mapper = AddressMapper(geometry)
        for ppn in range(geometry.total_physical_pages):
            assert mapper.ppn(mapper.ppa(ppn)) == ppn

    def test_ppa_roundtrip(self, geometry):
        mapper = AddressMapper(geometry)
        ppa = PPA(channel=1, way=1, plane=0, block=2, page=5)
        assert mapper.ppa(mapper.ppn(ppa)) == ppa

    def test_unit_index_is_dense(self, geometry):
        mapper = AddressMapper(geometry)
        seen = set()
        for ch in range(geometry.channels):
            for way in range(geometry.ways_per_channel):
                for plane in range(geometry.planes_per_die):
                    seen.add(mapper.unit_index(ch, way, plane))
        assert seen == set(range(geometry.parallel_units))

    def test_out_of_range_rejected(self, geometry):
        mapper = AddressMapper(geometry)
        with pytest.raises(ValueError):
            mapper.ppn(PPA(99, 0, 0, 0, 0))
        with pytest.raises(ValueError):
            mapper.ppa(geometry.total_physical_pages)

    def test_unit_of_ppn_consistent_with_ppa(self, geometry):
        mapper = AddressMapper(geometry)
        for ppn in range(0, geometry.total_physical_pages, 7):
            ppa = mapper.ppa(ppn)
            assert (mapper.unit_of_ppn(ppn)
                    == mapper.unit_index(ppa.channel, ppa.way, ppa.plane))
            assert mapper.block_of_ppn(ppn) == ppa.block
            assert mapper.page_of_ppn(ppn) == ppa.page


class TestFlashArrayState:
    def test_pages_start_free(self, geometry):
        array = FlashArray(geometry)
        assert array.page_state(0) == PageState.FREE

    def test_program_makes_valid(self, geometry):
        array = FlashArray(geometry)
        array.program_ppn(0, now=10)
        assert array.page_state(0) == PageState.VALID

    def test_out_of_order_program_rejected(self, geometry):
        array = FlashArray(geometry)
        with pytest.raises(RuntimeError, match="out-of-order"):
            array.program_ppn(2, now=0)  # page 2 before pages 0, 1

    def test_overwrite_without_erase_rejected(self, geometry):
        array = FlashArray(geometry)
        array.program_ppn(0, now=0)
        with pytest.raises(RuntimeError):
            array.program_ppn(0, now=1)

    def test_invalidate_then_erase(self, geometry):
        array = FlashArray(geometry)
        for page in range(geometry.pages_per_block):
            array.program_ppn(page, now=0)
        for page in range(geometry.pages_per_block):
            array.invalidate_ppn(page)
        array.erase_block(0, 0)
        assert array.page_state(0) == PageState.FREE
        assert array.block(0, 0).erase_count == 1

    def test_erase_with_valid_pages_rejected(self, geometry):
        array = FlashArray(geometry)
        array.program_ppn(0, now=0)
        with pytest.raises(RuntimeError, match="lose data"):
            array.erase_block(0, 0)

    def test_double_invalidate_rejected(self, geometry):
        array = FlashArray(geometry)
        array.program_ppn(0, now=0)
        array.invalidate_ppn(0)
        with pytest.raises(RuntimeError):
            array.invalidate_ppn(0)

    def test_valid_pages_iterates_only_valid(self, geometry):
        array = FlashArray(geometry)
        for page in range(4):
            array.program_ppn(page, now=0)
        array.invalidate_ppn(1)
        assert list(array.block(0, 0).valid_pages()) == [0, 2, 3]

    def test_program_erase_counters(self, geometry):
        array = FlashArray(geometry)
        array.program_ppn(0, now=0)
        array.invalidate_ppn(0)
        array.erase_block(0, 0)
        assert array.total_programs == 1
        assert array.total_erases == 1


class TestBackendTiming:
    def _config(self):
        return tiny_ssd_config()

    def test_read_latency_includes_sense_and_transfer(self):
        sim = Simulator()
        config = self._config()
        backend = FlashBackend(sim, config)
        sim.run_process(backend.read_page(0, config.geometry.page_size))
        timing = config.timing
        expected_min = timing.t_read(0) + timing.t_cmd
        assert sim.now >= expected_min
        # transfer of one 2 KB page at 200 MHz DDR x8 = 400 MB/s ~ 5.1 us
        assert sim.now < expected_min + 10_000

    def test_slow_page_reads_slower(self):
        config = self._config()
        sim_fast, sim_slow = Simulator(), Simulator()
        FlashBackend(sim_fast, config)  # warm import path parity
        backend_fast = FlashBackend(sim_fast, config)
        backend_slow = FlashBackend(sim_slow, config)
        sim_fast.run_process(backend_fast.read_page(0))   # page 0: fast
        sim_slow.run_process(backend_slow.read_page(1))   # page 1: slow
        assert sim_slow.now > sim_fast.now

    def test_program_latency_dominated_by_tprog(self):
        sim = Simulator()
        config = self._config()
        backend = FlashBackend(sim, config)
        sim.run_process(backend.program_page(0))
        assert sim.now >= config.timing.t_prog(0)

    def test_same_die_reads_serialize(self):
        sim = Simulator()
        config = self._config()
        backend = FlashBackend(sim, config)

        def both():
            procs = [sim.process(backend.read_page(0)),
                     sim.process(backend.read_page(1))]
            for proc in procs:
                yield proc

        sim.run_process(both())
        # two reads on the same die cannot overlap their sense phases
        assert sim.now >= config.timing.t_read(0) + config.timing.t_read(1)

    def test_different_channel_reads_overlap(self):
        sim = Simulator()
        config = self._config()
        backend = FlashBackend(sim, config)
        mapper = backend.mapper
        other_channel_unit = mapper.unit_index(1, 0, 0)
        other_ppn = mapper.ppn_from_unit(other_channel_unit, 0, 0)

        def both():
            procs = [sim.process(backend.read_page(0)),
                     sim.process(backend.read_page(other_ppn))]
            for proc in procs:
                yield proc

        sim.run_process(both())
        # full overlap: total is one read, not two
        assert sim.now < 2 * config.timing.t_read(0)

    def test_erase_busy_time(self):
        sim = Simulator()
        config = self._config()
        backend = FlashBackend(sim, config)
        sim.run_process(backend.erase_block(0, 0))
        assert sim.now == config.timing.t_erase

    def test_multiplane_program_single_pulse(self):
        sim = Simulator()
        config = self._config()
        backend = FlashBackend(sim, config)
        mapper = backend.mapper
        # plane 0 and plane 1 of die 0, same block/page
        ppns = [mapper.ppn_from_unit(0, 0, 0), mapper.ppn_from_unit(1, 0, 0)]
        sim.run_process(backend.program_multiplane(ppns))
        # one program pulse, not two
        assert sim.now < 2 * config.timing.t_prog(0)
        assert backend.programs_issued == 2

    def test_multiplane_across_dies_rejected(self):
        sim = Simulator()
        config = self._config()
        backend = FlashBackend(sim, config)
        mapper = backend.mapper
        far_unit = config.geometry.planes_per_die  # first unit of die 1
        ppns = [0, mapper.ppn_from_unit(far_unit, 0, 0)]
        with pytest.raises(ValueError, match="single die"):
            sim.run_process(backend.program_multiplane(ppns))

    def test_power_meter_counts_operations(self):
        sim = Simulator()
        config = self._config()
        backend = FlashBackend(sim, config)
        sim.run_process(backend.read_page(0))
        sim.run_process(backend.program_page(0))
        sim.run_process(backend.erase_block(0, 0))
        assert backend.power.reads == 1
        assert backend.power.programs == 1
        assert backend.power.erases == 1
        assert backend.power.dynamic_energy() > 0
        assert backend.power.average_power() > 0

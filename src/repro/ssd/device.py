"""The assembled SSD: computation complex + storage complex + firmware.

This is the device an interface controller (SATA/UFS/NVMe/OCSSD) talks
to.  It also offers a standalone trace-replay entry point used by unit
tests and the simulator-comparison experiments, where no host model is
attached.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.iorequest import IOKind
from repro.common.units import SEC
from repro.sim import Simulator
from repro.ssd.computation.cores import CpuComplex
from repro.ssd.computation.dram import InternalDram
from repro.ssd.config import SSDConfig
from repro.ssd.content import ContentStore
from repro.ssd.firmware.fil import FlashInterfaceLayer
from repro.ssd.firmware.ftl.ftl import FlashTranslationLayer
from repro.ssd.firmware.hil import HostInterfaceLayer
from repro.ssd.firmware.icl import InternalCacheLayer
from repro.ssd.firmware.requests import DeviceCommand
from repro.ssd.storage.array import FlashArray
from repro.ssd.storage.backend import FlashBackend
from repro.ssd.storage.power import NandPowerMeter


class SSD:
    """A complete SSD with every resource modeled (Figure 5a)."""

    def __init__(self, sim: Simulator, config: SSDConfig,
                 data_emulation: bool = False) -> None:
        config.validate()
        self.sim = sim
        self.config = config
        self.data_emulation = data_emulation

        # storage complex
        self.array = FlashArray(config.geometry)
        self.nand_power = NandPowerMeter(sim, config.nand_power, config.geometry)
        self.backend = FlashBackend(
            sim, config, self.nand_power,
            erase_counts=lambda unit, block:
            self.array.block(unit, block).erase_count)
        # computation complex
        self.cores = CpuComplex(sim, config.cores)
        self.dram = InternalDram(sim, config.dram)
        # firmware stack (bottom-up)
        self.content = ContentStore(data_emulation, config.geometry.page_size)
        self.fil = FlashInterfaceLayer(sim, config, self.cores, self.backend)
        self.ftl = FlashTranslationLayer(sim, config, self.cores, self.dram,
                                         self.fil, self.array, self.content)
        self.icl = InternalCacheLayer(sim, config, self.cores, self.dram,
                                      self.ftl, data_emulation)
        self.hil = HostInterfaceLayer(sim, config, self.cores, self.icl)

    # -- command interface (used by device controllers) ----------------------

    def submit(self, cmd: DeviceCommand):
        """Enqueue a command; returns the completion event."""
        if cmd.done_event is None:
            cmd.done_event = self.sim.event()
        self._check_bounds(cmd)
        self.hil.submit(cmd)
        return cmd.done_event

    def _check_bounds(self, cmd: DeviceCommand) -> None:
        if cmd.kind in (IOKind.READ, IOKind.WRITE, IOKind.TRIM):
            if cmd.slba < 0 or cmd.slba + cmd.nsectors > self.config.logical_sectors:
                raise ValueError(
                    f"LBA range [{cmd.slba}, {cmd.slba + cmd.nsectors}) exceeds "
                    f"device capacity ({self.config.logical_sectors} sectors)")

    # -- standalone convenience (no host attached) -----------------------------

    def read(self, slba: int, nsectors: int, queue_id: int = 0):
        """Process generator: issue a read and wait for completion."""
        cmd = DeviceCommand(IOKind.READ, slba, nsectors, queue_id=queue_id)
        done = self.submit(cmd)
        data = yield done
        return data

    def write(self, slba: int, nsectors: int, data: Optional[bytes] = None,
              queue_id: int = 0):
        cmd = DeviceCommand(IOKind.WRITE, slba, nsectors, queue_id=queue_id,
                            data=data)
        done = self.submit(cmd)
        yield done

    def flush(self):
        cmd = DeviceCommand(IOKind.FLUSH, 0, 0)
        done = self.submit(cmd)
        yield done

    def trim(self, slba: int, nsectors: int):
        """Process generator: deallocate a sector range (TRIM)."""
        cmd = DeviceCommand(IOKind.TRIM, slba, nsectors)
        done = self.submit(cmd)
        yield done

    # -- state preparation ---------------------------------------------------

    def precondition_sequential(self, fraction: float = 1.0) -> int:
        """Instantly fill the device with sequential data (STEADY-STATE prep).

        The paper preconditions every validation run by sequentially
        writing the whole target space; doing that through the timed path
        would simulate minutes of wall-clock writes, so this fills the
        mapping/array state directly.  Returns the number of pages placed.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.config.ftl.mapping != "page":
            raise ValueError("preconditioning supports page mapping only")
        ftl = self.ftl
        slots = ftl.allocator.slots_per_line
        n_lines = int(self.config.logical_pages * fraction) // slots
        placed = 0
        for line_id in range(n_lines):
            units = ftl.allocator.line_units(line_id)
            for slot in range(slots):
                lpn = ftl.line_lpn(line_id, slot)
                ppn = ftl.allocator.allocate(units[slot], self.sim.now)
                old = ftl.mapping.bind(lpn, ppn)
                if old is not None:
                    self.array.invalidate_ppn(old)
                placed += 1
        return placed

    # -- reports ----------------------------------------------------------------

    def power_report(self) -> Dict[str, float]:
        """Average power per component in watts (Fig 13b breakdown)."""
        return {
            "cpu": self.cores.average_power(),
            "dram": self.dram.average_power(),
            "nand": self.nand_power.average_power(),
            "total": (self.cores.average_power() + self.dram.average_power()
                      + self.nand_power.average_power()),
        }

    def instruction_report(self) -> Dict[str, float]:
        """Instruction counts by class (Fig 13c breakdown)."""
        stats = self.cores.instruction_stats()
        report: Dict[str, float] = dict(stats.counts)
        report["total"] = stats.total
        return report

    def smart_report(self) -> Dict[str, float]:
        """SMART-style health attributes derived from media state."""
        counts = self.array.erase_counts()
        total_blocks = len(counts)
        # endurance proxy: MLC ~3K, TLC ~1K program/erase cycles
        rated_cycles = {1: 30_000, 2: 3_000, 3: 1_000}[
            self.config.timing.bits_per_cell]
        avg_erase = sum(counts) / total_blocks if total_blocks else 0.0
        return {
            "average_erase_count": avg_erase,
            "max_erase_count": max(counts) if counts else 0,
            "wear_spread": self.array.wear_spread(),
            "percentage_used": min(100.0, 100.0 * avg_erase / rated_cycles),
            "media_writes_pages": self.ftl.host_pages_written
            + self.ftl.gc_pages_migrated,
            "host_writes_pages": self.ftl.host_pages_written,
            "trimmed_pages": self.ftl.trimmed_pages,
            "retired_blocks": self.ftl.retired_blocks,
            "read_retries": self.backend.read_retries,
            "power_on_seconds": self.sim.now / SEC,
        }

    def stats_report(self) -> Dict[str, float]:
        elapsed_s = self.sim.now / SEC
        return {
            "elapsed_s": elapsed_s,
            "commands_completed": self.hil.commands_completed,
            "cache_hit_rate": self.icl.hit_rate(),
            "lines_flushed": self.icl.lines_flushed,
            "readaheads": self.icl.readaheads,
            "rmw_fetches": self.icl.rmw_fetches,
            "write_amplification": self.ftl.write_amplification(),
            "gc_runs": self.ftl.gc_runs,
            "flash_reads": self.backend.reads_issued,
            "flash_programs": self.backend.programs_issued,
            "flash_erases": self.backend.erases_issued,
            "wear_spread": self.array.wear_spread(),
        }

"""SIM110 fixture: wall-clock read outside the designated modules.

This file stands in for ordinary simulation code (it is not under
``repro/bench/``, ``repro/obs/profiler|journal``, ``repro/fleet/runner``
or ``repro/baselines/replay``), so even a speed measurement must not
read the host clock here — it belongs in a designated module.
"""

import time


def measure_step(sim):
    started = time.perf_counter()
    sim.step()
    return time.perf_counter() - started

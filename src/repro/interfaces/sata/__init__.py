"""Serial ATA over AHCI: h-type storage behind the I/O controller hub."""

from repro.interfaces.sata.fis import FisType, FIS_SIZES
from repro.interfaces.sata.ahci import AhciHba
from repro.interfaces.sata.controller import SataDeviceController

__all__ = ["FisType", "FIS_SIZES", "AhciHba", "SataDeviceController"]

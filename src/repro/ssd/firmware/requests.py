"""Device-internal request representations.

The device controller parses a host command into a :class:`DeviceCommand`;
the HIL splits it into superpage-aligned :class:`LineRequest` pieces, the
unit the ICL caches at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional

from repro.common.iorequest import IOKind, IORequest

_CMD_IDS = count(1)


@dataclass
class DeviceCommand:
    """A host command as seen inside the device, plus its completion event."""

    kind: IOKind
    slba: int
    nsectors: int
    queue_id: int = 0
    priority: int = 1            # WRR class: 0 high, 1 medium, 2 low
    data: Optional[bytes] = None
    host_request: Optional[IORequest] = None
    done_event: object = None    # sim Event, set by the device on submit
    cmd_id: int = field(default_factory=lambda: next(_CMD_IDS))
    t_fetched: int = -1

    @property
    def nbytes(self) -> int:
        return self.nsectors * 512

    @property
    def track(self) -> int:
        """Trace track for this command: the host request id, or 0.

        Track 0 is the shared background lane (GC, cache flushes and
        device-initiated commands with no host request attached).
        """
        return self.host_request.req_id if self.host_request is not None else 0


@dataclass
class LineRequest:
    """One superpage-line-aligned slice of a command.

    ``page_sectors`` maps page-slot index (within the line) to the
    (first_sector, n_sectors) range touched inside that flash page, in
    page-relative sector units.
    """

    line_id: int                             # logical superpage number
    is_write: bool
    page_sectors: Dict[int, tuple]           # slot -> (sector_off, nsectors)
    data_slices: Dict[int, bytes] = field(default_factory=dict)
    parent: Optional[DeviceCommand] = None

    @property
    def slots(self) -> List[int]:
        return sorted(self.page_sectors)

    @property
    def track(self) -> int:
        """Trace track inherited from the parent command (0 = background)."""
        return self.parent.track if self.parent is not None else 0


def split_command(cmd: DeviceCommand, page_size: int,
                  pages_per_line: int) -> List[LineRequest]:
    """Split a command into superpage-line requests (HIL's request split).

    Sectors are 512 B; pages are ``page_size``; a line holds
    ``pages_per_line`` pages.
    """
    sectors_per_page = page_size // 512
    sectors_per_line = sectors_per_page * pages_per_line
    is_write = cmd.kind.is_write

    out: List[LineRequest] = []
    sector = cmd.slba
    remaining = cmd.nsectors
    data_cursor = 0
    while remaining > 0:
        line_id = sector // sectors_per_line
        line_start = line_id * sectors_per_line
        take = min(remaining, line_start + sectors_per_line - sector)

        page_sectors: Dict[int, tuple] = {}
        data_slices: Dict[int, bytes] = {}
        piece_sector = sector
        piece_left = take
        while piece_left > 0:
            slot = (piece_sector - line_start) // sectors_per_page
            page_start = line_start + slot * sectors_per_page
            in_page = min(piece_left, page_start + sectors_per_page - piece_sector)
            page_sectors[slot] = (piece_sector - page_start, in_page)
            if cmd.data is not None and is_write:
                off = data_cursor * 512
                data_slices[slot] = cmd.data[off:off + in_page * 512]
                data_cursor += in_page
            piece_sector += in_page
            piece_left -= in_page

        out.append(LineRequest(line_id=line_id, is_write=is_write,
                               page_sectors=page_sectors,
                               data_slices=data_slices, parent=cmd))
        sector += take
        remaining -= take
    return out

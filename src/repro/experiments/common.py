"""Shared experiment plumbing."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import presets
from repro.core.fio import FioJob
from repro.core.system import FullSystem
from repro.obs import collect_metrics
from repro.ssd.config import SSDConfig
from repro.workloads.synthetic import PATTERN_RW

FULL_DEPTHS = [1, 2, 4, 8, 16, 24, 32]
QUICK_DEPTHS = [1, 4, 16, 32]

#: which interface each validated device uses
DEVICE_INTERFACES = {
    "intel750": "nvme",
    "850pro": "sata",
    "zssd": "nvme",
    "983dct": "nvme",
}


def build_system(device_name: str, interface: Optional[str] = None,
                 **kwargs) -> FullSystem:
    device = presets.by_name(device_name)
    interface = interface or DEVICE_INTERFACES[device_name]
    system = FullSystem(device=device, interface=interface, **kwargs)
    system.precondition()
    if system.sim.tracer.enabled:
        system.sim.tracer.label = f"{device_name}/{interface}"
    return system


def run_pattern(system: FullSystem, pattern: str, depth: int, bs: int = 4096,
                total_ios: int = 1000, seed: int = 21):
    job = FioJob(rw=PATTERN_RW[pattern], bs=bs, iodepth=depth,
                 total_ios=total_ios, seed=seed)
    result = system.run_fio(job)
    tracer = system.sim.tracer
    if tracer.enabled:
        # label the system's tracer with the workload and bank its
        # end-of-run metric snapshot for the --metrics CSV
        base = getattr(tracer, "label", system.interface)
        label = f"{base} {pattern} qd{depth} bs{bs}"
        tracer.label = label
        collect_metrics(label, system.metrics.snapshot())
    return result


def sweep_depths(device_name: str, pattern: str, depths: List[int],
                 bs: int = 4096, total_ios: int = 1000) -> Dict[int, Dict]:
    """Fresh system per point (no cross-contamination between depths)."""
    out: Dict[int, Dict] = {}
    for depth in depths:
        system = build_system(device_name)
        result = run_pattern(system, pattern, depth, bs=bs,
                             total_ios=total_ios)
        out[depth] = {
            "bandwidth_mbps": result.bandwidth_mbps,
            "latency_us": result.latency.mean_us(),
            "iops": result.iops,
        }
    return out

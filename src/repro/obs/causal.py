"""Per-request causal latency forensics: exact component decomposition.

The span tracer (:mod:`repro.obs.tracer`) answers *where time was
spent*; this module answers *why a particular request was slow*.  A
:class:`CausalTracer` streams every span begin/end on a track into a
**self-time partition**: at each event, the simulated time elapsed
since the previous event on that track is attributed to the *deepest
open span's* resource component.  When a track's root span closes, the
per-component sums telescope to exactly the root's end-to-end duration
— the **conservation invariant**::

    sum(record["components"].values()) == record["total_ns"]

holds for *every* request by construction (no sampling, no rounding),
and is pinned by ``tests/test_obs_causal.py`` and the golden smoke.

Component taxonomy (``docs/OBSERVABILITY.md``):

==============  ======================================================
component       meaning (span kinds folded in)
==============  ======================================================
host_queue      syscall + block-layer queueing (``io.submit``,
                ``os.blocklayer``)
nvme_sq         host adapter submission/completion (``nvme.sq``,
                ``ahci.*``, ``ufs.utp.*``)
hil_arb         device command fetch/arbitration/service shell
                (``nvme.cmd``, ``sata.cmd``, ``ufs.cmd``, ``hil.serve``)
icl             cache hit/miss service (``icl.read``/``icl.write``)
ftl             translation, write orchestration, host-side FTL
                (``ftl.translate``, ``ftl.write``, ``ftl.gc``,
                ``ocssd.pblk.*``)
gc_stall        blocked behind garbage collection (``ftl.gc_stall``
                inline-GC time, ``ftl.unit_wait`` unit-lock waits)
channel_wait    queueing for a contended ONFi channel
                (``flash.channel_wait``)
die_wait        queueing for a busy die (``flash.die_wait``)
die_busy        flash array service (``flash.read``/``program``/
                ``erase`` self-time)
dma             host DMA transfers (``dma.to_device``/``to_host``)
other           any span kind not mapped above (conservation is exact
                even for unknown kinds)
==============  ======================================================

Wait spans carry a ``holder`` argument — the blame label of whoever
held the contended resource when the wait began (``gc:<run>`` for a
garbage-collection run, ``ns:<nsid>`` for another tenant's namespace,
``req:<id>`` for another request, ``bg`` for background work) — so a
tail record names its specific offender.

Memory is bounded: per-request state is dropped when the root span
closes unless the request lands in the per-op **top-K min-heap** of
worst offenders (fixed ``top_k``, default 8), whose full causal chains
are capped at :data:`CHAIN_CAP` entries.  Aggregates are per-op
:class:`~repro.obs.histogram.LogHistogram` objects (bounded buckets).

Capture follows the house observability contract: **zero-cost when
off** (the process-wide switch is down and every simulator carries the
``NULL_TRACER``), **bit-identical when on** (spans never schedule
events, so enabling capture cannot perturb simulated results — pinned
by the golden causal smoke in CI).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.obs.histogram import LogHistogram
from repro.obs.tracer import Span, Tracer

#: the fixed component order (stable across reports and goldens)
COMPONENTS = ("host_queue", "nvme_sq", "hil_arb", "icl", "ftl", "gc_stall",
              "channel_wait", "die_wait", "die_busy", "dma", "other")

#: span kind -> component (anything unmapped falls into ``other``)
KIND_COMPONENT: Dict[str, str] = {
    "io.submit": "host_queue",
    "os.blocklayer": "host_queue",
    "nvme.sq": "nvme_sq",
    "ahci.submit": "nvme_sq",
    "ahci.complete": "nvme_sq",
    "ufs.utp.submit": "nvme_sq",
    "ufs.utp.complete": "nvme_sq",
    "nvme.cmd": "hil_arb",
    "sata.cmd": "hil_arb",
    "ufs.cmd": "hil_arb",
    "hil.serve": "hil_arb",
    "icl.read": "icl",
    "icl.write": "icl",
    "ftl.translate": "ftl",
    "ftl.write": "ftl",
    "ftl.gc": "ftl",
    "ocssd.pblk.read": "ftl",
    "ocssd.pblk.write": "ftl",
    "ftl.gc_stall": "gc_stall",
    "ftl.unit_wait": "gc_stall",
    "flash.channel_wait": "channel_wait",
    "flash.die_wait": "die_wait",
    "flash.read": "die_busy",
    "flash.program": "die_busy",
    "flash.erase": "die_busy",
    "dma.to_device": "dma",
    "dma.to_host": "dma",
}

#: span kinds whose duration is a *wait* with a ``holder`` blame edge
BLAME_KINDS = frozenset((
    "ftl.gc_stall", "ftl.unit_wait", "flash.channel_wait", "flash.die_wait"))

#: per-request causal-chain entries kept at most (fixed memory per track)
CHAIN_CAP = 512

#: distinct blame holders kept per ledger; the rest fold into "(other)"
BLAME_CAP = 256


def component_of(kind: str) -> str:
    """Map a span kind to its resource component (``other`` if unknown)."""
    return KIND_COMPONENT.get(kind, "other")


class _TrackState:
    """In-flight per-track partition state, alive root-open to root-close."""

    __slots__ = ("root", "stack", "last_ts", "parts", "chain", "dropped",
                 "blame")

    def __init__(self, root: Span, now: int) -> None:
        self.root = root
        self.stack: List[Tuple[Span, str]] = []
        self.last_ts = now
        self.parts: Dict[str, int] = {}
        self.chain: List[List] = []
        self.dropped = 0
        self.blame: Dict[str, int] = {}


class CausalTracer(Tracer):
    """A tracer that folds spans into exact causal latency records.

    Drop-in for :class:`~repro.obs.tracer.Tracer` (every instrumented
    call site keeps working, including Chrome-trace export when span
    retention is on), plus the streaming self-time partition described
    in the module docstring.  ``retain_spans=False`` (the default when
    only causal capture is armed) keeps memory bounded: span objects
    are discarded once their track's root closes.
    """

    #: marker consulted by metric registration (see ``core/system.py``)
    causal = True

    def __init__(self, clock=None, top_k: int = 8,
                 retain_spans: bool = False) -> None:
        super().__init__(clock)
        self.top_k = top_k
        self.retain_spans = retain_spans
        self.label: Optional[str] = None
        self._live: Dict[int, _TrackState] = {}
        # raw track id -> stable per-tracer alias, assigned in order of
        # first appearance.  Request ids come from a process-global
        # counter, so raw ids depend on how many simulations this
        # process ran before — aliasing keeps stored records and blame
        # labels byte-identical across fleet --jobs counts.
        self._alias: Dict[int, int] = {}
        self._seq = 0
        # aggregates, all bounded: per-op counts/sums/histograms
        self.records = 0
        self.violations = 0
        self.component_ns: Dict[str, Dict[str, int]] = {}
        self.op_counts: Dict[str, int] = {}
        self.op_total_ns: Dict[str, int] = {}
        self.op_hist: Dict[str, LogHistogram] = {}
        self.comp_hist: Dict[str, Dict[str, LogHistogram]] = {}
        self.blame_ns: Dict[str, Dict[str, int]] = {}
        self._worst: Dict[str, List[Tuple[int, int, Dict]]] = {}

    # -- recording --------------------------------------------------------

    def _alias_of(self, track: int) -> int:
        """Stable process-independent alias for a raw track id."""
        if not track:
            return 0
        alias = self._alias.get(track)
        if alias is None:
            alias = self._alias[track] = len(self._alias) + 1
        return alias

    def owner_label(self, track: int) -> str:
        """Blame label for ``track``, with the request id aliased so
        labels don't leak the process-global request counter."""
        ctx = self._track_ctx.get(track)
        if ctx is not None:
            return ctx
        return f"req:{self._alias_of(track)}" if track else "bg"

    def begin(self, kind: str, track: int = 0, **args) -> Span:
        """Open a span, charging elapsed self-time to the interrupted
        parent's component first."""
        now = self._now()
        state = self._live.get(track)
        if state is None:
            span = Span(kind, track, now, parent=None, args=args or None)
            state = _TrackState(span, now)
            self._live[track] = state
            self._alias_of(track)       # pin the alias at root open
        else:
            stack = state.stack
            if stack:
                delta = now - state.last_ts
                if delta:
                    comp = stack[-1][1]
                    state.parts[comp] = state.parts.get(comp, 0) + delta
            span = Span(kind, track, now,
                        parent=stack[-1][0] if stack else state.root,
                        args=args or None)
        state.stack.append((span, component_of(kind)))
        state.last_ts = now
        if self.retain_spans:
            self.spans.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close a span: charge the open self-time slice, pop the stack,
        and finalize the track's causal record when the root closes.

        Idempotent like :meth:`Tracer.end`; the common LIFO close is
        O(1).
        """
        if span.t_end is not None:
            return
        now = self._now()
        span.t_end = now
        state = self._live.get(span.track)
        if state is None or not state.stack:
            return
        stack = state.stack
        delta = now - state.last_ts
        if delta:
            comp = stack[-1][1]
            state.parts[comp] = state.parts.get(comp, 0) + delta
        state.last_ts = now
        if stack[-1][0] is span:
            stack.pop()
        else:
            for index in range(len(stack) - 1, -1, -1):
                if stack[index][0] is span:
                    del stack[index]
                    break
            else:
                return                  # stray end: not on this track
        if span.kind in BLAME_KINDS:
            wait = span.t_end - span.t_start
            if wait:
                holder = (span.args or {}).get("holder", "?")
                blame = state.blame
                if holder not in blame and len(blame) >= BLAME_CAP:
                    holder = "(other)"
                blame[holder] = blame.get(holder, 0) + wait
        if len(state.chain) < CHAIN_CAP:
            state.chain.append([span.kind, span.t_start, span.t_end,
                                dict(span.args) if span.args else {}])
        else:
            state.dropped += 1
        if not stack:
            del self._live[span.track]
            self._track_ctx.pop(span.track, None)
            self._finalize(state, now)

    # -- finalization -----------------------------------------------------

    def _finalize(self, state: _TrackState, now: int) -> None:
        """Fold one completed track episode into the bounded aggregates."""
        root = state.root
        total = now - root.t_start
        parts_sum = sum(state.parts.values())
        if parts_sum != total:          # cannot happen: telescoping sums
            self.violations += 1
        op = (root.args or {}).get("op", root.kind)
        self.records += 1
        self._seq += 1
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        self.op_total_ns[op] = self.op_total_ns.get(op, 0) + total
        comp_ns = self.component_ns.setdefault(op, {})
        comp_hist = self.comp_hist.setdefault(op, {})
        for comp, ns in state.parts.items():
            comp_ns[comp] = comp_ns.get(comp, 0) + ns
            hist = comp_hist.get(comp)
            if hist is None:
                hist = comp_hist[comp] = LogHistogram()
            hist.record(ns)
        hist = self.op_hist.get(op)
        if hist is None:
            hist = self.op_hist[op] = LogHistogram()
        hist.record(total)
        if state.blame:
            blame = self.blame_ns.setdefault(op, {})
            for holder, ns in state.blame.items():
                if holder not in blame and len(blame) >= BLAME_CAP:
                    holder = "(other)"
                blame[holder] = blame.get(holder, 0) + ns
        heap = self._worst.setdefault(op, [])
        if len(heap) < self.top_k or total > heap[0][0]:
            record = {
                "op": op,
                "track": self._alias_of(root.track),
                "t_start": root.t_start,
                "t_end": now,
                "total_ns": total,
                "components": {c: state.parts[c] for c in sorted(state.parts)
                               if state.parts[c]},
                "blame": {h: state.blame[h] for h in sorted(state.blame)},
                "chain": state.chain,
                "chain_dropped": state.dropped,
                "args": dict(root.args) if root.args else {},
            }
            # min-heap keyed (total, -seq): ties keep the *earlier*
            # request, deterministically, whatever the insertion order
            entry = (total, -self._seq, record)
            if len(heap) < self.top_k:
                heapq.heappush(heap, entry)
            else:
                heapq.heapreplace(heap, entry)

    # -- queries ----------------------------------------------------------

    def component_total(self, component: str) -> int:
        """Cumulative ns attributed to one component across all ops
        (sampled by the telemetry epoch stream as ``causal.<comp>.ns``)."""
        return sum(parts.get(component, 0)
                   for parts in self.component_ns.values())

    def worst(self, op: str) -> List[Dict]:
        """The top-K worst records for one op, slowest first."""
        heap = self._worst.get(op, [])
        return [entry[2] for entry in
                sorted(heap, key=lambda e: (-e[0], e[1]))]

    def summary(self) -> Dict:
        """JSON-able, deterministic causal summary of everything seen.

        Per op: request count, exact per-component ns sums, end-to-end
        and per-component latency histograms, aggregate blame ledger and
        the worst-K records with full causal chains.  Keys are sorted so
        the encoding is byte-stable.
        """
        ops: Dict[str, Dict] = {}
        for op in sorted(self.op_counts):
            ops[op] = {
                "count": self.op_counts[op],
                "total_ns": self.op_total_ns[op],
                "components_ns": {c: self.component_ns[op][c]
                                  for c in sorted(self.component_ns.get(op, {}))},
                "latency_hist": self.op_hist[op].to_dict(),
                "component_hist": {
                    c: h.to_dict()
                    for c, h in sorted(self.comp_hist.get(op, {}).items())},
                "blame_ns": {h: ns for h, ns in
                             sorted(self.blame_ns.get(op, {}).items())},
                "worst": self.worst(op),
            }
        return {
            "label": self.label,
            "records": self.records,
            "violations": self.violations,
            "top_k": self.top_k,
            "ops": ops,
        }


# -- the process-wide switch --------------------------------------------------
#
# Mirrors repro.obs.runtime: experiments and fleet workers build fresh
# Simulators internally, so causal capture is armed process-wide and
# every subsequently-built simulator's tracer_for() hands out a
# CausalTracer registered here.

_active = False
_top_k = 8
_collectors: List[CausalTracer] = []


def causal_enabled() -> bool:
    """True while the process-wide causal-capture switch is on."""
    return _active


def enable_causal(top_k: int = 8) -> None:
    """Arm causal capture and clear previously collected tracers."""
    global _active, _top_k
    _active = True
    _top_k = top_k
    _collectors.clear()


def disable_causal() -> None:
    """Disarm causal capture and drop collected tracers."""
    global _active
    _active = False
    _collectors.clear()


def causal_tracer_for(clock, retain_spans: bool = False) -> CausalTracer:
    """Build and register the causal tracer for a new simulator."""
    tracer = CausalTracer(clock, top_k=_top_k, retain_spans=retain_spans)
    _collectors.append(tracer)
    return tracer


def collectors() -> List[CausalTracer]:
    """Every causal tracer handed out since capture was enabled."""
    return list(_collectors)


def label_latest(label: str) -> None:
    """Label the most recent causal tracer (no-op when capture is off)."""
    if _collectors:
        _collectors[-1].label = label


def causal_summary() -> Dict:
    """Combined summary over every collected system, canonically ordered.

    ``systems`` lists one :meth:`CausalTracer.summary` per simulator in
    construction order (labelled via
    :func:`repro.obs.runtime.label_latest_tracer`, else ``system<i>``);
    top-level ``records``/``violations`` aggregate across them.
    """
    systems = []
    for index, tracer in enumerate(_collectors):
        doc = tracer.summary()
        if doc["label"] is None:
            doc["label"] = f"system{index}"
        systems.append(doc)
    return {
        "records": sum(doc["records"] for doc in systems),
        "violations": sum(doc["violations"] for doc in systems),
        "components": list(COMPONENTS),
        "systems": systems,
    }

"""Shared vocabulary types: units, I/O requests, instruction mixes, metrics."""

from repro.common.units import (
    GB,
    GHZ,
    KB,
    MB,
    MHZ,
    MS,
    NS,
    SEC,
    US,
    bandwidth_mbps,
    ns_per_byte,
)
from repro.common.iorequest import IOKind, IORequest
from repro.common.instructions import InstructionMix, InstructionStats
from repro.common.recorders import BandwidthRecorder, LatencyRecorder

__all__ = [
    "KB", "MB", "GB", "NS", "US", "MS", "SEC", "MHZ", "GHZ",
    "bandwidth_mbps", "ns_per_byte",
    "IOKind", "IORequest",
    "InstructionMix", "InstructionStats",
    "LatencyRecorder", "BandwidthRecorder",
]

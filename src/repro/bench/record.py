"""Record benchmark runs into the committed ``BENCH_*.json`` trajectory.

Every entry holds, per scenario, the best-of-N wall clock plus the
deterministic simulation facts; an optional ``baseline`` section embeds
a previous run so the speedup is part of the record.  The CLI lives in
``benchmarks/perf`` (``python -m benchmarks.perf``).
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.bench.scenarios import SCENARIOS, ScenarioResult

#: 2 added a per-scenario ``latency`` block (p50/p99/mean µs from the
#: streaming histogram).  Purely additive: version-1 files still load
#: and compare — readers must tolerate the key's absence.
SCHEMA_VERSION = 2


def run_all(profile: str = "full", repeats: int = 3,
            names: Optional[Iterable[str]] = None,
            verbose: bool = False) -> Dict[str, Dict]:
    """Run each scenario ``repeats`` times; keep the fastest wall clock.

    The deterministic fields (``events``, ``sim_ns``) must agree across
    repeats — a mismatch means the simulator lost reproducibility, and
    is raised immediately rather than averaged away.
    """
    results: Dict[str, Dict] = {}
    for name in (names or SCENARIOS):
        runner = SCENARIOS[name]
        best: Optional[ScenarioResult] = None
        for _ in range(max(1, repeats)):
            result = runner(profile)
            if best is not None and (result.events != best.events
                                     or result.sim_ns != best.sim_ns):
                raise RuntimeError(
                    f"scenario {name!r} is non-deterministic: "
                    f"events {best.events} vs {result.events}, "
                    f"sim_ns {best.sim_ns} vs {result.sim_ns}")
            if best is None or result.wall_seconds < best.wall_seconds:
                best = result
        entry = best.to_dict()
        if getattr(best, "latency", None):
            entry["latency"] = dict(best.latency)
        results[name] = entry
        if verbose:
            lat = entry.get("latency")
            tail = (f"  p50 {lat['p50_us']:.1f}us p99 {lat['p99_us']:.1f}us"
                    if lat else "")
            print(f"  {name:16s} {best.wall_seconds:8.3f}s  "
                  f"{best.events:>9d} events  "
                  f"{best.events_per_sec:>12,.0f} ev/s{tail}", file=sys.stderr)
    return results


def write_bench(path: Path, scenarios: Dict[str, Dict], profile: str,
                date: str, baseline: Optional[Dict] = None,
                notes: str = "") -> Dict:
    """Assemble and write one ``BENCH_<date>.json`` document."""
    doc = {
        "schema": SCHEMA_VERSION,
        "date": date,
        "profile": profile,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "notes": notes,
        "scenarios": scenarios,
    }
    if baseline is not None:
        doc["baseline"] = {
            "date": baseline.get("date"),
            "notes": baseline.get("notes", ""),
            "scenarios": baseline.get("scenarios", {}),
        }
        doc["speedup"] = compare_runs(baseline.get("scenarios", {}),
                                      scenarios)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_bench(path: Path) -> Dict:
    """Load a previously recorded benchmark document."""
    return json.loads(Path(path).read_text())


def compare_runs(baseline: Dict[str, Dict],
                 current: Dict[str, Dict]) -> Dict[str, float]:
    """Wall-clock speedup (baseline / current) per shared scenario."""
    out: Dict[str, float] = {}
    for name, entry in current.items():
        base = baseline.get(name)
        if not base or not entry.get("wall_seconds"):
            continue
        out[name] = round(base["wall_seconds"] / entry["wall_seconds"], 3)
    return out


def regression_table(baseline: Dict[str, Dict],
                     current: Dict[str, Dict]) -> list:
    """Per-scenario events/sec delta rows for the ``--compare`` gate.

    Each row maps ``scenario``/``baseline_eps``/``current_eps``/
    ``delta_pct`` (positive = faster, negative = regression).  Only
    scenarios present in both runs with nonzero throughput appear; the
    comparison axis is events/sec rather than raw wall seconds so
    differently-sized profiles of the same scenario stay comparable.
    """
    rows = []
    for name in sorted(current):
        base = baseline.get(name) or {}
        base_eps = base.get("events_per_sec") or 0.0
        cur_eps = (current[name] or {}).get("events_per_sec") or 0.0
        if not base_eps or not cur_eps:
            continue
        rows.append({
            "scenario": name,
            "baseline_eps": base_eps,
            "current_eps": cur_eps,
            "delta_pct": round((cur_eps - base_eps) / base_eps * 100.0, 2),
        })
    return rows


def worst_regression_pct(rows) -> float:
    """Largest events/sec *drop* across rows, as a positive percent.

    0.0 when nothing regressed (or there was nothing to compare) — the
    value the CLI holds against ``--regress-threshold``.
    """
    worst = 0.0
    for row in rows:
        drop = -row["delta_pct"]
        if drop > worst:
            worst = drop
    return worst


def format_regression_table(rows, threshold_pct: float = 15.0) -> str:
    """Render regression rows as the Markdown table the CLI prints.

    Rows whose drop exceeds ``threshold_pct`` are flagged ``REGRESSED``;
    improvements are marked ``ok (faster)``.
    """
    if not rows:
        return "(no comparable scenarios)"
    out = ["| scenario | baseline ev/s | current ev/s | delta | verdict |",
           "|---|---:|---:|---:|---|"]
    for row in rows:
        drop = -row["delta_pct"]
        verdict = ("REGRESSED" if drop > threshold_pct
                   else "ok (faster)" if row["delta_pct"] > 0 else "ok")
        out.append(f"| `{row['scenario']}` "
                   f"| {row['baseline_eps']:,.0f} "
                   f"| {row['current_eps']:,.0f} "
                   f"| {row['delta_pct']:+.1f}% | {verdict} |")
    return "\n".join(out)

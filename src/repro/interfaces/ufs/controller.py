"""Device-side UFS controller: parses UPIUs, moves data, drives the HIL."""

from __future__ import annotations

from repro.common.instructions import InstructionMix
from repro.common.iorequest import IOKind, IORequest
from repro.host.dma import DmaEngine, PointerList
from repro.interfaces.ufs.upiu import UPIU_SIZES, UpiuType, Utrd
from repro.interfaces.ufs.utp import UtpEngine
from repro.ssd.device import SSD
from repro.ssd.firmware.requests import DeviceCommand


class UfsDeviceController:
    def __init__(self, sim, ssd: SSD, dma: DmaEngine, utp: UtpEngine) -> None:
        self.sim = sim
        self.ssd = ssd
        self.dma = dma
        self.utp = utp
        utp.attach_controller(self)
        self._parse_mix = InstructionMix.typical(420)
        self.commands_served = 0

    def command_arrived(self, utrd: Utrd, req: IORequest) -> None:
        self.sim.process(self._execute(utrd, req))

    def _execute(self, utrd: Utrd, req: IORequest):
        with self.sim.tracer.span("ufs.cmd", req.req_id, slot=utrd.slot):
            yield from self.ssd.cores.execute("hil", self._parse_mix)
            pointers = PointerList([(e.address, e.nbytes) for e in utrd.prdt])
            payload = None
            req.t_device = self.sim.now

            if req.kind == IOKind.FLUSH:
                yield self.ssd.submit(DeviceCommand(IOKind.FLUSH, 0, 0))
            elif utrd.is_write:
                # READY_TO_TRANSFER handshake, then DATA_OUT UPIUs stream in
                yield from self.dma.control_to_host(
                    UPIU_SIZES[UpiuType.READY_TO_TRANSFER])
                yield from self.dma.to_device(pointers, track=req.req_id)
                yield self.ssd.submit(
                    DeviceCommand(IOKind.WRITE, utrd.slba, utrd.nsectors,
                                  queue_id=0, data=req.data,
                                  host_request=req))
            else:
                payload = yield self.ssd.submit(
                    DeviceCommand(IOKind.READ, utrd.slba, utrd.nsectors,
                                  queue_id=0, host_request=req))
                yield from self.dma.to_host(pointers, track=req.req_id)

            req.t_backend_done = self.sim.now
        self.commands_served += 1
        yield from self.utp.command_done(utrd.slot, payload)

"""Figure 12: kernel 4.4 (CFQ) vs 4.14 (BFQ) on enterprise workloads."""

from repro.experiments import fig12_os_impact as experiment

from benchmarks.conftest import run_experiment


def test_fig12_os_impact(benchmark):
    result = run_experiment(benchmark, experiment)
    speed = result["speedup_4_14"]
    # paper: 4.4 worse by 63% (reads) / 69% (writes), i.e. 4.14 is
    # ~2.7x / ~3.2x faster; accept a band around that
    assert 1.8 < speed["read"] < 5.0, speed
    assert 1.8 < speed["write"] < 5.0, speed
    # 4.14 must win on every cell, with a small tolerance for workloads
    # that saturate the interface under both kernels (e.g. DAP's large
    # sequential transfers peg the SATA PHY either way — the paper also
    # shows DAP as the least-affected workload)
    for (interface, kernel, name), point in result["data"].items():
        if kernel != "4.4":
            continue
        newer = result["data"][(interface, "4.14", name)]
        assert newer["total_mbps"] > 0.9 * point["total_mbps"], \
            (interface, name)

"""Integration tests for the assembled SSD (HIL -> ICL -> FTL -> flash)."""

import random

import pytest

from repro.sim import AllOf, Simulator
from repro.ssd.config import CacheConfig, FTLConfig
from repro.ssd.device import SSD

from tests.conftest import tiny_ssd_config


def make_ssd(sim, data_emulation=True, **overrides):
    return SSD(sim, tiny_ssd_config(**overrides), data_emulation=data_emulation)


def payload(tag: int, nbytes: int) -> bytes:
    rng = random.Random(tag)
    return bytes(rng.getrandbits(8) for _ in range(nbytes))


class TestReadWrite:
    def test_write_then_read_back(self, sim):
        ssd = make_ssd(sim)
        data = payload(1, 8 * 512)

        def scenario():
            yield from ssd.write(0, 8, data)
            got = yield from ssd.read(0, 8)
            return got

        assert sim.run_process(scenario()) == data

    def test_unwritten_reads_as_zero(self, sim):
        ssd = make_ssd(sim)

        def scenario():
            got = yield from ssd.read(100, 4)
            return got

        assert sim.run_process(scenario()) == bytes(4 * 512)

    def test_overwrite_returns_newest(self, sim):
        ssd = make_ssd(sim)
        first, second = payload(1, 4 * 512), payload(2, 4 * 512)

        def scenario():
            yield from ssd.write(10, 4, first)
            yield from ssd.write(10, 4, second)
            got = yield from ssd.read(10, 4)
            return got

        assert sim.run_process(scenario()) == second

    def test_partial_sector_overwrite_merges(self, sim):
        ssd = make_ssd(sim)
        base = payload(3, 8 * 512)
        patch = payload(4, 2 * 512)

        def scenario():
            yield from ssd.write(0, 8, base)
            yield from ssd.write(2, 2, patch)  # overwrite sectors 2..3
            got = yield from ssd.read(0, 8)
            return got

        expected = base[:2 * 512] + patch + base[4 * 512:]
        assert sim.run_process(scenario()) == expected

    def test_large_write_spans_lines(self, sim):
        ssd = make_ssd(sim)
        sectors = ssd.config.superpage_size // 512 * 3  # three lines
        data = payload(5, sectors * 512)

        def scenario():
            yield from ssd.write(0, sectors, data)
            got = yield from ssd.read(0, sectors)
            return got

        assert sim.run_process(scenario()) == data

    def test_unaligned_write_crossing_line_boundary(self, sim):
        ssd = make_ssd(sim)
        line_sectors = ssd.config.superpage_size // 512
        start = line_sectors - 3
        data = payload(6, 6 * 512)

        def scenario():
            yield from ssd.write(start, 6, data)
            got = yield from ssd.read(start, 6)
            return got

        assert sim.run_process(scenario()) == data

    def test_out_of_range_rejected(self, sim):
        ssd = make_ssd(sim)
        beyond = ssd.config.logical_sectors

        def scenario():
            yield from ssd.read(beyond - 1, 2)

        with pytest.raises(ValueError, match="capacity"):
            sim.run_process(scenario())

    def test_flush_persists_dirty_lines(self, sim):
        ssd = make_ssd(sim)
        data = payload(7, 4 * 512)

        def scenario():
            yield from ssd.write(0, 4, data)
            yield from ssd.flush()

        sim.run_process(scenario())
        assert ssd.icl.dirty_line_count() == 0
        assert ssd.backend.programs_issued > 0

    def test_concurrent_requests_complete(self, sim):
        ssd = make_ssd(sim)
        datas = {i: payload(10 + i, 4 * 512) for i in range(8)}

        def scenario():
            writes = [sim.process(ssd.write(i * 4, 4, datas[i]))
                      for i in range(8)]
            yield AllOf(sim, writes)
            reads = [sim.process(ssd.read(i * 4, 4)) for i in range(8)]
            results = yield AllOf(sim, reads)
            return results

        results = sim.run_process(scenario())
        for i, got in enumerate(results):
            assert got == datas[i], f"mismatch at request {i}"


class TestCacheBehaviour:
    def test_cached_read_is_faster_than_miss(self, sim):
        ssd = make_ssd(sim, data_emulation=False)

        def scenario():
            t0 = sim.now
            yield from ssd.read(0, 8)
            cold = sim.now - t0
            t0 = sim.now
            yield from ssd.read(0, 8)
            warm = sim.now - t0
            return cold, warm

        cold, warm = sim.run_process(scenario())
        assert warm < cold
        assert ssd.icl.read_hits >= 1

    def test_write_absorbed_by_cache_is_fast(self, sim):
        ssd = make_ssd(sim, data_emulation=False)

        def scenario():
            t0 = sim.now
            yield from ssd.write(0, 4)
            return sim.now - t0

        elapsed = sim.run_process(scenario())
        # cache-absorbed write never waits for tPROG (200 us in tiny config)
        assert elapsed < ssd.config.timing.t_prog_fast

    def test_readahead_prefetches_sequential_stream(self, sim):
        ssd = make_ssd(sim, data_emulation=False)
        line_sectors = ssd.config.superpage_size // 512

        def scenario():
            for line in range(6):
                yield from ssd.read(line * line_sectors, line_sectors)
            # allow prefetches in flight to land
            yield sim.timeout(10_000_000)

        sim.run_process(scenario())
        assert ssd.icl.readaheads > 0
        assert ssd.icl.read_hits > 0

    def test_no_readahead_when_disabled(self, sim):
        ssd = make_ssd(sim, data_emulation=False,
                       cache=CacheConfig(readahead=False))
        line_sectors = ssd.config.superpage_size // 512

        def scenario():
            for line in range(6):
                yield from ssd.read(line * line_sectors, line_sectors)

        sim.run_process(scenario())
        assert ssd.icl.readaheads == 0


class TestGarbageCollection:
    def test_sustained_random_writes_trigger_gc(self, sim):
        ssd = make_ssd(sim, data_emulation=False)
        rng = random.Random(42)
        sectors = ssd.config.logical_sectors
        sectors_per_page = ssd.config.geometry.page_size // 512

        def scenario():
            # write ~2x the logical space in page-sized random writes
            n = 2 * sectors // sectors_per_page
            for _ in range(n):
                page = rng.randrange(sectors // sectors_per_page)
                yield from ssd.write(page * sectors_per_page, sectors_per_page)
            yield from ssd.flush()

        sim.run_process(scenario())
        assert ssd.ftl.gc_runs > 0
        assert ssd.ftl.write_amplification() >= 1.0

    def test_gc_preserves_data_integrity(self, sim):
        ssd = make_ssd(sim, data_emulation=True)
        rng = random.Random(43)
        pages = ssd.config.logical_pages
        spp = ssd.config.geometry.page_size // 512
        expected = {}

        def scenario():
            for round_no in range(3):
                for _ in range(pages):
                    page = rng.randrange(pages)
                    data = payload(round_no * pages + page, spp * 512)
                    expected[page] = data
                    yield from ssd.write(page * spp, spp, data)
            yield from ssd.flush()
            for page in sorted(expected):
                got = yield from ssd.read(page * spp, spp)
                assert got == expected[page], f"corruption at page {page}"

        sim.run_process(scenario())
        assert ssd.ftl.gc_runs > 0

    def test_wear_leveling_bounds_erase_spread(self, sim):
        ssd = make_ssd(sim, data_emulation=False)
        rng = random.Random(44)
        pages = ssd.config.logical_pages
        spp = ssd.config.geometry.page_size // 512

        def scenario():
            # skewed workload: 60% of writes to 10% of space, plus enough
            # cold traffic to keep the flash churning
            hot = max(1, pages // 10)
            for _ in range(6 * pages):
                if rng.random() < 0.6:
                    page = rng.randrange(hot)
                else:
                    page = rng.randrange(pages)
                yield from ssd.write(page * spp, spp)
                yield from ssd.flush()

        sim.run_process(scenario())
        # erase wear must stay within a small band of the configured delta
        spread = ssd.array.wear_spread()
        max_erases = max(ssd.array.erase_counts())
        assert max_erases > 0
        assert spread <= max(8, max_erases), \
            f"wear spread {spread} looks unbounded"


class TestReports:
    def test_power_report_populated_after_io(self, sim):
        ssd = make_ssd(sim, data_emulation=False)

        def scenario():
            for i in range(10):
                yield from ssd.write(i * 8, 8)
            yield from ssd.flush()
            for i in range(10):
                yield from ssd.read(i * 8, 8)

        sim.run_process(scenario())
        power = ssd.power_report()
        assert power["cpu"] > 0
        assert power["dram"] > 0
        assert power["nand"] > 0
        assert power["total"] == pytest.approx(
            power["cpu"] + power["dram"] + power["nand"])

    def test_instruction_report_mix(self, sim):
        ssd = make_ssd(sim, data_emulation=False)

        def scenario():
            for i in range(5):
                yield from ssd.write(i * 8, 8)

        sim.run_process(scenario())
        instr = ssd.instruction_report()
        assert instr["total"] > 0
        # firmware is load/store heavy (Fig 13c: ~60%)
        ls_fraction = (instr["load"] + instr["store"]) / instr["total"]
        assert 0.4 < ls_fraction < 0.8

    def test_stats_report_keys(self, sim):
        ssd = make_ssd(sim, data_emulation=False)

        def scenario():
            yield from ssd.write(0, 8)
            yield from ssd.flush()

        sim.run_process(scenario())
        stats = ssd.stats_report()
        assert stats["commands_completed"] == 2
        assert stats["flash_programs"] > 0


class TestWrrPriorities:
    def _burst_latency(self, arbitration):
        """Mean latency of a high-priority stream behind a low-prio burst."""
        from repro.sim import Simulator as Sim
        from repro.ssd.config import HILConfig
        from repro.ssd.firmware.requests import DeviceCommand
        from repro.common.iorequest import IOKind
        from repro.common.recorders import LatencyRecorder

        sim = Sim()
        ssd = make_ssd(sim, data_emulation=False,
                       hil=HILConfig(arbitration=arbitration,
                                     wrr_weights=(16, 2, 1)))
        recorder = LatencyRecorder()

        def scenario():
            # enqueue a deep burst of low-priority work first
            backlog = []
            for i in range(60):
                cmd = DeviceCommand(IOKind.READ, (i % 50) * 8, 8,
                                    queue_id=2 + i % 3, priority=2)
                backlog.append(ssd.submit(cmd))
            # then a latency-sensitive high-priority stream
            for i in range(10):
                cmd = DeviceCommand(IOKind.READ, i * 8, 8,
                                    queue_id=1, priority=0)
                start = sim.now
                yield ssd.submit(cmd)
                recorder.record(sim.now - start)
            for event in backlog:
                yield event

        sim.run_process(scenario())
        return recorder.mean()

    def test_wrr_shields_high_priority_from_backlog(self):
        wrr = self._burst_latency("wrr")
        rr = self._burst_latency("rr")
        assert wrr < rr

"""NAND power/energy meter (NANDFlashSim-style activity accounting)."""

from __future__ import annotations

from repro.common.units import SEC
from repro.ssd.config import FlashGeometry, NandPower


class NandPowerMeter:
    """Accumulates per-operation energy plus die standby power."""

    def __init__(self, sim, params: NandPower, geometry: FlashGeometry) -> None:
        self.sim = sim
        self.params = params
        self.geometry = geometry
        self._origin = sim.now
        self.reads = 0
        self.programs = 0
        self.erases = 0
        self.bytes_transferred = 0

    def record_read(self) -> None:
        self.reads += 1

    def record_program(self) -> None:
        self.programs += 1

    def record_erase(self) -> None:
        self.erases += 1

    def record_transfer(self, nbytes: int) -> None:
        self.bytes_transferred += nbytes

    def dynamic_energy(self) -> float:
        p = self.params
        return (self.reads * p.e_read_page
                + self.programs * p.e_prog_page
                + self.erases * p.e_erase_block
                + self.bytes_transferred * p.e_transfer_per_byte)

    def standby_energy(self) -> float:
        elapsed_s = (self.sim.now - self._origin) / SEC
        return self.params.p_standby_per_die * self.geometry.total_dies * elapsed_s

    def total_energy(self) -> float:
        return self.dynamic_energy() + self.standby_energy()

    def average_power(self) -> float:
        elapsed_s = (self.sim.now - self._origin) / SEC
        return self.total_energy() / elapsed_s if elapsed_s > 0 else 0.0

"""Static lock-order deadlock detection — the SIM220 rule.

The simulator's :class:`repro.sim.resources.Resource` is a counted
lock: a process that acquires die then channel while a peer acquires
channel then die can deadlock, and — because simulated time only moves
when events fire — a simulated deadlock freezes the whole run at a
fixed timestamp, which is miserable to debug from a trace.

This pass builds a static **acquire-order graph**: a directed edge
``A -> B`` whenever some function acquires lock ``B`` while already
holding lock ``A``.  Holding is tracked through an ordered walk of each
function body (``try/finally`` release pairing included), and the
analysis is interprocedural: a function's summary lists every lock it
transitively acquires, with locks received as *parameters* resolved at
each call site (so ``self._traced_acquire(self.die_resource(u), ...)``
counts as a ``die_resource`` acquisition in the caller).

Lock **identity** is heuristic but deterministic: ``self.attr`` is
``Class.attr``; an acquire on a call result is named by the callee
(``self.die_resource(unit).acquire()`` -> ``die_resource``); subscripts
name the underlying container; a local variable resolves through its
assignment.  Identities are class-level, so two *different* die indexes
map to one node — that collapses per-instance detail, which is exactly
what lock *ordering* disciplines are about.

A cycle in the graph (ignoring self-edges, which model multi-unit
acquisition of one resource class in a fixed index order) is reported
once, located at its lexicographically smallest acquire site, with the
acquire sites of every edge as the witness path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.project import (
    FunctionInfo,
    Project,
    ordered_body,
)
from repro.analysis.registry import ProjectSite, project_rule

#: longest simple cycle searched for (deadlocks beyond this are rare
#: and the search is exponential in this bound)
MAX_CYCLE_LEN = 5


@dataclass(frozen=True)
class _Acquire:
    """One (transitive) acquisition in a function summary."""

    lock: str            # lock identity, or "param:N"
    path: str
    line: int
    describe: str        # human-readable site, e.g. "backend.py:120"


@dataclass(frozen=True)
class _Edge:
    """``src`` held while ``dst`` acquired, with both acquire sites."""

    src: str
    dst: str
    path: str
    line: int
    witness: Tuple[str, ...]


class _FunctionLocks:
    """Ordered walk of one function: held-set tracking + edges."""

    def __init__(self, analyzer: "LockAnalyzer",
                 func: FunctionInfo) -> None:
        self.analyzer = analyzer
        self.func = func
        self.env: Dict[str, str] = {}            # var -> lock identity
        self.held: List[_Acquire] = []
        self.acquired: Dict[str, _Acquire] = {}  # summary (first site wins)
        params = func.params
        if func.class_name is not None and params and \
                params[0] in ("self", "cls"):
            params = params[1:]
        self.params = params

    def _where(self, node: ast.AST) -> str:
        return f"{self.func.module.path}:{getattr(node, 'lineno', 1)}"

    # -- lock identity -----------------------------------------------------

    def lock_id(self, node: ast.expr) -> Optional[str]:
        """The static identity of the lock object ``node`` names."""
        if isinstance(node, ast.Subscript):
            return self.lock_id(node.value)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                owner = self.func.class_name or self.func.module.name
                return f"{owner}.{node.attr}"
            return node.attr
        if isinstance(node, ast.Call):
            inner = node.func
            if isinstance(inner, ast.Attribute):
                return inner.attr
            if isinstance(inner, ast.Name):
                return inner.id
            return None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.params:
                return f"param:{self.params.index(node.id)}"
            return node.id
        return None

    # -- walk --------------------------------------------------------------

    def run(self) -> None:
        for stmt in ordered_body(self.func.node):
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            identity = self.lock_id(stmt.value) \
                if isinstance(stmt.value, (ast.Attribute, ast.Subscript,
                                           ast.Call)) else None
            if identity is not None:
                self.env[stmt.targets[0].id] = identity
        for expr in self._stmt_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self.visit_call(node)

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
        for field_name in ("value", "test", "iter"):
            value = getattr(stmt, field_name, None)
            if isinstance(value, ast.expr):
                yield value

    def visit_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            identity = self.lock_id(func.value)
            if identity is not None:
                self.record_acquire(
                    _Acquire(identity, self.func.module.path,
                             getattr(node, "lineno", 1),
                             f"`{identity}.acquire()` at "
                             f"{self._where(node)} in "
                             f"`{self.func.name}()`"))
            return
        if isinstance(func, ast.Attribute) and func.attr == "release":
            identity = self.lock_id(func.value)
            if identity is not None:
                for index in range(len(self.held) - 1, -1, -1):
                    if self.held[index].lock == identity:
                        del self.held[index]
                        break
            return
        targets = self.analyzer.project.resolve_call(self.func, node)
        if len(targets) == 1 and targets[0].qualname != self.func.qualname:
            self.apply_summary(node, targets[0])

    def record_acquire(self, acq: _Acquire) -> None:
        for holder in self.held:
            self.analyzer.add_edge(holder, acq)
        # one held entry per identity: the ordered walk visits *both*
        # arms of a branch (e.g. traced vs untraced acquisition of the
        # same resource), which would otherwise leave a phantom lock
        # held after its single release
        if all(holder.lock != acq.lock for holder in self.held):
            self.held.append(acq)
        self.acquired.setdefault(acq.lock, acq)

    def apply_summary(self, node: ast.Call,
                      callee: FunctionInfo) -> None:
        """Edges + summary contributions from a resolved call."""
        summary = self.analyzer.summary(callee)
        if not summary:
            return
        escaping = set(self.analyzer.escapes(callee))
        for acq in summary.values():
            identity = acq.lock
            if identity.startswith("param:"):
                index = int(identity.split(":", 1)[1])
                if index >= len(node.args):
                    continue
                identity = self.lock_id(node.args[index])
                if identity is None:
                    continue
            describe = acq.describe.replace(f"`{acq.lock}.", f"`{identity}.")
            resolved = _Acquire(
                identity, acq.path, acq.line,
                f"`{callee.name}()` called at {self._where(node)}; "
                f"{describe}")
            for holder in self.held:
                self.analyzer.add_edge(holder, resolved)
            if acq.lock in escaping and all(
                    holder.lock != identity for holder in self.held):
                # the callee returns with this lock held: the caller
                # now holds it (and must release it itself)
                self.held.append(resolved)
            self.acquired.setdefault(resolved.lock, resolved)


class LockAnalyzer:
    """Project-wide acquire-order graph with cycle reporting."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._summaries: Dict[str, Dict[str, _Acquire]] = {}
        #: locks still held when the function returns (acquire-only
        #: helpers like the backend's ``_traced_acquire``)
        self._escapes: Dict[str, Tuple[str, ...]] = {}
        self._in_flight: Set[str] = set()
        #: src -> dst -> first edge seen
        self.graph: Dict[str, Dict[str, _Edge]] = {}

    def summary(self, func: FunctionInfo) -> Dict[str, _Acquire]:
        """Locks ``func`` transitively acquires (``param:N`` unresolved)."""
        if func.qualname in self._summaries:
            return self._summaries[func.qualname]
        if func.qualname in self._in_flight:
            return {}
        self._in_flight.add(func.qualname)
        try:
            walker = _FunctionLocks(self, func)
            walker.run()
            self._summaries[func.qualname] = walker.acquired
            self._escapes[func.qualname] = tuple(
                acq.lock for acq in walker.held)
            return walker.acquired
        finally:
            self._in_flight.discard(func.qualname)

    def escapes(self, func: FunctionInfo) -> Tuple[str, ...]:
        """Lock identities ``func`` still holds when it returns."""
        self.summary(func)
        return self._escapes.get(func.qualname, ())

    def add_edge(self, holder: _Acquire, acq: _Acquire) -> None:
        src, dst = holder.lock, acq.lock
        if src == dst or src.startswith("param:") or \
                dst.startswith("param:"):
            return
        self.graph.setdefault(src, {}).setdefault(dst, _Edge(
            src=src, dst=dst, path=acq.path, line=acq.line,
            witness=(f"holding `{src}`: {holder.describe}",
                     f"acquiring `{dst}`: {acq.describe}")))

    def run(self) -> None:
        for func in self.project.all_functions():
            self.summary(func)

    def cycles(self) -> List[List[str]]:
        """Simple cycles (len >= 2), each exactly once, rotated so the
        smallest lock name leads."""
        found: List[List[str]] = []
        for start in sorted(self.graph):
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for succ in sorted(self.graph.get(node, {}), reverse=True):
                    if succ == start and len(path) > 1:
                        found.append(path[:])
                    elif succ > start and succ not in path and \
                            len(path) < MAX_CYCLE_LEN:
                        stack.append((succ, path + [succ]))
        return found


@project_rule("SIM220", "lock-order-cycle",
              "Two code paths acquire the same pair of Resources in "
              "opposite orders; under the right interleaving both "
              "processes block forever and simulated time freezes. The "
              "acquire-order graph is built per resource class over every "
              "function (interprocedurally — locks passed as parameters "
              "resolve at the call site), and every cycle is reported "
              "with the acquire sites that form it. Break the cycle by "
              "fixing one global acquisition order.")
def check_lock_order(project: Project) -> Iterator[ProjectSite]:
    analyzer = LockAnalyzer(project)
    analyzer.run()
    for cycle in analyzer.cycles():
        edges: List[_Edge] = []
        complete = True
        for index, src in enumerate(cycle):
            dst = cycle[(index + 1) % len(cycle)]
            edge = analyzer.graph.get(src, {}).get(dst)
            if edge is None:
                complete = False
                break
            edges.append(edge)
        if not complete:
            continue
        site = min(edges, key=lambda e: (e.path, e.line))
        order = " -> ".join(cycle + [cycle[0]])
        witness: List[str] = []
        for edge in edges:
            witness.extend(edge.witness)
        yield ProjectSite(
            path=site.path, line=site.line, col=0,
            message=f"lock-order cycle {order}: these resources are "
                    "acquired in opposite orders on different paths; "
                    "pick one global order",
            witness=tuple(witness[:2 * MAX_CYCLE_LEN]))

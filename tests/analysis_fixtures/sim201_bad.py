"""SIM201 fixture: mixed-unit arithmetic the unit lattice can prove."""

from repro.common.units import NS


def total_latency_ns(lat_ns, nbytes):
    return lat_ns + nbytes          # ns + bytes


def queue_depth_check(depth_pages, span_lba):
    return depth_pages < span_lba   # pages compared with sectors


def scaled_wait_ns(wait_us, pad_ns):
    return wait_us * pad_ns * NS    # time * time product

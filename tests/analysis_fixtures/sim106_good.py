"""SIM106 fixture: the held token is released on every exit path."""


def tidy(sim, gate):
    yield gate.acquire()
    try:
        yield sim.timeout(5)
    finally:
        gate.release()

"""The SSD device model: computation complex, storage complex, firmware.

Mirrors Figure 5a of the paper:

* ``repro.ssd.computation`` — embedded ARMv8 cores, internal DRAM and its
  controller, CPU/DRAM power models;
* ``repro.ssd.storage`` — multi-channel multi-way flash backend with
  detailed transaction timing and a NAND power model;
* ``repro.ssd.firmware`` — HIL, ICL, FTL and FIL;
* ``repro.ssd.device`` — the assembled SSD exposed to interface
  controllers;
* ``repro.ssd.config`` — every knob, in one dataclass tree.
"""

from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD

__all__ = ["SSDConfig", "SSD"]

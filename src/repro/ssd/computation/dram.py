"""Internal DRAM and its controller.

Captures the DDR timing parameters the paper lists (tRP, tRCD, tCL), bank
row-buffer state with open/close page policies, and a DRAMPower-style
energy model with background and self-refresh states.  Every firmware
data/metadata reference and every buffered payload moves through here.
"""

from __future__ import annotations

from typing import List

from repro.common.units import SEC, transfer_ns
from repro.sim import Resource
from repro.ssd.config import DramConfig


class InternalDram:
    """Timing + energy model of the SSD's DRAM subsystem."""

    def __init__(self, sim, config: DramConfig) -> None:
        self.sim = sim
        self.config = config
        self._bus = Resource(sim, 1, name="ssd-dram-bus")
        self._open_rows: List[int] = [-1] * config.banks
        self._origin = sim.now
        # energy accounting
        self.activates = 0
        self.read_bursts = 0
        self.write_bursts = 0
        self.row_hits = 0
        self.row_misses = 0
        self.bytes_moved = 0
        # self-refresh: after this much idle time the controller drops
        # the DRAM into self-refresh (background power ~8x lower)
        self.self_refresh_threshold_ns = 100_000
        self._last_access_end = sim.now
        self._self_refresh_ns = 0

    # -- address decoding --------------------------------------------------

    def _bank_and_row(self, address: int):
        row_global = address // self.config.row_size
        bank = row_global % self.config.banks
        row = row_global // self.config.banks
        return bank, row

    def _row_latency(self, bank: int, row: int) -> int:
        cfg = self.config
        if cfg.page_policy == "close":
            self.activates += 1
            self.row_misses += 1
            return cfg.t_rcd + cfg.t_cl
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return cfg.t_cl
        self.activates += 1
        self.row_misses += 1
        miss_penalty = cfg.t_rp if self._open_rows[bank] != -1 else 0
        self._open_rows[bank] = row
        return miss_penalty + cfg.t_rcd + cfg.t_cl

    # -- access ------------------------------------------------------------

    def access(self, address: int, nbytes: int, write: bool = False):
        """Process generator: one DRAM access of ``nbytes`` at ``address``.

        Large accesses (buffered payloads) pay one row activation plus a
        bandwidth-limited streaming transfer; small metadata references pay
        the full row latency each time.
        """
        if nbytes <= 0:
            return
        cfg = self.config
        bank, row = self._bank_and_row(address)
        yield self._bus.acquire()
        try:
            # account the idle gap since the last access; anything past
            # the threshold was spent in self-refresh (and costs a wakeup)
            gap = self.sim.now - self._last_access_end
            wakeup = 0
            if gap > self.self_refresh_threshold_ns:
                self._self_refresh_ns += gap - self.self_refresh_threshold_ns
                wakeup = cfg.t_rcd  # tXS-ish exit latency
                self._open_rows = [-1] * cfg.banks
            latency = wakeup + self._row_latency(bank, row)
            latency += transfer_ns(nbytes, cfg.bandwidth)
            yield self.sim.timeout(latency)
        finally:
            self._last_access_end = self.sim.now
            self._bus.release()
        bursts = max(1, -(-nbytes // cfg.burst_bytes))
        if write:
            self.write_bursts += bursts
        else:
            self.read_bursts += bursts
        self.bytes_moved += nbytes

    def access_ns(self, nbytes: int, row_hit: bool = True) -> int:
        """Closed-form latency estimate (used by analytical baselines)."""
        cfg = self.config
        row = cfg.t_cl if row_hit else cfg.t_rp + cfg.t_rcd + cfg.t_cl
        return row + transfer_ns(nbytes, cfg.bandwidth)

    # -- power -------------------------------------------------------------

    def dynamic_energy(self) -> float:
        cfg = self.config
        return (self.activates * cfg.e_activate
                + self.read_bursts * cfg.e_read_burst
                + self.write_bursts * cfg.e_write_burst)

    def self_refresh_fraction(self) -> float:
        """Fraction of elapsed time spent in self-refresh."""
        elapsed = self.sim.now - self._origin
        if elapsed <= 0:
            return 0.0
        pending_gap = max(0, (self.sim.now - self._last_access_end)
                          - self.self_refresh_threshold_ns)
        return min(1.0, (self._self_refresh_ns + pending_gap) / elapsed)

    def background_energy(self) -> float:
        """Background power: active-standby while awake, self-refresh
        power during long idle stretches."""
        elapsed_s = (self.sim.now - self._origin) / SEC
        sr = self.self_refresh_fraction()
        per_rank = (self.config.p_background * (1.0 - sr)
                    + self.config.p_self_refresh * sr)
        return per_rank * self.config.ranks * elapsed_s

    def total_energy(self) -> float:
        return self.dynamic_energy() + self.background_energy()

    def average_power(self) -> float:
        elapsed_s = (self.sim.now - self._origin) / SEC
        return self.total_energy() / elapsed_s if elapsed_s > 0 else 0.0

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

"""Figure 15: passive (OCSSD + pblk) vs active (NVMe) storage.

Three panels:

* (a) bandwidth for 4 KB and 64 KB random/sequential reads and writes —
  the paper finds OCSSD ~30% faster for 4 KB (host-side buffering with
  better information) and NVMe ~20% faster for 64 KB (kernel buffer
  limits);
* (b) kernel CPU utilization over a write-then-read run: pblk keeps
  ~50% of four cores busy, NVMe ~10%;
* (c) host DRAM usage over the same run: pblk's buffer allocated at
  initialization, NVMe's protocol + FIO footprint.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.tables import format_table
from repro.common.units import KB, MB
from repro.core import presets
from repro.core.fio import FioJob
from repro.core.system import FullSystem

SIZES = [4 * KB, 64 * KB]
PATTERNS = ["randread", "randwrite", "read", "write"]


def _system(interface: str) -> FullSystem:
    system = FullSystem(device=presets.intel750(), interface=interface)
    if interface == "nvme":
        system.precondition()
    return system


def _phase_run(system: FullSystem, n_ios: int, bs: int) -> Dict:
    """Write region then read it back, sampling utilization/memory."""
    samples: List[Tuple[int, float]] = []
    markers = {}

    def sampler():
        while True:
            system.cpu.mark_utilization()
            yield system.sim.timeout(250_000)  # 0.25 ms sampling

    system.sim.process(sampler())
    markers["start"] = system.sim.now
    write_res = system.run_fio(FioJob(rw="write", bs=bs, iodepth=16,
                                      total_ios=n_ios,
                                      size=min(n_ios * bs,
                                               system.device_sectors * 256)))
    markers["write_end"] = system.sim.now
    read_res = system.run_fio(FioJob(rw="randread", bs=bs, iodepth=16,
                                     total_ios=n_ios,
                                     size=min(n_ios * bs,
                                              system.device_sectors * 256)))
    markers["read_end"] = system.sim.now
    return {
        "write_mbps": write_res.bandwidth_mbps,
        "read_mbps": read_res.bandwidth_mbps,
        "cpu_timeline": system.cpu.kernel_utilization_timeline(),
        "memory_timeline": system.memory.usage_timeline(),
        "markers": markers,
        "kernel_utilization": system.cpu.kernel_utilization(),
        "memory_peak_mb": max((v for _t, v in
                               system.memory.usage_timeline()),
                              default=0) / MB,
    }


def run(quick: bool = True, n_ios=None, sizes=None, patterns=None) -> Dict:
    """``n_ios``/``sizes``/``patterns`` shrink the sweep for the golden
    small configs; the summary covers whichever points were run."""
    n_ios = n_ios or (300 if quick else 1200)
    sizes = sizes or SIZES
    patterns = patterns or PATTERNS
    results: Dict = {"bandwidth": {}, "phases": {},
                     "sizes": sizes, "patterns": patterns}
    for interface in ("nvme", "ocssd"):
        for bs in sizes:
            for pattern in patterns:
                system = _system(interface)
                if pattern.endswith("read"):
                    # populate the region first so reads hit real data
                    region = min(n_ios * bs, system.device_sectors * 256)
                    system.run_fio(FioJob(rw="write", bs=bs, iodepth=16,
                                          total_ios=n_ios, size=region,
                                          warmup_fraction=0.0))
                    res = system.run_fio(FioJob(rw=pattern, bs=bs,
                                                iodepth=16, total_ios=n_ios,
                                                size=region))
                else:
                    res = system.run_fio(FioJob(rw=pattern, bs=bs,
                                                iodepth=16, total_ios=n_ios))
                results["bandwidth"][(interface, bs // KB, pattern)] = \
                    res.bandwidth_mbps
        results["phases"][interface] = _phase_run(_system(interface),
                                                  n_ios, 4 * KB)
    results["summary"] = _summarize(results)
    return results


def _summarize(results: Dict) -> Dict:
    bw = results["bandwidth"]
    patterns = results.get("patterns", PATTERNS)
    small = [bw[("ocssd", 4, p)] / max(1e-9, bw[("nvme", 4, p)])
             for p in patterns if ("ocssd", 4, p) in bw]
    large = [bw[("nvme", 64, p)] / max(1e-9, bw[("ocssd", 64, p)])
             for p in patterns if ("nvme", 64, p) in bw]
    return {
        "ocssd_advantage_4k": sum(small) / len(small) if small else 0.0,
        "nvme_advantage_64k": sum(large) / len(large) if large else 0.0,
        "kernel_cpu": {i: results["phases"][i]["kernel_utilization"]
                       for i in ("nvme", "ocssd")},
        "memory_peak_mb": {i: results["phases"][i]["memory_peak_mb"]
                           for i in ("nvme", "ocssd")},
    }


def render(results: Dict) -> str:
    rows = [[interface, kb, pattern, round(v)]
            for (interface, kb, pattern), v in results["bandwidth"].items()]
    blocks = [format_table(["interface", "KiB", "pattern", "MB/s"], rows,
                           "Fig 15a: NVMe (active) vs OCSSD (passive)")]
    s = results["summary"]
    blocks.append(
        f"OCSSD/NVMe at 4K: x{s['ocssd_advantage_4k']:.2f} (paper: ~1.3); "
        f"NVMe/OCSSD at 64K: x{s['nvme_advantage_64k']:.2f} (paper: ~1.2)")
    blocks.append(
        "Fig 15b kernel CPU: "
        + ", ".join(f"{i}: {u * 100:.0f}%"
                    for i, u in s["kernel_cpu"].items())
        + " (paper: OCSSD ~50%, NVMe ~10%)")
    blocks.append(
        "Fig 15c peak host DRAM: "
        + ", ".join(f"{i}: {mb:.0f} MB"
                    for i, mb in s["memory_peak_mb"].items()))
    return "\n\n".join(blocks)

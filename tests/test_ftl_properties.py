"""Property-based FTL invariants under random write/trim traffic.

Three contracts that must hold no matter what the host throws at the
device (including traffic heavy enough to force garbage collection):

* **mapping injectivity** — no two LPNs ever resolve to the same PPN,
  and the forward/reverse maps stay mutually consistent;
* **GC preserves live data** — every mapped page is VALID in the flash
  array and every VALID flash page is reachable from the map: migration
  can move pages but never lose or duplicate them;
* **free-block accounting** — every block of every parallel unit is in
  exactly one pool (free / active / filled / retired), always.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.iorequest import IOKind
from repro.sim import Simulator
from repro.ssd.config import FTLConfig
from repro.ssd.device import SSD
from repro.ssd.firmware.ftl.mapping import UNMAPPED
from repro.ssd.firmware.requests import DeviceCommand
from repro.ssd.storage.array import PageState

from tests.conftest import tiny_ssd_config

#: (is_trim, start_page, page_count) triples; pages are converted to the
#: device's sector space inside the test
_ops = st.lists(
    st.tuples(st.booleans(), st.integers(0, 127), st.integers(1, 16)),
    min_size=1, max_size=60)


def _drive(ops):
    """Run the op sequence on a tiny SSD and return it quiesced."""
    sim = Simulator()
    config = tiny_ssd_config(
        ftl=FTLConfig(overprovision=0.25, gc_threshold_free_blocks=1,
                      wear_delta_threshold=4))
    ssd = SSD(sim, config)
    sectors_per_page = config.geometry.page_size // 512
    logical_pages = config.logical_pages

    def host():
        for is_trim, start_page, page_count in ops:
            start = start_page % logical_pages
            count = min(page_count, logical_pages - start)
            cmd = DeviceCommand(
                IOKind.TRIM if is_trim else IOKind.WRITE,
                start * sectors_per_page, count * sectors_per_page)
            yield ssd.submit(cmd)
        # drain the write-back cache so the map reflects every write
        yield ssd.submit(DeviceCommand(IOKind.FLUSH, 0, 0))

    sim.run_process(host())
    return ssd


def _check_invariants(ssd):
    mapping = ssd.ftl.mapping
    geometry = ssd.config.geometry

    mapped = [(lpn, int(ppn)) for lpn, ppn in enumerate(mapping.l2p)
              if int(ppn) != UNMAPPED]

    # -- injectivity: distinct LPNs own distinct PPNs, maps agree
    ppns = [ppn for _lpn, ppn in mapped]
    assert len(ppns) == len(set(ppns)), "two LPNs share one PPN"
    for lpn, ppn in mapped:
        assert mapping.reverse(ppn) == lpn

    # -- no lost pages: mapped <-> VALID in the array, exactly
    for _lpn, ppn in mapped:
        assert ssd.array.page_state(ppn) == PageState.VALID
    total_valid = sum(
        block.valid_count
        for unit in range(geometry.parallel_units)
        for block in ssd.array.blocks_of_unit(unit))
    assert total_valid == len(mapped), (
        "flash array holds valid pages the mapping cannot reach")

    # -- free-block accounting: each block in exactly one pool
    for unit in range(geometry.parallel_units):
        state = ssd.ftl.allocator._units[unit]
        pools = (list(state.free) + list(state.filled)
                 + list(state.retired)
                 + ([state.active] if state.active is not None else []))
        assert len(pools) == geometry.blocks_per_plane
        assert len(set(pools)) == len(pools), "block present in two pools"
        assert ssd.ftl.allocator.free_blocks(unit) >= 0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_ops)
def test_mapping_and_accounting_invariants(ops):
    ssd = _drive(ops)
    _check_invariants(ssd)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2 ** 31 - 1))
def test_gc_pressure_never_loses_pages(seed):
    """Overwrite a small region far past capacity so GC runs hot."""
    import random
    rng = random.Random(seed)
    region_pages = 320   # most of the tiny device's logical space
    ops = [(False, rng.randrange(region_pages), rng.randint(1, 8))
           for _ in range(400)]
    ssd = _drive(ops)
    assert ssd.ftl.gc_runs > 0, "workload failed to trigger GC"
    _check_invariants(ssd)


def test_trim_unmaps_and_invalidates():
    ssd = _drive([(False, 0, 32), (True, 0, 16)])
    mapping = ssd.ftl.mapping
    for lpn in range(16):
        assert mapping.lookup(lpn) == UNMAPPED
    for lpn in range(16, 32):
        assert mapping.lookup(lpn) != UNMAPPED
    _check_invariants(ssd)

"""CLI for the simulation-safety analyzer.

Usage::

    python -m repro.analysis lint [PATH ...] [--json] [--show-suppressed]
    python -m repro.analysis rules

``lint`` exits 0 when every finding is suppressed (each suppression must
carry a reason), 1 otherwise — CI gates on exactly this
(docs/ANALYSIS.md).  With no paths it lints ``src/repro`` relative to
the current directory, falling back to the installed package location.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.findings import FindingSet
from repro.analysis.registry import all_rules, lint_paths


def _default_paths() -> List[str]:
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    import repro
    return [os.path.dirname(os.path.abspath(repro.__file__))]


def _print_text(result: FindingSet, show_suppressed: bool) -> None:
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        print(finding.format())
    counts = result.by_rule()
    if counts:
        summary = ", ".join(f"{rule_id}: {n}"
                            for rule_id, n in sorted(counts.items()))
        print(f"simlint: {len(result.unsuppressed)} finding(s) ({summary}), "
              f"{len(result.suppressed)} suppressed", file=sys.stderr)
    else:
        print(f"simlint: clean ({len(result.suppressed)} suppressed "
              "finding(s) with documented reasons)", file=sys.stderr)


def _print_json(result: FindingSet) -> None:
    doc = [{"rule": f.rule, "path": f.path, "line": f.line, "col": f.col,
            "message": f.message, "suppressed": f.suppressed,
            "reason": f.reason} for f in result.findings]
    json.dump(doc, sys.stdout, indent=1, sort_keys=True)
    print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: simulation-safety static analysis")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="lint files or directories")
    lint.add_argument("paths", nargs="*", help="files/dirs (default src/repro)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable output")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print suppressed findings")

    sub.add_parser("rules", help="list every rule with its rationale")

    args = parser.parse_args(argv)
    if args.command == "rules":
        for rule in all_rules():
            print(f"{rule.id} {rule.name}")
            print(f"    {rule.rationale}")
        return 0

    result = lint_paths(args.paths or _default_paths())
    if args.as_json:
        _print_json(result)
    else:
        _print_text(result, args.show_suppressed)
    return result.exit_code()


if __name__ == "__main__":
    raise SystemExit(main())

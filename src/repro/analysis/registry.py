"""The simlint rule registry and per-file lint driver.

A rule is a callable ``(SourceFile) -> iterator of (node_or_line, col,
message)`` registered under a stable ID with :func:`rule`.  The driver
(:func:`lint_source` / :func:`lint_paths`) parses each file once, runs
every registered rule over it, and applies the per-line suppressions
from :mod:`repro.analysis.findings`.

Rules live in :mod:`repro.analysis.rules`; importing that module
populates the registry as a side effect of its decorators.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.analysis.findings import (
    META_RULE,
    Finding,
    FindingSet,
    Suppression,
    parse_suppressions,
)

#: what a rule yields: (AST node or 1-based line number, column, message)
Site = Tuple[Union[ast.AST, int], int, str]


@dataclass
class SourceFile:
    """One parsed module: path, text, AST, and parsed suppressions."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Suppression]

    @classmethod
    def parse(cls, path: str, source: Optional[str] = None) -> "SourceFile":
        if source is None:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   suppressions=parse_suppressions(source))

    def functions(self) -> Iterator[ast.AST]:
        """Every function/method definition, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: stable ID, short name, rationale, checker."""

    id: str
    name: str
    rationale: str
    check: Callable[[SourceFile], Iterable[Site]]


_RULES: Dict[str, Rule] = {}


def rule(rule_id: str, name: str,
         rationale: str) -> Callable[[Callable[[SourceFile], Iterable[Site]]],
                                     Callable[[SourceFile], Iterable[Site]]]:
    """Decorator: register ``func`` as the checker for ``rule_id``."""
    def wrap(func: Callable[[SourceFile], Iterable[Site]]
             ) -> Callable[[SourceFile], Iterable[Site]]:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = Rule(rule_id, name, rationale, func)
        return func
    return wrap


def all_rules() -> List[Rule]:
    """Every registered rule, by ID (importing ``rules`` populates them)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return [_RULES[k] for k in sorted(_RULES)]


def _site_location(site: Site) -> Tuple[int, int]:
    node, col, _msg = site
    if isinstance(node, int):
        return node, col
    return getattr(node, "lineno", 1), getattr(node, "col_offset", col)


def lint_source(path: str, source: Optional[str] = None,
                rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Lint one module; returns every finding (suppressed ones marked)."""
    selected = list(rules) if rules is not None else all_rules()
    try:
        src = SourceFile.parse(path, source)
    except SyntaxError as exc:
        return [Finding(rule=META_RULE, path=path, line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}")]
    findings: List[Finding] = []
    for lint_rule in selected:
        for site in lint_rule.check(src):
            line, col = _site_location(site)
            message = site[2]
            supp = src.suppressions.get(line)
            if supp is not None and supp.covers(lint_rule.id):
                findings.append(Finding(
                    rule=lint_rule.id, path=path, line=line, col=col,
                    message=message, suppressed=True, reason=supp.reason))
            else:
                findings.append(Finding(rule=lint_rule.id, path=path,
                                        line=line, col=col, message=message))
    # bare suppressions (no reason) and suppressions that silenced nothing
    hit_lines = {f.line for f in findings if f.suppressed}
    for lineno, supp in sorted(src.suppressions.items()):
        if not supp.reason:
            findings.append(Finding(
                rule=META_RULE, path=path, line=lineno, col=0,
                message="suppression must carry a reason "
                        "(`# simlint: disable=RULE -- why`)"))
        elif lineno not in hit_lines:
            findings.append(Finding(
                rule=META_RULE, path=path, line=lineno, col=0,
                message=f"useless suppression of {', '.join(supp.rules)}: "
                        "nothing to silence on this line"))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def lint_paths(paths: Iterable[str],
               rules: Optional[Iterable[Rule]] = None) -> FindingSet:
    """Lint every ``*.py`` under ``paths``; returns the full finding set."""
    selected = list(rules) if rules is not None else all_rules()
    result = FindingSet()
    for filename in iter_python_files(paths):
        result.extend(lint_source(filename, rules=selected))
    return result
